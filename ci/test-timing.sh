#!/usr/bin/env bash
# Per-test wall-clock gate for the tier-1 suite.
#
# Builds every workspace test binary, enumerates the tests inside each,
# and runs each test on its own under `timeout`. Any single test
# exceeding the limit (default 120 s) fails the job and is named in the
# summary, so a slow test is caught the week it lands, not when the
# suite quietly crosses an hour.
#
# Usage: ci/test-timing.sh [limit-seconds]

set -euo pipefail

LIMIT="${1:-120}"
FAILED=0
SLOW=()

# Build test binaries and capture their paths. Filter to artifacts
# compiled with the libtest harness ("test":true): `cargo test` also
# builds the workspace's plain bin targets (so integration tests can
# spawn them), and those neither speak `--list` nor belong here.
mapfile -t BINARIES < <(
  cargo test --workspace --no-run --message-format=json 2>/dev/null |
    grep -E '"profile":\{[^}]*"test":true' |
    sed -n 's/.*"executable":"\([^"]*\)".*/\1/p' | sort -u
)

if [ "${#BINARIES[@]}" -eq 0 ]; then
  echo "test-timing: no test binaries found" >&2
  exit 1
fi

echo "test-timing: ${#BINARIES[@]} test binaries, per-test limit ${LIMIT}s"

for bin in "${BINARIES[@]}"; do
  [ -x "$bin" ] || continue
  # `<binary> --list --format terse` prints `name: test` per test.
  mapfile -t TESTS < <("$bin" --list --format terse 2>/dev/null |
    sed -n 's/^\(.*\): test$/\1/p')
  for name in "${TESTS[@]}"; do
    start=$(date +%s)
    if ! timeout "$LIMIT" "$bin" --exact "$name" --test-threads=1 >/dev/null 2>&1; then
      status=$?
      elapsed=$(( $(date +%s) - start ))
      if [ "$status" -eq 124 ]; then
        SLOW+=("$(basename "$bin") :: $name (killed at ${LIMIT}s)")
      else
        # A genuine failure is the main test job's business, but a
        # test that fails only under --exact isolation is still worth
        # surfacing here rather than hiding.
        SLOW+=("$(basename "$bin") :: $name (exit $status after ${elapsed}s)")
      fi
      FAILED=1
      continue
    fi
    elapsed=$(( $(date +%s) - start ))
    if [ "$elapsed" -ge "$LIMIT" ]; then
      SLOW+=("$(basename "$bin") :: $name (${elapsed}s)")
      FAILED=1
    fi
  done
done

if [ "$FAILED" -ne 0 ]; then
  echo "test-timing: tests over the ${LIMIT}s limit or failing in isolation:" >&2
  printf '  %s\n' "${SLOW[@]}" >&2
  exit 1
fi

echo "test-timing: all tests within ${LIMIT}s"
