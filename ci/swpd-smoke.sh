#!/usr/bin/env bash
# swpd end-to-end smoke: start the daemon as a real separate process,
# hammer it with the mixed load (including injected panics and
# disconnects), drain it via the protocol, then restart it over the
# same artifact and prove the crash-only recovery contract — every id
# the first run solved must come back `cached`, across processes.
#
# Usage: ci/swpd-smoke.sh [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-1}"
ART="${TMPDIR:-/tmp}/swpd-smoke-$$.jsonl"
SOLVED="${TMPDIR:-/tmp}/swpd-smoke-$$.solved"
LOG1="${TMPDIR:-/tmp}/swpd-smoke-$$-run1.log"
LOG2="${TMPDIR:-/tmp}/swpd-smoke-$$-run2.log"
trap 'rm -f "$ART" "$SOLVED" "$LOG1" "$LOG2"' EXIT

cargo build --release -p swp-swpd

scrape_addr() { # logfile -> prints addr once the readiness line lands
  local log="$1" addr=""
  for _ in $(seq 1 150); do
    addr="$(sed -n 's/^swpd listening on //p' "$log" 2>/dev/null | head -1)"
    [ -n "$addr" ] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "swpd never printed its readiness line; log follows:" >&2
  cat "$log" >&2
  return 1
}

echo "== run 1: cold daemon, mixed load, protocol drain =="
./target/release/swpd --addr 127.0.0.1:0 --workers 4 --queue 48 \
  --artifact "$ART" --allow-fault-injection >"$LOG1" 2>&1 &
SWPD1=$!
ADDR1="$(scrape_addr "$LOG1")"

./target/release/swpd-load --smoke --seed "$SEED" --addr "$ADDR1" \
  --solved-out "$SOLVED" --shutdown

# The daemon's own exit code asserts a clean drain (no queued or
# in-flight work left, zero internal errors).
wait "$SWPD1"
test -s "$ART"    # the artifact holds the solved records
test -s "$SOLVED" # ...and the load run recorded which ids they were

echo "== run 2: restart over the artifact, 100% warm replay =="
./target/release/swpd --addr 127.0.0.1:0 --workers 2 \
  --artifact "$ART" --resume >"$LOG2" 2>&1 &
SWPD2=$!
ADDR2="$(scrape_addr "$LOG2")"

./target/release/swpd-load --seed "$SEED" --addr "$ADDR2" \
  --solved-in "$SOLVED" --shutdown
wait "$SWPD2"

echo "swpd smoke OK"
