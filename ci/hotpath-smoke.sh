#!/usr/bin/env bash
# Hot-path data-layout smoke: the layout equivalence property suites
# (legacy vs flat checker/MRT/IMS, dense vs sparse simplex pivoting,
# and the whole driver's decision identity), then a quick run of the
# cumulative hot-path A/B benchmark — which gates every reported
# speedup on byte-identical timing-stripped artifacts across layouts,
# so a green run re-proves the bit-identity contract end to end.
#
# Usage: ci/hotpath-smoke.sh [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-1}"

echo "== layout equivalence property suites (SWP_PROPTEST_SEED=$SEED) =="
SWP_PROPTEST_SEED="$SEED" cargo test -q -p swp-machine --test proptest_layout
SWP_PROPTEST_SEED="$SEED" cargo test -q -p swp-heuristics --test proptest_layout
SWP_PROPTEST_SEED="$SEED" cargo test -q -p swp-milp --test proptest_layout
SWP_PROPTEST_SEED="$SEED" cargo test -q -p swp-core --test proptest_layout

echo "== shared A/B harness helpers =="
cargo test -q -p swp-bench --lib

echo "== bench_hotpath --quick (micro + e2e, decision-identity gated) =="
cargo run -p swp-bench --release --bin bench_hotpath -- \
  --quick --out "${TMPDIR:-/tmp}/BENCH_hotpath_smoke.json"
test -s "${TMPDIR:-/tmp}/BENCH_hotpath_smoke.json"
