#!/usr/bin/env bash
# Incremental-solving smoke: the fixed-seed incremental-vs-cold
# differential campaign (every warm-started solve cross-checked against
# a cold solver and re-verified by the cycle-accurate checker), then a
# daemon session round-trip over the HTTP front door — open a session,
# solve, edit, re-solve, revert, re-solve (the revert must replay), and
# close, with the reuse counters visible in /stats.
#
# Usage: ci/incr-smoke.sh [seed] [cases]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-11}"
CASES="${2:-150}"
LOG="${TMPDIR:-/tmp}/incr-smoke-$$.log"
trap 'rm -f "$LOG"; kill "$SWPD" 2>/dev/null || true' EXIT

cargo build --release -p swp-fuzz -p swp-swpd

echo "== incremental-vs-cold differential campaign (seed $SEED, $CASES cases) =="
./target/release/fuzz --incremental --seed "$SEED" --cases "$CASES" \
  --workers 4 --ticks 500000

echo "== daemon session round-trip (HTTP) =="
./target/release/swpd --addr 127.0.0.1:0 --workers 2 >"$LOG" 2>&1 &
SWPD=$!
ADDR=""
for _ in $(seq 1 150); do
  ADDR="$(sed -n 's/^swpd listening on //p' "$LOG" 2>/dev/null | head -1)"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "swpd never printed its readiness line" >&2; cat "$LOG" >&2; exit 1; }

CASE='# swp-fuzz regression\nmachine m {\n    unit C0 count=1 latency=2 table[X./.X]\n}\nddg {\n    node n0 class=0 latency=2\n    node n1 class=0 latency=2\n    edge 0 -> 1 distance=0\n    edge 1 -> 0 distance=1\n}\n'

status_of() { # reply-json -> status field
  sed -n 's/.*"status":"\([a-z_]*\)".*/\1/p' <<<"$1"
}
expect() { # label reply expected-status
  local got; got="$(status_of "$2")"
  if [ "$got" != "$3" ]; then
    echo "$1: expected status $3, got: $2" >&2
    exit 1
  fi
  echo "$1: $got"
}

OPEN="$(curl -sS -X POST "http://$ADDR/session" \
  -d "{\"id\":\"ci-open\",\"case\":\"$CASE\"}")"
expect "open" "$OPEN" ok
SID="$(sed -n 's/.*"session":\([0-9]*\).*/\1/p' <<<"$OPEN")"
[ -n "$SID" ] || { echo "open reply had no session handle: $OPEN" >&2; exit 1; }

S1="$(curl -sS -X POST "http://$ADDR/session/$SID/solve" -d '{}')"
expect "solve 1 (cold)" "$S1" solved
P1="$(sed -n 's/.*"period":\([0-9]*\).*/\1/p' <<<"$S1")"

E1="$(curl -sS -X POST "http://$ADDR/session/$SID/edit" \
  -d '{"id":"ci-edit1","edit":"add_edge","src":0,"dst":1,"distance":1}')"
expect "edit (+edge)" "$E1" ok

S2="$(curl -sS -X POST "http://$ADDR/session/$SID/solve" -d '{}')"
expect "solve 2 (warm, edited)" "$S2" solved

E2="$(curl -sS -X POST "http://$ADDR/session/$SID/edit" \
  -d '{"id":"ci-edit2","edit":"remove_edge","src":0,"dst":1,"distance":1}')"
expect "edit (revert)" "$E2" ok

S3="$(curl -sS -X POST "http://$ADDR/session/$SID/solve" -d '{}')"
expect "solve 3 (replay)" "$S3" solved
P3="$(sed -n 's/.*"period":\([0-9]*\).*/\1/p' <<<"$S3")"
[ "$P1" = "$P3" ] || { echo "revert did not restore the period: $P1 vs $P3" >&2; exit 1; }

STATS="$(curl -sS "http://$ADDR/stats")"
REPLAYS="$(sed -n 's/.*"reuse_replays":\([0-9]*\).*/\1/p' <<<"$STATS")"
SOLVES="$(sed -n 's/.*"session_solves":\([0-9]*\).*/\1/p' <<<"$STATS")"
[ "${SOLVES:-0}" -ge 3 ] || { echo "stats counted $SOLVES session solves, expected >= 3" >&2; exit 1; }
[ "${REPLAYS:-0}" -ge 1 ] || { echo "the revert solve did not replay (reuse_replays=$REPLAYS)" >&2; exit 1; }
echo "stats: session_solves=$SOLVES reuse_replays=$REPLAYS"

CLOSE="$(curl -sS -X POST "http://$ADDR/session/$SID/close" -d '{}')"
expect "close" "$CLOSE" ok

# The shutdown reply is best-effort: the daemon may win the race and
# exit before the response flushes. The `wait` below is the real check.
curl -sS -X POST "http://$ADDR/shutdown" -d '{}' >/dev/null 2>&1 || true
wait "$SWPD"
echo "incr smoke OK"
