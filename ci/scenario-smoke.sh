#!/usr/bin/env bash
# Scenario-diversity smoke: fixed-seed differential campaigns over the
# two extended machine-model families — VLIW issue bundles
# (--machine-family vliw: every machine carries a width + slot-group
# bundle) and register pressure (--machine-family regpressure: every
# case draws a max_live cap) — followed by the golden cross-engine
# scenario matrix, the family property suite, and the committed
# regression-corpus replay. Campaigns use tick budgets, so a same-seed
# run is deterministic; --budget-ms only bounds how many cases start.
#
# Usage: ci/scenario-smoke.sh [seed] [cases] [budget-ms]
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-3}"
CASES="${2:-200}"
BUDGET_MS="${3:-60000}"

cargo build --release -p swp-fuzz

echo "== VLIW issue-bundle campaign (seed $SEED, $CASES cases) =="
./target/release/fuzz --seed "$SEED" --cases "$CASES" --workers 4 \
  --machine-family vliw --ticks 500000 --budget-ms "$BUDGET_MS" --shrink

# Lower tick budget: adversarial cap-infeasible cases exhaust every
# config's budget by construction (the oracle outcome is identical at
# any tick count), so ticks set the wall-clock price, not the coverage.
echo "== register-pressure campaign (seed $((SEED + 1)), $CASES cases) =="
./target/release/fuzz --seed "$((SEED + 1))" --cases "$CASES" --workers 4 \
  --machine-family regpressure --ticks 100000 --budget-ms "$BUDGET_MS" --shrink

echo "== golden scenario matrix (ILP vs CP, portfolio agreement) =="
cargo test -q --release -p swp-bench --test golden_scenarios

echo "== family property suite (pressure + bundle oracles) =="
cargo test -q --release -p swp-fuzz --test properties

echo "== committed regression corpus replays clean =="
cargo test -q --release -p swp-fuzz --test regressions
