//! Shared solve budgets and cooperative cancellation.
//!
//! A [`Budget`] bounds how much work a solve is allowed to do along three
//! independent axes:
//!
//! * a **wall-clock deadline** ([`Budget::deadline_in`]),
//! * a **deterministic tick cap** ([`Budget::limit_ticks`]) — every inner
//!   loop of the solvers (simplex pivots, branch-and-bound nodes, IMS
//!   placements) counts as one tick, so tests can exhaust a budget
//!   reproducibly without depending on machine speed,
//! * a **cancel token** ([`Budget::cancel_token`]) — an `AtomicBool`
//!   handle that any thread may fire to stop the solve cooperatively.
//!
//! Budgets are cheap to clone and clones share state: the tick counter
//! and the cancel flag live behind `Arc`s, so work done through any clone
//! counts against the same pool. [`Budget::restrict`] derives a *child*
//! budget with a tighter deadline and/or tick allowance that still shares
//! the parent's counter and cancel flag — the scheduling driver uses this
//! to give each candidate period a slice of the global budget.
//!
//! The hot-path check is [`Budget::tick`]: it increments the shared
//! counter, compares it against the cap, consults the cancel flag (one
//! relaxed atomic load — the portfolio racer needs losers to die within
//! a pivot, not a [`CHECK_INTERVAL`]), and reads the clock only every
//! [`CHECK_INTERVAL`] ticks, so budgeted inner loops stay branch-cheap.
//! [`Budget::check`] performs the full check immediately without
//! consuming a tick; loop boundaries (new B&B node, new candidate
//! period) use it so deadline death is honoured within one check
//! interval.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in ticks) [`Budget::tick`] consults the clock. The tick
/// cap and the cancel flag are enforced exactly, on every tick.
pub const CHECK_INTERVAL: u64 = 64;

/// Why a budget stopped a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhaustion {
    /// The wall-clock deadline passed.
    Deadline,
    /// The deterministic tick cap was consumed.
    Ticks,
    /// The [`CancelToken`] was fired.
    Cancelled,
}

impl fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Exhaustion::Deadline => "deadline expired",
            Exhaustion::Ticks => "tick budget consumed",
            Exhaustion::Cancelled => "cancelled",
        })
    }
}

impl std::error::Error for Exhaustion {}

/// Handle for cancelling a solve from another thread (or a signal
/// handler, a timeout watchdog, …). Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Every budget sharing it reports
    /// [`Exhaustion::Cancelled`] at its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A solve budget: deadline + tick cap + cancellation, shared by clones.
///
/// ```
/// use swp_milp::budget::{Budget, Exhaustion};
///
/// let b = Budget::unlimited().limit_ticks(2);
/// assert_eq!(b.tick(), Ok(()));
/// assert_eq!(b.tick(), Ok(()));
/// assert_eq!(b.tick(), Err(Exhaustion::Ticks));
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    tick_limit: u64,
    ticks: Arc<AtomicU64>,
    cancelled: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no deadline, no tick cap, and a fresh cancel flag.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            tick_limit: u64::MAX,
            ticks: Arc::new(AtomicU64::new(0)),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// An unlimited budget except for a wall-clock deadline `d` from now.
    pub fn with_deadline(d: Duration) -> Self {
        Budget::unlimited().deadline_in(d)
    }

    /// An unlimited budget except for a cap of `n` ticks.
    pub fn with_tick_limit(n: u64) -> Self {
        Budget::unlimited().limit_ticks(n)
    }

    /// Tightens the deadline to at most `d` from now.
    pub fn deadline_in(mut self, d: Duration) -> Self {
        let new = Instant::now().checked_add(d);
        self.deadline = match (self.deadline, new) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Tightens the tick cap so at most `n` *further* ticks may be spent.
    pub fn limit_ticks(mut self, n: u64) -> Self {
        let used = self.ticks.load(Ordering::Relaxed);
        self.tick_limit = self.tick_limit.min(used.saturating_add(n));
        self
    }

    /// Derives a child budget sharing this budget's tick counter and
    /// cancel flag, optionally tightened by a relative deadline and/or an
    /// additional-tick allowance. The child can never outlive the parent:
    /// its deadline and cap are the minimum of both.
    pub fn restrict(&self, deadline: Option<Duration>, extra_ticks: Option<u64>) -> Budget {
        let mut child = self.clone();
        if let Some(d) = deadline {
            child = child.deadline_in(d);
        }
        if let Some(n) = extra_ticks {
            child = child.limit_ticks(n);
        }
        child
    }

    /// Ticks still spendable before the cap trips, or `None` when the
    /// budget has no tick cap. Clones share the counter, so the value is
    /// a snapshot that concurrent work may have reduced by the time the
    /// caller acts on it.
    pub fn remaining_ticks(&self) -> Option<u64> {
        if self.tick_limit == u64::MAX {
            return None;
        }
        Some(
            self.tick_limit
                .saturating_sub(self.ticks.load(Ordering::Relaxed)),
        )
    }

    /// Wall-clock left before the deadline, or `None` when the budget has
    /// no deadline. `Some(Duration::ZERO)` means the deadline has passed.
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Slices this budget into one of `n` equal worker shares: a child
    /// sharing the deadline, the tick counter, and the cancel flag, but
    /// allowed at most `remaining / n` further ticks. With no tick cap
    /// the child is a plain clone. `n` is clamped to at least 1.
    ///
    /// Because the counter is shared, the shares jointly never exceed the
    /// parent's pool; a fast worker's unused allowance is *not* donated
    /// to slow ones (use [`restrict`](Budget::restrict) for custom
    /// splits).
    ///
    /// A nearly exhausted parent yields a *zero-tick* share whose first
    /// [`tick`](Budget::tick) trips immediately. Admission-control
    /// callers that must refuse such dead work up front should use
    /// [`try_slice`](Budget::try_slice) instead.
    pub fn slice(&self, n: u64) -> Budget {
        match self.share_ticks(n) {
            Some(share) => self.restrict(None, Some(share)),
            None => self.clone(),
        }
    }

    /// Like [`slice`](Budget::slice), but refuses work that can make no
    /// progress: the admission-control form. Returns the exhaustion
    /// instead of a budget when the parent is already cancelled, past
    /// its deadline, or so close to its tick cap that an equal share
    /// rounds down to zero ticks (`remaining / n == 0`, saturating —
    /// a parent drained *below* its cap by concurrent work never
    /// underflows into a huge allowance).
    ///
    /// # Errors
    ///
    /// The [`Exhaustion`] that makes the slice pointless:
    /// [`Exhaustion::Ticks`] for an empty share, or whatever
    /// [`check`](Budget::check) reports for the parent.
    pub fn try_slice(&self, n: u64) -> Result<Budget, Exhaustion> {
        self.check()?;
        match self.share_ticks(n) {
            Some(0) => Err(Exhaustion::Ticks),
            Some(share) => Ok(self.restrict(None, Some(share))),
            None => Ok(self.clone()),
        }
    }

    /// `remaining / n` (saturating via [`remaining_ticks`]), or `None`
    /// when this budget has no tick cap.
    ///
    /// [`remaining_ticks`]: Budget::remaining_ticks
    fn share_ticks(&self, n: u64) -> Option<u64> {
        self.remaining_ticks().map(|rem| rem / n.max(1))
    }

    /// Derives an *isolated* child: a fresh tick counter with no cap,
    /// the parent's deadline, and the parent's cancel flag. Work done by
    /// the child does **not** drain the parent's tick pool, so per-task
    /// tick accounting stays exact and deterministic even when siblings
    /// run concurrently; firing the parent's [`CancelToken`] still stops
    /// every isolated child.
    pub fn fork_isolated(&self) -> Budget {
        Budget {
            deadline: self.deadline,
            tick_limit: u64::MAX,
            ticks: Arc::new(AtomicU64::new(0)),
            cancelled: Arc::clone(&self.cancelled),
        }
    }

    /// Derives one arm of an engine race: an isolated child like
    /// [`fork_isolated`](Budget::fork_isolated) — fresh tick counter,
    /// the parent's deadline — but capped at the parent's *remaining*
    /// ticks (each contestant gets the full remaining allowance on its
    /// own counter, so per-engine tick accounting is deterministic) and
    /// bound to a **fresh** cancel flag, returned as a token.
    ///
    /// The fresh flag is what lets a portfolio driver cancel one losing
    /// contestant without cancelling its sibling or the parent. The
    /// parent's own cancellation does *not* reach the child through the
    /// flag any more — the racing driver is responsible for forwarding
    /// it (it supervises both arms anyway, waiting for the first proven
    /// answer).
    pub fn fork_racer(&self) -> (Budget, CancelToken) {
        let mut child = self.fork_isolated();
        child.cancelled = Arc::new(AtomicBool::new(false));
        if let Some(rem) = self.remaining_ticks() {
            child = child.limit_ticks(rem);
        }
        let token = child.cancel_token();
        (child, token)
    }

    /// A handle that cancels every budget sharing this one's flag.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            flag: Arc::clone(&self.cancelled),
        }
    }

    /// Rebinds this budget's cancel flag to `token`'s, so a token created
    /// *before* the budget (e.g. held by a harness across several runs,
    /// or registered with a signal handler) controls it.
    pub fn cancelled_by(mut self, token: &CancelToken) -> Budget {
        self.cancelled = Arc::clone(&token.flag);
        self
    }

    /// Ticks spent so far across all clones.
    pub fn ticks_used(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Whether no axis of this budget can ever trip (ignoring the cancel
    /// flag, which is always live).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.tick_limit == u64::MAX
    }

    /// Spends one tick.
    ///
    /// The tick cap and the cancel flag are enforced exactly on every
    /// tick (the flag is a relaxed load, and prompt race cancellation
    /// depends on it); the clock is consulted every [`CHECK_INTERVAL`]
    /// ticks (call [`check`] at loop boundaries for an immediate full
    /// check).
    ///
    /// [`check`]: Budget::check
    ///
    /// # Errors
    ///
    /// The [`Exhaustion`] that tripped, if any.
    #[inline]
    pub fn tick(&self) -> Result<(), Exhaustion> {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed);
        if t >= self.tick_limit {
            return Err(Exhaustion::Ticks);
        }
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(Exhaustion::Cancelled);
        }
        if t % CHECK_INTERVAL == 0 {
            return self.check();
        }
        Ok(())
    }

    /// Checks the cancel flag and the deadline immediately, without
    /// consuming a tick.
    ///
    /// # Errors
    ///
    /// The [`Exhaustion`] that tripped, if any.
    pub fn check(&self) -> Result<(), Exhaustion> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(Exhaustion::Cancelled);
        }
        if self.ticks.load(Ordering::Relaxed) >= self.tick_limit {
            return Err(Exhaustion::Ticks);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Exhaustion::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            assert_eq!(b.tick(), Ok(()));
        }
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn tick_cap_is_exact() {
        let b = Budget::with_tick_limit(5);
        for _ in 0..5 {
            assert_eq!(b.tick(), Ok(()));
        }
        assert_eq!(b.tick(), Err(Exhaustion::Ticks));
        assert_eq!(b.check(), Err(Exhaustion::Ticks));
    }

    #[test]
    fn clones_share_the_tick_pool() {
        let a = Budget::with_tick_limit(3);
        let b = a.clone();
        assert_eq!(a.tick(), Ok(()));
        assert_eq!(b.tick(), Ok(()));
        assert_eq!(a.tick(), Ok(()));
        assert_eq!(b.tick(), Err(Exhaustion::Ticks));
    }

    #[test]
    fn expired_deadline_trips_check() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(Exhaustion::Deadline));
    }

    #[test]
    fn cancellation_beats_other_axes() {
        let b = Budget::with_deadline(Duration::ZERO);
        b.cancel_token().cancel();
        assert_eq!(b.check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn cancel_token_reaches_all_clones() {
        let a = Budget::unlimited();
        let b = a.restrict(Some(Duration::from_secs(3600)), Some(1_000));
        a.cancel_token().cancel();
        assert_eq!(b.check(), Err(Exhaustion::Cancelled));
        assert!(a.cancel_token().is_cancelled());
    }

    #[test]
    fn restrict_takes_the_tighter_cap() {
        let parent = Budget::with_tick_limit(10);
        let child = parent.restrict(None, Some(100));
        assert_eq!(child.tick_limit, 10);
        let child2 = parent.restrict(None, Some(4));
        for _ in 0..4 {
            assert_eq!(child2.tick(), Ok(()));
        }
        assert_eq!(child2.tick(), Err(Exhaustion::Ticks));
        // The parent saw those ticks too.
        assert!(parent.ticks_used() >= 4);
    }

    #[test]
    fn remaining_ticks_tracks_the_shared_counter() {
        let b = Budget::unlimited();
        assert_eq!(b.remaining_ticks(), None);
        let capped = Budget::with_tick_limit(10);
        assert_eq!(capped.remaining_ticks(), Some(10));
        for _ in 0..4 {
            capped.tick().unwrap();
        }
        assert_eq!(capped.remaining_ticks(), Some(6));
    }

    #[test]
    fn time_remaining_reports_deadline_state() {
        assert_eq!(Budget::unlimited().time_remaining(), None);
        let expired = Budget::with_deadline(Duration::ZERO);
        assert_eq!(expired.time_remaining(), Some(Duration::ZERO));
        let live = Budget::with_deadline(Duration::from_secs(3600));
        assert!(live.time_remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn slice_divides_the_remaining_pool() {
        let pool = Budget::with_tick_limit(100);
        let share = pool.slice(4);
        // The share may spend 25 ticks; they drain the shared pool.
        for _ in 0..25 {
            assert_eq!(share.tick(), Ok(()));
        }
        assert_eq!(share.tick(), Err(Exhaustion::Ticks));
        assert_eq!(pool.remaining_ticks(), Some(100 - 26));
        // An uncapped pool slices to uncapped shares.
        assert_eq!(Budget::unlimited().slice(4).remaining_ticks(), None);
        // n = 0 is treated as 1, not a division by zero.
        let whole = Budget::with_tick_limit(7).slice(0);
        assert_eq!(whole.remaining_ticks(), Some(7));
    }

    #[test]
    fn try_slice_admits_only_budgets_that_can_work() {
        // A healthy pool slices normally.
        let pool = Budget::with_tick_limit(100);
        let share = pool.try_slice(4).expect("healthy pool admits");
        assert_eq!(share.remaining_ticks(), Some(25));
        // An uncapped pool admits an uncapped share.
        assert!(Budget::unlimited().try_slice(4).is_ok());

        // Nearly exhausted: 3 remaining ticks across 4 workers rounds
        // down to a zero-tick share, which must be refused outright.
        let nearly = Budget::with_tick_limit(3);
        assert_eq!(nearly.try_slice(4).map(|_| ()), Err(Exhaustion::Ticks));
        // ... but a 1-way slice of the same pool still admits.
        assert!(nearly.try_slice(1).is_ok());

        // Fully exhausted: refused with Ticks even before division.
        let spent = Budget::with_tick_limit(2);
        spent.tick().unwrap();
        spent.tick().unwrap();
        assert_eq!(spent.try_slice(1).map(|_| ()), Err(Exhaustion::Ticks));

        // Cancellation and deadline expiry dominate the tick check.
        let cancelled = Budget::with_tick_limit(100);
        cancelled.cancel_token().cancel();
        assert_eq!(
            cancelled.try_slice(2).map(|_| ()),
            Err(Exhaustion::Cancelled)
        );
        let late = Budget::with_deadline(Duration::ZERO);
        assert_eq!(late.try_slice(2).map(|_| ()), Err(Exhaustion::Deadline));
    }

    #[test]
    fn zero_tick_slice_from_slice_still_trips_immediately() {
        // `slice` keeps its infallible contract: the dead share is
        // created, but its very first tick (and check) trips.
        let pool = Budget::with_tick_limit(3);
        let dead = pool.slice(4);
        assert_eq!(dead.remaining_ticks(), Some(0));
        assert_eq!(dead.tick(), Err(Exhaustion::Ticks));
        assert_eq!(dead.check(), Err(Exhaustion::Ticks));
    }

    #[test]
    fn fork_isolated_has_its_own_counter_but_shared_cancel() {
        let parent = Budget::with_tick_limit(5);
        let child = parent.fork_isolated();
        for _ in 0..100 {
            assert_eq!(child.tick(), Ok(()));
        }
        // The parent's pool is untouched by the child's work.
        assert_eq!(parent.remaining_ticks(), Some(5));
        assert_eq!(child.ticks_used(), 100);
        // Cancellation still reaches the isolated child.
        parent.cancel_token().cancel();
        assert_eq!(child.check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn fork_racer_isolates_ticks_and_cancellation() {
        let parent = Budget::with_tick_limit(10);
        parent.tick().unwrap(); // 9 remaining
        let (a, a_token) = parent.fork_racer();
        let (b, _b_token) = parent.fork_racer();
        // Each racer gets the full remaining allowance on its own
        // counter; the parent pool is untouched by racer work.
        assert_eq!(a.remaining_ticks(), Some(9));
        assert_eq!(b.remaining_ticks(), Some(9));
        for _ in 0..9 {
            assert_eq!(a.tick(), Ok(()));
        }
        assert_eq!(a.tick(), Err(Exhaustion::Ticks));
        assert_eq!(parent.remaining_ticks(), Some(9));
        // Cancelling one racer reaches neither its sibling nor the
        // parent; cancelling the parent does NOT auto-reach racers
        // (the race driver forwards it).
        a_token.cancel();
        assert_eq!(b.check(), Ok(()));
        assert_eq!(parent.check(), Ok(()));
        parent.cancel_token().cancel();
        assert_eq!(b.check(), Ok(()));
        // An uncapped parent yields uncapped racers.
        let (c, _) = Budget::unlimited().fork_racer();
        assert_eq!(c.remaining_ticks(), None);
    }

    #[test]
    fn cancelled_by_rebinds_to_a_pre_existing_token() {
        let token = CancelToken::new();
        let b = Budget::unlimited().cancelled_by(&token);
        assert_eq!(b.check(), Ok(()));
        token.cancel();
        assert_eq!(b.check(), Err(Exhaustion::Cancelled));
        // Children forked after the rebind still share the token's flag.
        assert_eq!(b.fork_isolated().check(), Err(Exhaustion::Cancelled));
    }

    #[test]
    fn cancellation_noticed_within_one_check_interval() {
        let b = Budget::unlimited();
        b.tick().unwrap(); // desynchronize from the interval boundary
        b.cancel_token().cancel();
        let mut spent = 0u64;
        loop {
            match b.tick() {
                Ok(()) => spent += 1,
                Err(e) => {
                    assert_eq!(e, Exhaustion::Cancelled);
                    break;
                }
            }
            assert!(spent <= CHECK_INTERVAL, "cancellation ignored too long");
        }
    }
}
