//! Modeling layer: variables, linear expressions, constraints, objective.

use crate::branch::{BranchBound, MipSolution, SolveLimits};
use crate::SolveError;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Handle to a variable of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the order of creation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a constraint of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstrId(pub(crate) usize);

impl ConstrId {
    /// Index of the constraint in the order of creation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Integer-valued in `{0, 1}` (bounds are clamped to `[0, 1]`).
    Binary,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "==",
        })
    }
}

/// A linear expression `Σ coeff·var + constant`.
///
/// Built with operator overloads or collected from `(VarId, f64)` pairs:
///
/// ```
/// use swp_milp::{LinExpr, Model, VarKind};
/// let mut m = Model::new();
/// let x = m.add_var(VarKind::Continuous, 0.0, 1.0, "x");
/// let y = m.add_var(VarKind::Continuous, 0.0, 1.0, "y");
/// let e = LinExpr::term(x, 2.0) + LinExpr::term(y, -1.0) + 3.0;
/// assert_eq!(e.constant(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// A single term `coeff·var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Sum of `coeff·var` terms.
    pub fn sum<I: IntoIterator<Item = (VarId, f64)>>(terms: I) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant: 0.0,
        }
    }

    /// Adds `coeff·var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// The additive constant.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The terms, unmerged, in insertion order.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Merges duplicate variables and drops zero coefficients.
    ///
    /// Returns `(sorted merged terms, constant)`.
    pub fn compact(&self) -> (Vec<(VarId, f64)>, f64) {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        (out, self.constant)
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        LinExpr::sum(iter)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarInfo {
    pub kind: VarKind,
    pub lo: f64,
    pub hi: f64,
    pub name: String,
}

#[derive(Debug, Clone)]
pub(crate) struct Constr {
    pub terms: Vec<(VarId, f64)>,
    pub sense: Sense,
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// Variables and constraints are added incrementally; [`Model::solve`]
/// runs branch-and-bound with default limits. The objective defaults to
/// minimizing `0` (pure feasibility).
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) constrs: Vec<Constr>,
    pub(crate) obj: Vec<f64>,
    pub(crate) obj_constant: f64,
    pub(crate) maximize: bool,
}

impl Model {
    /// Creates an empty model (minimization by default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable and returns its handle.
    ///
    /// For [`VarKind::Binary`], bounds are intersected with `[0, 1]`.
    pub fn add_var(&mut self, kind: VarKind, lo: f64, hi: f64, name: impl Into<String>) -> VarId {
        let (lo, hi) = match kind {
            VarKind::Binary => (lo.max(0.0), hi.min(1.0)),
            _ => (lo, hi),
        };
        self.vars.push(VarInfo {
            kind,
            lo,
            hi,
            name: name.into(),
        });
        self.obj.push(0.0);
        VarId(self.vars.len() - 1)
    }

    /// Adds a binary variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(VarKind::Binary, 0.0, 1.0, name)
    }

    /// Adds a non-negative integer variable with upper bound `hi`.
    pub fn add_integer(&mut self, hi: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarKind::Integer, 0.0, hi, name)
    }

    /// Sets the objective to minimize the given expression.
    pub fn minimize(&mut self, expr: impl IntoLinExpr) {
        self.set_objective(expr.into_lin_expr(), false);
    }

    /// Sets the objective to maximize the given expression.
    pub fn maximize(&mut self, expr: impl IntoLinExpr) {
        self.set_objective(expr.into_lin_expr(), true);
    }

    fn set_objective(&mut self, expr: LinExpr, maximize: bool) {
        self.obj = vec![0.0; self.vars.len()];
        let (terms, c) = expr.compact();
        for (v, coeff) in terms {
            self.obj[v.0] = coeff;
        }
        self.obj_constant = c;
        self.maximize = maximize;
    }

    /// Adds a linear constraint `expr sense rhs` and returns its handle.
    ///
    /// Any constant inside `expr` is moved to the right-hand side.
    pub fn add_constr(&mut self, expr: impl IntoLinExpr, sense: Sense, rhs: f64) -> ConstrId {
        let expr = expr.into_lin_expr();
        let (terms, c) = expr.compact();
        self.constrs.push(Constr {
            terms,
            sense,
            rhs: rhs - c,
        });
        ConstrId(self.constrs.len() - 1)
    }

    /// Tightens the lower bound of `var` to at least `lo`.
    pub fn set_lower_bound(&mut self, var: VarId, lo: f64) {
        let v = &mut self.vars[var.0];
        v.lo = v.lo.max(lo);
    }

    /// Tightens the upper bound of `var` to at most `hi`.
    pub fn set_upper_bound(&mut self, var: VarId, hi: f64) {
        let v = &mut self.vars[var.0];
        v.hi = v.hi.min(hi);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constrs(&self) -> usize {
        self.constrs.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_integer_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind != VarKind::Continuous)
            .count()
    }

    /// Name given to `var` at creation.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Kind of `var`.
    pub fn var_kind(&self, var: VarId) -> VarKind {
        self.vars[var.0].kind
    }

    /// `(lo, hi)` bounds of `var`.
    pub fn bounds(&self, var: VarId) -> (f64, f64) {
        (self.vars[var.0].lo, self.vars[var.0].hi)
    }

    /// Objective coefficient of `var`.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.obj[var.0]
    }

    /// Whether the objective is maximized.
    pub fn is_maximize(&self) -> bool {
        self.maximize
    }

    /// Checks structural validity (bound order, finite coefficients).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::BadModel`] describing the first defect found.
    pub fn validate(&self) -> Result<(), SolveError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lo > v.hi {
                return Err(SolveError::BadModel(format!(
                    "variable {} (`{}`) has lo {} > hi {}",
                    i, v.name, v.lo, v.hi
                )));
            }
            if v.lo.is_nan() || v.hi.is_nan() {
                return Err(SolveError::BadModel(format!(
                    "variable {} (`{}`) has NaN bound",
                    i, v.name
                )));
            }
        }
        for (i, c) in self.constrs.iter().enumerate() {
            if !c.rhs.is_finite() {
                return Err(SolveError::BadModel(format!(
                    "constraint {i} has non-finite rhs {}",
                    c.rhs
                )));
            }
            for &(v, coeff) in &c.terms {
                if !coeff.is_finite() {
                    return Err(SolveError::BadModel(format!(
                        "constraint {i} has non-finite coefficient on `{}`",
                        self.vars[v.0].name
                    )));
                }
            }
        }
        for &c in &self.obj {
            if !c.is_finite() {
                return Err(SolveError::BadModel(
                    "non-finite objective coefficient".into(),
                ));
            }
        }
        Ok(())
    }

    /// Evaluates whether `point` satisfies every constraint and bound
    /// within tolerance `tol`, ignoring integrality.
    pub fn is_feasible_point(&self, point: &[f64], tol: f64) -> bool {
        if point.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(point) {
            if x < v.lo - tol || x > v.hi + tol {
                return false;
            }
        }
        self.constrs.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, co)| co * point[v.0]).sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Evaluates the objective at `point` (honoring the max/min direction
    /// as stated, i.e. the returned value is the stated objective).
    pub fn objective_value(&self, point: &[f64]) -> f64 {
        let v: f64 = self
            .obj
            .iter()
            .zip(point)
            .map(|(&c, &x)| c * x)
            .sum::<f64>()
            + self.obj_constant;
        v
    }

    /// The LP relaxation: the same model with every integer and binary
    /// variable re-kinded as continuous (bounds kept).
    pub fn relax(&self) -> Model {
        let mut out = self.clone();
        for v in &mut out.vars {
            v.kind = VarKind::Continuous;
        }
        out
    }

    /// Solves with default limits. See [`Model::solve_with`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the search: infeasible, unbounded,
    /// limit reached, or malformed model.
    pub fn solve(&self) -> Result<MipSolution, SolveError> {
        self.solve_with(&SolveLimits::default())
    }

    /// Solves under explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the search.
    pub fn solve_with(&self, limits: &SolveLimits) -> Result<MipSolution, SolveError> {
        self.validate()?;
        BranchBound::new(self, limits.clone()).run()
    }

    /// Solves under explicit limits and exports the root relaxation's
    /// terminal simplex basis (also on the infeasible path), for
    /// warm-starting the next closely-related model. See
    /// [`BranchBound::run_with_basis`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the search (first tuple slot).
    pub fn solve_with_basis(
        &self,
        limits: &SolveLimits,
    ) -> (
        Result<MipSolution, SolveError>,
        Option<crate::simplex::LpBasis>,
    ) {
        if let Err(e) = self.validate() {
            return (Err(e), None);
        }
        BranchBound::new(self, limits.clone()).run_with_basis()
    }

    /// Resolves a basis carried as variable **names** — exported by
    /// [`Model::basis_to_names`] from an earlier, possibly
    /// differently-shaped model — into this model's column space.
    /// Unknown names are dropped: the warm-start crash tolerates partial
    /// hints, so a T-sweep can hand the `T` basis to the `T+1` model
    /// even though row/column counts differ.
    pub fn basis_from_names<S: AsRef<str>>(&self, names: &[S]) -> crate::simplex::LpBasis {
        use std::collections::HashMap;
        let by_name: HashMap<&str, usize> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.as_str(), i))
            .collect();
        let mut cols: Vec<usize> = names
            .iter()
            .filter_map(|n| by_name.get(n.as_ref()).copied())
            .collect();
        cols.sort_unstable();
        cols.dedup();
        crate::simplex::LpBasis { cols }
    }

    /// Renders a basis exported from **this** model as variable names,
    /// the representation that survives a model re-build at a different
    /// period. Out-of-range columns are skipped.
    pub fn basis_to_names(&self, basis: &crate::simplex::LpBasis) -> Vec<String> {
        basis
            .cols
            .iter()
            .filter(|&&j| j < self.vars.len())
            .map(|&j| self.vars[j].name.clone())
            .collect()
    }
}

/// Conversion into [`LinExpr`], accepted by the modeling entry points.
///
/// Implemented for `LinExpr`, `VarId`, and iterables of `(VarId, f64)`.
pub trait IntoLinExpr {
    /// Performs the conversion.
    fn into_lin_expr(self) -> LinExpr;
}

impl IntoLinExpr for LinExpr {
    fn into_lin_expr(self) -> LinExpr {
        self
    }
}

impl IntoLinExpr for VarId {
    fn into_lin_expr(self) -> LinExpr {
        LinExpr::term(self, 1.0)
    }
}

impl<const N: usize> IntoLinExpr for [(VarId, f64); N] {
    fn into_lin_expr(self) -> LinExpr {
        LinExpr::sum(self)
    }
}

impl IntoLinExpr for Vec<(VarId, f64)> {
    fn into_lin_expr(self) -> LinExpr {
        LinExpr::sum(self)
    }
}

impl IntoLinExpr for &[(VarId, f64)] {
    fn into_lin_expr(self) -> LinExpr {
        LinExpr::sum(self.iter().copied())
    }
}

impl From<LinExpr> for Vec<(VarId, f64)> {
    fn from(e: LinExpr) -> Self {
        e.compact().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_merges_and_drops_zeros() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, 1.0, "x");
        let y = m.add_var(VarKind::Continuous, 0.0, 1.0, "y");
        let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 1.0) + LinExpr::term(x, -2.0);
        let (terms, _) = e.compact();
        assert_eq!(terms, vec![(y, 1.0)]);
    }

    #[test]
    fn constraint_moves_constant_to_rhs() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, 10.0, "x");
        let e = LinExpr::term(x, 1.0) + 5.0;
        m.add_constr(e, Sense::Le, 8.0);
        assert_eq!(m.constrs[0].rhs, 3.0);
    }

    #[test]
    fn binary_bounds_clamped() {
        let mut m = Model::new();
        let b = m.add_var(VarKind::Binary, -3.0, 7.0, "b");
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }

    #[test]
    fn validate_rejects_crossed_bounds() {
        let mut m = Model::new();
        m.add_var(VarKind::Continuous, 2.0, 1.0, "x");
        assert!(matches!(m.validate(), Err(SolveError::BadModel(_))));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, 1.0, "x");
        m.add_constr([(x, f64::NAN)], Sense::Le, 1.0);
        assert!(matches!(m.validate(), Err(SolveError::BadModel(_))));
    }

    #[test]
    fn feasible_point_checks_all_senses() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, 10.0, "x");
        m.add_constr([(x, 1.0)], Sense::Ge, 2.0);
        m.add_constr([(x, 1.0)], Sense::Le, 4.0);
        m.add_constr([(x, 2.0)], Sense::Eq, 6.0);
        assert!(m.is_feasible_point(&[3.0], 1e-9));
        assert!(!m.is_feasible_point(&[4.0], 1e-9));
        assert!(!m.is_feasible_point(&[1.0], 1e-9));
    }

    #[test]
    fn expression_operators() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, 1.0, "x");
        let y = m.add_var(VarKind::Continuous, 0.0, 1.0, "y");
        let e = (LinExpr::from(x) - LinExpr::from(y)) * 3.0;
        let (terms, _) = e.compact();
        assert_eq!(terms, vec![(x, 3.0), (y, -3.0)]);
        let n = -LinExpr::term(x, 1.5);
        assert_eq!(n.terms()[0].1, -1.5);
    }
}
