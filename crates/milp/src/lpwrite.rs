//! CPLEX LP-format export, for debugging models with external solvers.

use crate::model::{Model, Sense, VarKind};
use std::fmt::Write as _;

impl Model {
    /// Renders the model in CPLEX LP format.
    ///
    /// Variable names are sanitized to `x<i>` (the original names go into
    /// a trailing comment block), because user-facing names like
    /// `a[0,3]` are not legal LP-format identifiers.
    ///
    /// ```
    /// use swp_milp::{Model, Sense};
    /// let mut m = Model::new();
    /// let x = m.add_binary("choose");
    /// m.maximize([(x, 2.0)]);
    /// m.add_constr([(x, 1.0)], Sense::Le, 1.0);
    /// let text = m.to_lp_format();
    /// assert!(text.contains("Maximize"));
    /// assert!(text.contains("Binaries"));
    /// ```
    pub fn to_lp_format(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "\\ {} variables, {} constraints",
            self.num_vars(),
            self.num_constrs()
        );
        s.push_str(if self.is_maximize() {
            "Maximize\n"
        } else {
            "Minimize\n"
        });
        s.push_str(" obj:");
        let mut any = false;
        for (i, &c) in self.obj.iter().enumerate() {
            if c != 0.0 {
                let _ = write!(s, " {} {} x{i}", if c < 0.0 { "-" } else { "+" }, c.abs());
                any = true;
            }
        }
        if !any {
            s.push_str(" 0 x0");
        }
        s.push_str("\nSubject To\n");
        for (k, c) in self.constrs.iter().enumerate() {
            let _ = write!(s, " c{k}:");
            for &(v, coeff) in &c.terms {
                let _ = write!(
                    s,
                    " {} {} x{}",
                    if coeff < 0.0 { "-" } else { "+" },
                    coeff.abs(),
                    v.index()
                );
            }
            let op = match c.sense {
                Sense::Le => "<=",
                Sense::Ge => ">=",
                Sense::Eq => "=",
            };
            let _ = writeln!(s, " {op} {}", c.rhs);
        }
        s.push_str("Bounds\n");
        for (i, v) in self.vars.iter().enumerate() {
            match (v.lo.is_finite(), v.hi.is_finite()) {
                (true, true) => {
                    let _ = writeln!(s, " {} <= x{i} <= {}", v.lo, v.hi);
                }
                (true, false) => {
                    let _ = writeln!(s, " x{i} >= {}", v.lo);
                }
                (false, true) => {
                    let _ = writeln!(s, " -inf <= x{i} <= {}", v.hi);
                }
                (false, false) => {
                    let _ = writeln!(s, " x{i} free");
                }
            }
        }
        let bins: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| i)
            .collect();
        if !bins.is_empty() {
            s.push_str("Binaries\n");
            for i in bins {
                let _ = writeln!(s, " x{i}");
            }
        }
        let ints: Vec<usize> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect();
        if !ints.is_empty() {
            s.push_str("Generals\n");
            for i in ints {
                let _ = writeln!(s, " x{i}");
            }
        }
        s.push_str("End\n");
        for (i, v) in self.vars.iter().enumerate() {
            let _ = writeln!(s, "\\ x{i} = {}", v.name);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Model, Sense, VarKind};

    #[test]
    fn sections_present_and_ordered() {
        let mut m = Model::new();
        let x = m.add_binary("pick");
        let y = m.add_var(VarKind::Integer, 0.0, 9.0, "count");
        let z = m.add_var(
            VarKind::Continuous,
            f64::NEG_INFINITY,
            f64::INFINITY,
            "slack",
        );
        m.minimize([(x, 1.0), (y, 2.0)]);
        m.add_constr([(x, 1.0), (y, -1.0), (z, 0.5)], Sense::Ge, -3.0);
        let text = m.to_lp_format();
        let order = [
            "Minimize",
            "Subject To",
            "Bounds",
            "Binaries",
            "Generals",
            "End",
        ];
        let mut last = 0;
        for section in order {
            let pos = text
                .find(section)
                .unwrap_or_else(|| panic!("missing {section}"));
            assert!(pos >= last, "{section} out of order");
            last = pos;
        }
        assert!(text.contains("x2 free"));
        assert!(text.contains("\\ x0 = pick"));
    }

    #[test]
    fn empty_objective_still_valid() {
        let mut m = Model::new();
        m.add_binary("x");
        let text = m.to_lp_format();
        assert!(text.contains("obj: 0 x0"));
    }

    #[test]
    fn constraint_signs_rendered() {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constr([(x, 1.0), (y, -2.0)], Sense::Eq, 1.0);
        let text = m.to_lp_format();
        assert!(text.contains("+ 1 x0 - 2 x1 = 1"));
    }
}
