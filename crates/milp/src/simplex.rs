//! Dense two-phase primal simplex over `f64`.
//!
//! The solver accepts problems in the *bounded row form* used by the
//! branch-and-bound driver: minimize `c·x` subject to rows
//! `a·x {<=, >=, ==} b` and box bounds `lo <= x <= hi` (bounds may be
//! infinite). Internally every variable is shifted/split to be
//! non-negative, finite upper bounds become rows, and slack/artificial
//! columns complete a basis for phase 1.
//!
//! Pricing is Dantzig (most negative reduced cost) with an automatic
//! switch to Bland's rule after a run of degenerate pivots, which
//! guarantees termination.
//!
//! The pivot inner loop comes in two [`PivotLayout`]s: the seed's dense
//! row sweep, and a sparse sweep that enumerates the pivot row's
//! nonzero columns once and skips the exact zeros in every eliminated
//! row. Scheduling tableaus are mostly zeros (each constraint touches a
//! handful of the `ops × slots` columns), so the sparse sweep does a
//! small fraction of the arithmetic — and because every skipped update
//! is `x -= f · (±0.0)`, which can change at most the sign of a zero,
//! and every decision in the solver is a comparison (IEEE orders
//! `-0.0 == 0.0`), the two layouts take bit-identical pivot sequences
//! and return equal results.

// Tableau arithmetic is clearer with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::budget::{Budget, Exhaustion};
use crate::model::Sense;
use crate::SolveError;

/// Feasibility tolerance used throughout the `f64` pipeline.
pub const FEAS_TOL: f64 = 1e-7;
/// Pivot magnitude below which a column entry is treated as zero.
const PIVOT_TOL: f64 = 1e-9;
/// Number of consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_SWITCH: usize = 60;

/// Inner-loop layout of the pivot elimination (see the module docs for
/// the decision-identity argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PivotLayout {
    /// The seed's full-width row sweep, kept as a selectable fallback
    /// and as the reference arm of A/B benchmarks.
    Dense,
    /// Sweep only the pivot row's nonzero columns, collected once per
    /// pivot into a reusable index list.
    #[default]
    SparseRow,
}

/// A linear program in bounded row form, ready for [`solve_lp`].
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective coefficients (always minimized), one per column.
    pub obj: Vec<f64>,
    /// Sparse rows: `(terms, sense, rhs)` with terms as `(col, coeff)`.
    pub rows: Vec<(Vec<(usize, f64)>, Sense, f64)>,
    /// Per-column lower bounds (`-inf` allowed).
    pub lo: Vec<f64>,
    /// Per-column upper bounds (`+inf` allowed).
    pub hi: Vec<f64>,
}

impl LpProblem {
    /// Number of structural columns.
    pub fn num_cols(&self) -> usize {
        self.obj.len()
    }
}

/// Optimal solution of an LP.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Value of each structural column.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

/// A simplex basis exported in *structural* (model-variable) space.
///
/// `cols` lists the problem columns that were basic when the solve
/// terminated (sorted, deduplicated; split free variables report their
/// structural index once). The basis is a **hint**, never a contract: a
/// warm solve crashes the hinted columns into the starting basis with a
/// full ratio test, so primal feasibility is preserved no matter how
/// stale the hint is, and phases 1/2 still run to completion. A useless
/// hint costs a few extra pivots; it can never change the outcome.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LpBasis {
    /// Structural column indices basic at termination.
    pub cols: Vec<usize>,
}

impl LpBasis {
    /// Whether the basis carries no information.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// Outcome of a warm-started LP solve: the verdict plus the terminal
/// basis (for carry-over to the next closely-related instance) and how
/// many crash pivots the hint bought.
#[derive(Debug, Clone)]
pub struct WarmLpResult {
    /// The solve verdict, identical in meaning to [`solve_lp_with`].
    pub outcome: LpOutcome,
    /// Structural basis at termination (empty on early infeasibility).
    pub basis: LpBasis,
    /// Forced-entering pivots performed while crashing the hint into the
    /// starting basis (0 when no hint was given or none applied).
    pub crash_pivots: usize,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// Optimum found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
}

impl LpOutcome {
    /// The solution if optimal, else `None`.
    pub fn optimal(self) -> Option<LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// Column bookkeeping: how a structural variable maps into tableau columns.
#[derive(Debug, Clone, Copy)]
enum ColMap {
    /// `x = lo + y`, single tableau column (shifted non-negative).
    Shifted { col: usize, lo: f64 },
    /// Free variable split `x = y⁺ − y⁻`.
    Split { plus: usize, minus: usize },
    /// Fixed: `lo == hi`, no tableau column.
    Fixed { value: f64 },
}

/// Dense row-major tableau.
struct Tableau {
    m: usize,
    n: usize, // columns excluding rhs
    a: Vec<f64>,
    rhs: Vec<f64>,
    basis: Vec<usize>,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let n = self.n;
        let piv = self.a[pr * n + pc];
        let inv = 1.0 / piv;
        for c in 0..n {
            self.a[pr * n + c] *= inv;
        }
        self.rhs[pr] *= inv;
        let rhs_pr = self.rhs[pr];
        // Split the pivot row out so other rows can be updated without
        // aliasing the borrow.
        let (before, rest) = self.a.split_at_mut(pr * n);
        let (prow, after) = rest.split_at_mut(n);
        for (ri, row) in before.chunks_exact_mut(n).enumerate() {
            let f = row[pc];
            if f != 0.0 {
                for c in 0..n {
                    row[c] -= f * prow[c];
                }
                row[pc] = 0.0; // exact zero to contain drift
                self.rhs[ri] -= f * rhs_pr;
            }
        }
        for (ri, row) in after.chunks_exact_mut(n).enumerate() {
            let f = row[pc];
            if f != 0.0 {
                for c in 0..n {
                    row[c] -= f * prow[c];
                }
                row[pc] = 0.0;
                self.rhs[pr + 1 + ri] -= f * rhs_pr;
            }
        }
        self.basis[pr] = pc;
    }

    /// [`Tableau::pivot`] sweeping only the pivot row's nonzeros, which
    /// are collected into `nz` (reused across pivots). Every elimination
    /// this skips is `row[c] -= f * (±0.0)` — a value-level no-op — so
    /// the resulting tableau is equal to the dense sweep's under every
    /// IEEE comparison (only signs of zeros may differ).
    fn pivot_sparse(&mut self, pr: usize, pc: usize, nz: &mut Vec<usize>) {
        let n = self.n;
        let piv = self.a[pr * n + pc];
        let inv = 1.0 / piv;
        nz.clear();
        for (c, v) in self.a[pr * n..(pr + 1) * n].iter_mut().enumerate() {
            if *v != 0.0 {
                *v *= inv;
                nz.push(c);
            }
        }
        self.rhs[pr] *= inv;
        let rhs_pr = self.rhs[pr];
        // Split the pivot row out so other rows can be updated without
        // aliasing the borrow.
        let (before, rest) = self.a.split_at_mut(pr * n);
        let (prow, after) = rest.split_at_mut(n);
        for (ri, row) in before.chunks_exact_mut(n).enumerate() {
            let f = row[pc];
            if f != 0.0 {
                for &c in nz.iter() {
                    row[c] -= f * prow[c];
                }
                row[pc] = 0.0; // exact zero to contain drift
                self.rhs[ri] -= f * rhs_pr;
            }
        }
        for (ri, row) in after.chunks_exact_mut(n).enumerate() {
            let f = row[pc];
            if f != 0.0 {
                for &c in nz.iter() {
                    row[c] -= f * prow[c];
                }
                row[pc] = 0.0;
                self.rhs[pr + 1 + ri] -= f * rhs_pr;
            }
        }
        self.basis[pr] = pc;
    }

    /// Layout-dispatched pivot; `nz` is the sparse sweep's reusable
    /// nonzero-column scratch, left holding the pivot row's nonzeros.
    fn pivot_with(&mut self, pr: usize, pc: usize, layout: PivotLayout, nz: &mut Vec<usize>) {
        match layout {
            PivotLayout::Dense => self.pivot(pr, pc),
            PivotLayout::SparseRow => self.pivot_sparse(pr, pc, nz),
        }
    }
}

/// Solves the LP by two-phase dense primal simplex, unbudgeted.
///
/// Column bounds with `lo > hi` (to within [`FEAS_TOL`]) yield
/// [`LpOutcome::Infeasible`] immediately — branch-and-bound relies on this
/// when a branch empties a variable's domain.
///
/// If the pivot cap is ever exhausted (essentially unreachable thanks to
/// the Bland fallback), the current vertex is reported as optimal, as
/// this entry point predates stall detection; budget-aware callers should
/// use [`solve_lp_with`], which reports such stalls as
/// [`SolveError::Numerical`] instead.
pub fn solve_lp(p: &LpProblem) -> LpOutcome {
    // A fresh unlimited budget cannot trip, so the only possible error is
    // unreachable; Infeasible is the safe fallback if it ever were not.
    solve_lp_impl(p, &Budget::unlimited(), false, None, PivotLayout::default())
        .map(|r| r.outcome)
        .unwrap_or(LpOutcome::Infeasible)
}

/// Solves the LP under a [`Budget`], with strict stall detection.
///
/// # Errors
///
/// * [`SolveError::LimitReached`] — the budget's deadline or tick cap
///   tripped mid-solve (one tick is spent per simplex pivot);
/// * [`SolveError::Cancelled`] — the budget's cancel token fired;
/// * [`SolveError::Numerical`] — the pivot cap was exhausted without
///   convergence (a stall or cycling even Bland's rule did not resolve).
pub fn solve_lp_with(p: &LpProblem, budget: &Budget) -> Result<LpOutcome, SolveError> {
    solve_lp_impl(p, budget, true, None, PivotLayout::default()).map(|r| r.outcome)
}

/// [`solve_lp_with`] under an explicit [`PivotLayout`]. Verdicts,
/// pivot sequences, and tick spending are layout-independent; only the
/// inner-loop cost differs.
///
/// # Errors
///
/// As [`solve_lp_with`].
pub fn solve_lp_with_layout(
    p: &LpProblem,
    budget: &Budget,
    layout: PivotLayout,
) -> Result<LpOutcome, SolveError> {
    solve_lp_impl(p, budget, true, None, layout).map(|r| r.outcome)
}

/// Solves the LP under a [`Budget`] with an optional basis hint, and
/// exports the terminal basis for carry-over to the next instance.
///
/// The hint is crashed into the starting basis by forced-entering pivots
/// with a full ratio test, so the right-hand side stays non-negative and
/// both simplex phases run unchanged afterwards: the verdict is always
/// identical to a cold [`solve_lp_with`] (a vertex-degenerate optimum may
/// sit at a different vertex, but feasibility/unboundedness and the
/// optimal objective value agree). With `hint == None` the pivot sequence
/// is bit-identical to the cold path.
///
/// # Errors
///
/// As [`solve_lp_with`]. Crash pivots spend budget ticks like any other
/// pivot, so determinism under tick caps is preserved.
pub fn solve_lp_warm(
    p: &LpProblem,
    budget: &Budget,
    hint: Option<&LpBasis>,
) -> Result<WarmLpResult, SolveError> {
    solve_lp_impl(p, budget, true, hint, PivotLayout::default())
}

/// [`solve_lp_warm`] under an explicit [`PivotLayout`]. Verdicts,
/// pivot sequences, and tick spending are layout-independent; only the
/// inner-loop cost differs.
///
/// # Errors
///
/// As [`solve_lp_warm`].
pub fn solve_lp_warm_layout(
    p: &LpProblem,
    budget: &Budget,
    hint: Option<&LpBasis>,
    layout: PivotLayout,
) -> Result<WarmLpResult, SolveError> {
    solve_lp_impl(p, budget, true, hint, layout)
}

fn solve_lp_impl(
    p: &LpProblem,
    budget: &Budget,
    strict: bool,
    hint: Option<&LpBasis>,
    layout: PivotLayout,
) -> Result<WarmLpResult, SolveError> {
    let ncols = p.num_cols();
    // Early exits happen before any tableau exists; they carry an empty
    // basis (nothing useful to hand to the next solve).
    let bare = |outcome: LpOutcome| WarmLpResult {
        outcome,
        basis: LpBasis::default(),
        crash_pivots: 0,
    };
    for j in 0..ncols {
        if p.lo[j] > p.hi[j] + FEAS_TOL {
            return Ok(bare(LpOutcome::Infeasible));
        }
    }

    // --- Build the column map and count tableau columns. ---
    let mut map = Vec::with_capacity(ncols);
    let mut next = 0usize;
    let mut ub_rows = 0usize;
    for j in 0..ncols {
        let (lo, hi) = (p.lo[j], p.hi[j]);
        if lo == hi {
            map.push(ColMap::Fixed { value: lo });
        } else if lo.is_finite() {
            map.push(ColMap::Shifted { col: next, lo });
            next += 1;
            if hi.is_finite() {
                ub_rows += 1;
            }
        } else if hi.is_finite() {
            // x <= hi with free lower end: substitute x = hi - y, y >= 0.
            // Model as shifted with negated column; simpler: split.
            map.push(ColMap::Split {
                plus: next,
                minus: next + 1,
            });
            next += 2;
            ub_rows += 1;
        } else {
            map.push(ColMap::Split {
                plus: next,
                minus: next + 1,
            });
            next += 2;
        }
    }
    let nstruct = next;

    // --- Assemble rows: user rows plus upper-bound rows. ---
    // Each row: dense coefficient vec over nstruct, sense, rhs.
    let total_rows = p.rows.len() + ub_rows;
    let mut rows: Vec<(Vec<f64>, Sense, f64)> = Vec::with_capacity(total_rows);
    for (terms, sense, rhs) in &p.rows {
        let mut dense = vec![0.0; nstruct];
        let mut b = *rhs;
        for &(j, coeff) in terms {
            match map[j] {
                ColMap::Shifted { col, lo } => {
                    dense[col] += coeff;
                    b -= coeff * lo;
                }
                ColMap::Split { plus, minus } => {
                    dense[plus] += coeff;
                    dense[minus] -= coeff;
                }
                ColMap::Fixed { value } => b -= coeff * value,
            }
        }
        rows.push((dense, *sense, b));
    }
    for j in 0..ncols {
        let hi = p.hi[j];
        if !hi.is_finite() {
            continue;
        }
        match map[j] {
            ColMap::Shifted { col, lo } => {
                let mut dense = vec![0.0; nstruct];
                dense[col] = 1.0;
                rows.push((dense, Sense::Le, hi - lo));
            }
            ColMap::Split { plus, minus } => {
                let mut dense = vec![0.0; nstruct];
                dense[plus] = 1.0;
                dense[minus] = -1.0;
                rows.push((dense, Sense::Le, hi));
            }
            ColMap::Fixed { .. } => {}
        }
    }

    // Rows that are vacuous (all-zero lhs) are resolved immediately.
    rows.retain(|(dense, sense, b)| {
        if dense.iter().any(|&c| c != 0.0) {
            return true;
        }
        // 0 {sense} b — keep only to detect infeasibility below via flag.
        let ok = match sense {
            Sense::Le => *b >= -FEAS_TOL,
            Sense::Ge => *b <= FEAS_TOL,
            Sense::Eq => b.abs() <= FEAS_TOL,
        };
        !ok // keep violated vacuous rows; they force infeasibility
    });
    if rows
        .iter()
        .any(|(dense, _, _)| dense.iter().all(|&c| c == 0.0))
    {
        return Ok(bare(LpOutcome::Infeasible));
    }

    let m = rows.len();
    // Count slacks and artificials.
    let mut nslack = 0usize;
    let mut nart = 0usize;
    for (_, sense, b) in &rows {
        let bneg = *b < 0.0;
        match (sense, bneg) {
            (Sense::Le, false) => nslack += 1, // +slack basic
            (Sense::Le, true) => {
                nslack += 1;
                nart += 1;
            } // becomes Ge after negate
            (Sense::Ge, false) => {
                nslack += 1;
                nart += 1;
            }
            (Sense::Ge, true) => nslack += 1, // becomes Le after negate
            (Sense::Eq, _) => nart += 1,
        }
    }
    let n = nstruct + nslack + nart;
    let mut t = Tableau {
        m,
        n,
        a: vec![0.0; m * n],
        rhs: vec![0.0; m],
        basis: vec![usize::MAX; m],
    };
    let mut art_cols: Vec<usize> = Vec::with_capacity(nart);
    let mut sc = nstruct; // next slack column
    let mut ac = nstruct + nslack; // next artificial column
    for (r, (dense, sense, b)) in rows.iter().enumerate() {
        let neg = *b < 0.0;
        let sgn = if neg { -1.0 } else { 1.0 };
        for c in 0..nstruct {
            t.a[r * n + c] = sgn * dense[c];
        }
        t.rhs[r] = sgn * b;
        let eff_sense = match (sense, neg) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        match eff_sense {
            Sense::Le => {
                t.a[r * n + sc] = 1.0;
                t.basis[r] = sc;
                sc += 1;
            }
            Sense::Ge => {
                t.a[r * n + sc] = -1.0;
                sc += 1;
                t.a[r * n + ac] = 1.0;
                t.basis[r] = ac;
                art_cols.push(ac);
                ac += 1;
            }
            Sense::Eq => {
                t.a[r * n + ac] = 1.0;
                t.basis[r] = ac;
                art_cols.push(ac);
                ac += 1;
            }
        }
    }

    // Reverse map: tableau structural column → problem column, used for
    // basis export and for applying a basis hint.
    let mut rev = vec![usize::MAX; nstruct];
    for j in 0..ncols {
        match map[j] {
            ColMap::Shifted { col, .. } => rev[col] = j,
            ColMap::Split { plus, minus } => {
                rev[plus] = j;
                rev[minus] = j;
            }
            ColMap::Fixed { .. } => {}
        }
    }

    let mut iterations = 0usize;
    let mut crash_pivots = 0usize;
    // Sparse sweep's reusable pivot-row nonzero list.
    let mut nz: Vec<usize> = Vec::new();

    // --- Crash the hinted basis in before phase 1. ---
    // Forced-entering pivots with the usual ratio test: the rhs stays
    // non-negative, so the tableau remains a valid phase-1 start no
    // matter how stale the hint is. On a good hint this drives the
    // artificials out up front and phase 1 terminates immediately.
    if let Some(hint) = hint {
        let art_start = nstruct + nslack;
        for &j in &hint.cols {
            if j >= ncols {
                continue; // hint from a differently-shaped model
            }
            let pc = match map[j] {
                ColMap::Shifted { col, .. } => col,
                ColMap::Split { plus, .. } => plus,
                ColMap::Fixed { .. } => continue,
            };
            if t.basis.contains(&pc) {
                continue;
            }
            let mut pr = usize::MAX;
            let mut best_ratio = f64::INFINITY;
            for r in 0..m {
                let a = t.at(r, pc);
                if a <= PIVOT_TOL {
                    continue;
                }
                let ratio = t.rhs[r] / a;
                if ratio < best_ratio - 1e-12 {
                    best_ratio = ratio;
                    pr = r;
                } else if ratio < best_ratio + 1e-12 && pr != usize::MAX {
                    // Among ties, prefer evicting an artificial: that is
                    // the whole point of crashing.
                    if t.basis[r] >= art_start && t.basis[pr] < art_start {
                        pr = r;
                    }
                }
            }
            if pr == usize::MAX {
                continue; // no feasibility-preserving pivot for this column
            }
            budget.tick().map_err(SolveError::from)?;
            t.pivot_with(pr, pc, layout, &mut nz);
            crash_pivots += 1;
            iterations += 1;
        }
    }

    // --- Phase 1: minimize sum of artificials. ---
    if !art_cols.is_empty() {
        let mut cost = vec![0.0; n];
        for &c in &art_cols {
            cost[c] = 1.0;
        }
        match run_simplex(&mut t, &cost, &mut iterations, budget, layout)
            .map_err(SolveError::from)?
        {
            SimplexEnd::Optimal => {}
            SimplexEnd::Unbounded => return Ok(bare(LpOutcome::Infeasible)), // cannot happen; safe
            SimplexEnd::Stalled if strict => {
                return Err(SolveError::Numerical(
                    "phase-1 simplex stalled: pivot cap exhausted without convergence".into(),
                ))
            }
            SimplexEnd::Stalled => {} // legacy: accept the current vertex
        }
        let phase1: f64 = t
            .basis
            .iter()
            .zip(&t.rhs)
            .filter(|(b, _)| art_cols.contains(b))
            .map(|(_, &v)| v)
            .sum();
        if phase1 > 1e-6 {
            // Infeasible, but the phase-1 terminal basis is still a
            // useful hint for the next (e.g. T+1) instance: export it.
            return Ok(WarmLpResult {
                outcome: LpOutcome::Infeasible,
                basis: export_basis(&t, &rev, nstruct),
                crash_pivots,
            });
        }
        // Drive remaining artificials out of the basis where possible.
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(pc) = (0..nstruct + nslack).find(|&c| t.at(r, c).abs() > PIVOT_TOL) {
                    t.pivot_with(r, pc, layout, &mut nz);
                }
                // If no pivot exists the row is redundant (all zeros); the
                // artificial stays basic at value 0 and is harmless as long
                // as its column never re-enters, which the cost filter below
                // ensures.
            }
        }
    }

    // --- Phase 2: minimize the real objective. ---
    let mut cost = vec![0.0; n];
    for j in 0..ncols {
        let cj = p.obj[j];
        if cj == 0.0 {
            continue;
        }
        match map[j] {
            ColMap::Shifted { col, .. } => cost[col] += cj,
            ColMap::Split { plus, minus } => {
                cost[plus] += cj;
                cost[minus] -= cj;
            }
            ColMap::Fixed { .. } => {}
        }
    }
    // Forbid artificials from re-entering.
    let art_start = nstruct + nslack;
    match run_simplex_restricted(&mut t, &cost, art_start, &mut iterations, budget, layout)
        .map_err(SolveError::from)?
    {
        SimplexEnd::Optimal => {}
        SimplexEnd::Unbounded => {
            return Ok(WarmLpResult {
                outcome: LpOutcome::Unbounded,
                basis: export_basis(&t, &rev, nstruct),
                crash_pivots,
            })
        }
        SimplexEnd::Stalled if strict => {
            return Err(SolveError::Numerical(
                "phase-2 simplex stalled: pivot cap exhausted without convergence".into(),
            ))
        }
        SimplexEnd::Stalled => {} // legacy: accept the current vertex
    }

    // --- Extract structural values. ---
    let mut y = vec![0.0; n];
    for r in 0..m {
        y[t.basis[r]] = t.rhs[r];
    }
    let mut x = vec![0.0; ncols];
    let mut objective = 0.0;
    for j in 0..ncols {
        x[j] = match map[j] {
            ColMap::Shifted { col, lo } => lo + y[col],
            ColMap::Split { plus, minus } => y[plus] - y[minus],
            ColMap::Fixed { value } => value,
        };
        objective += p.obj[j] * x[j];
    }
    Ok(WarmLpResult {
        outcome: LpOutcome::Optimal(LpSolution {
            x,
            objective,
            iterations,
        }),
        basis: export_basis(&t, &rev, nstruct),
        crash_pivots,
    })
}

/// Maps the tableau's basic structural columns back to problem columns.
fn export_basis(t: &Tableau, rev: &[usize], nstruct: usize) -> LpBasis {
    let mut cols: Vec<usize> = t
        .basis
        .iter()
        .filter(|&&c| c < nstruct)
        .map(|&c| rev[c])
        .filter(|&j| j != usize::MAX)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    LpBasis { cols }
}

enum SimplexEnd {
    Optimal,
    Unbounded,
    /// The pivot cap ran out before the reduced costs turned non-negative.
    Stalled,
}

fn run_simplex(
    t: &mut Tableau,
    cost: &[f64],
    iterations: &mut usize,
    budget: &Budget,
    layout: PivotLayout,
) -> Result<SimplexEnd, Exhaustion> {
    let n = t.n;
    run_simplex_restricted(t, cost, n, iterations, budget, layout)
}

/// Simplex iterations with entering columns restricted to `0..col_limit`.
///
/// One budget tick is spent per pivot, so a tick cap bounds the work
/// deterministically and a fired cancel token stops the loop within one
/// check interval.
fn run_simplex_restricted(
    t: &mut Tableau,
    cost: &[f64],
    col_limit: usize,
    iterations: &mut usize,
    budget: &Budget,
    layout: PivotLayout,
) -> Result<SimplexEnd, Exhaustion> {
    let m = t.m;
    let n = t.n;
    let mut nz: Vec<usize> = Vec::new();
    // Reduced costs maintained as an explicit objective row.
    let mut z = cost.to_vec();
    for r in 0..m {
        let cb = cost[t.basis[r]];
        if cb != 0.0 {
            for c in 0..n {
                z[c] -= cb * t.at(r, c);
            }
        }
    }
    let mut degen_run = 0usize;
    let max_iter = 50 * (m + n).max(200);
    for _ in 0..max_iter {
        budget.tick()?;
        let bland = degen_run >= DEGEN_SWITCH;
        // Entering column.
        let mut pc = usize::MAX;
        if bland {
            for c in 0..col_limit {
                if z[c] < -FEAS_TOL {
                    pc = c;
                    break;
                }
            }
        } else {
            let mut best = -FEAS_TOL;
            for c in 0..col_limit {
                if z[c] < best {
                    best = z[c];
                    pc = c;
                }
            }
        }
        if pc == usize::MAX {
            return Ok(SimplexEnd::Optimal);
        }
        // Ratio test.
        let mut pr = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for r in 0..m {
            let a = t.at(r, pc);
            if a > PIVOT_TOL {
                let ratio = t.rhs[r] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && (pr == usize::MAX || t.basis[r] < t.basis[pr]))
                {
                    best_ratio = ratio;
                    pr = r;
                }
            }
        }
        if pr == usize::MAX {
            return Ok(SimplexEnd::Unbounded);
        }
        if best_ratio.abs() <= 1e-12 {
            degen_run += 1;
        } else {
            degen_run = 0;
        }
        // Update the objective row, then pivot. The sparse sweep skips
        // the same exact zeros in `z` that it skips in the tableau rows.
        let f = z[pc];
        match layout {
            PivotLayout::Dense => {
                t.pivot(pr, pc);
                if f != 0.0 {
                    for c in 0..n {
                        z[c] -= f * t.at(pr, c);
                    }
                    z[pc] = 0.0;
                }
            }
            PivotLayout::SparseRow => {
                t.pivot_sparse(pr, pc, &mut nz);
                if f != 0.0 {
                    for &c in &nz {
                        z[c] -= f * t.at(pr, c);
                    }
                    z[pc] = 0.0;
                }
            }
        }
        *iterations += 1;
    }
    // Pivot cap exhausted: extremely rare with the Bland fallback. The
    // caller decides whether to surface this as a numerical failure
    // (strict mode) or to accept the current vertex (legacy `solve_lp`,
    // where feasibility is re-verified regardless).
    Ok(SimplexEnd::Stalled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(
        obj: Vec<f64>,
        rows: Vec<(Vec<(usize, f64)>, Sense, f64)>,
        lo: Vec<f64>,
        hi: Vec<f64>,
    ) -> LpProblem {
        LpProblem { obj, rows, lo, hi }
    }

    #[test]
    fn textbook_maximization() {
        // max 5x+4y s.t. 6x+4y<=24, x+2y<=6  -> x=3, y=1.5, obj 21
        let p = lp(
            vec![-5.0, -4.0],
            vec![
                (vec![(0, 6.0), (1, 4.0)], Sense::Le, 24.0),
                (vec![(0, 1.0), (1, 2.0)], Sense::Le, 6.0),
            ],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.objective + 21.0).abs() < 1e-6);
        assert!((s.x[0] - 3.0).abs() < 1e-6);
        assert!((s.x[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x+y s.t. x+y = 4, x >= 1, y >= 1
        let p = lp(
            vec![1.0, 1.0],
            vec![(vec![(0, 1.0), (1, 1.0)], Sense::Eq, 4.0)],
            vec![1.0, 1.0],
            vec![f64::INFINITY, f64::INFINITY],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2
        let p = lp(
            vec![0.0],
            vec![
                (vec![(0, 1.0)], Sense::Le, 1.0),
                (vec![(0, 1.0)], Sense::Ge, 2.0),
            ],
            vec![0.0],
            vec![f64::INFINITY],
        );
        assert!(matches!(solve_lp(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x, x >= 0, no upper limit
        let p = lp(vec![-1.0], vec![], vec![0.0], vec![f64::INFINITY]);
        assert!(matches!(solve_lp(&p), LpOutcome::Unbounded));
    }

    #[test]
    fn respects_upper_bounds() {
        // min -x, 0 <= x <= 7
        let p = lp(vec![-1.0], vec![], vec![0.0], vec![7.0]);
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.x[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable_split() {
        // min x s.t. x >= -5 as a row (x itself free)
        let p = lp(
            vec![1.0],
            vec![(vec![(0, 1.0)], Sense::Ge, -5.0)],
            vec![f64::NEG_INFINITY],
            vec![f64::INFINITY],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.x[0] + 5.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable_substituted() {
        // x fixed at 2; min y s.t. y >= x  -> y = 2
        let p = lp(
            vec![0.0, 1.0],
            vec![(vec![(1, 1.0), (0, -1.0)], Sense::Ge, 0.0)],
            vec![2.0, 0.0],
            vec![2.0, f64::INFINITY],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn crossed_bounds_infeasible() {
        let p = lp(vec![0.0], vec![], vec![3.0], vec![1.0]);
        assert!(matches!(solve_lp(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn negative_rhs_row_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let p = lp(
            vec![1.0],
            vec![(vec![(0, -1.0)], Sense::Le, -3.0)],
            vec![0.0],
            vec![f64::INFINITY],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn vacuous_violated_row_infeasible() {
        // 0 >= 1 after a fixed variable cancels out.
        let p = lp(
            vec![0.0],
            vec![(vec![(0, 1.0)], Sense::Ge, 3.0)],
            vec![2.0],
            vec![2.0],
        );
        assert!(matches!(solve_lp(&p), LpOutcome::Infeasible));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Beale's classic cycling example (with Dantzig rule it cycles
        // without anti-cycling); ensure we terminate at the optimum.
        let p = lp(
            vec![-0.75, 150.0, -0.02, 6.0],
            vec![
                (
                    vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
                    Sense::Le,
                    0.0,
                ),
                (
                    vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
                    Sense::Le,
                    0.0,
                ),
                (vec![(2, 1.0)], Sense::Le, 1.0),
            ],
            vec![0.0; 4],
            vec![f64::INFINITY; 4],
        );
        let s = solve_lp(&p).optimal().expect("optimal");
        assert!((s.objective + 0.05).abs() < 1e-6);
    }
}
