//! Exact rational numbers over [`BigInt`].

use super::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational `num / den`, always normalized: `den > 0`,
/// `gcd(|num|, den) == 1`, and zero is `0/1`.
///
/// ```
/// use swp_milp::exact::BigRat;
/// let a = BigRat::from_ratio(1, 3);
/// let b = BigRat::from_ratio(1, 6);
/// assert_eq!((&a + &b).to_string(), "1/2");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigRat {
    num: BigInt,
    den: BigInt,
}

impl BigRat {
    /// Zero.
    pub fn zero() -> Self {
        BigRat {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigRat {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Self::new(BigInt::from(num), BigInt::from(den))
    }

    /// Creates `num / den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Self::zero();
        }
        let g = num.gcd(&den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        BigRat { num, den }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            &q + &BigInt::one()
        } else {
            q
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> BigRat {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRat::new(self.den.clone(), self.num.clone())
    }

    /// Approximate `f64` value.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Exact conversion from a finite `f64` (every finite double is a
    /// dyadic rational). Returns `None` for NaN or infinities.
    pub fn from_f64(v: f64) -> Option<BigRat> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRat::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, e) = if exp == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1 << 52), exp - 1075)
        };
        let mut num = BigInt::from(mant as i64);
        if neg {
            num = -num;
        }
        let two = BigInt::from(2i64);
        let mut pow = BigInt::one();
        for _ in 0..e.unsigned_abs() {
            pow = &pow * &two;
        }
        Some(if e >= 0 {
            BigRat::from(&num * &pow)
        } else {
            BigRat::new(num, pow)
        })
    }
}

impl From<i64> for BigRat {
    fn from(v: i64) -> Self {
        BigRat {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for BigRat {
    fn from(v: BigInt) -> Self {
        BigRat {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for BigRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b,d > 0): compare a*d with c*b.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Add for &BigRat {
    type Output = BigRat;
    fn add(self, rhs: &BigRat) -> BigRat {
        BigRat::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &BigRat {
    type Output = BigRat;
    fn sub(self, rhs: &BigRat) -> BigRat {
        BigRat::new(
            &(&self.num * &rhs.den) - &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &BigRat {
    type Output = BigRat;
    fn mul(self, rhs: &BigRat) -> BigRat {
        if self.is_zero() || rhs.is_zero() {
            return BigRat::zero();
        }
        BigRat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRat {
    type Output = BigRat;
    fn div(self, rhs: &BigRat) -> BigRat {
        assert!(!rhs.is_zero(), "division by zero");
        BigRat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

impl Neg for BigRat {
    type Output = BigRat;
    fn neg(mut self) -> BigRat {
        self.num = -self.num;
        self
    }
}

macro_rules! forward_owned {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for BigRat {
            type Output = BigRat;
            fn $m(self, rhs: BigRat) -> BigRat {
                (&self).$m(&rhs)
            }
        }
    )*};
}
forward_owned!(Add::add, Sub::sub, Mul::mul, Div::div);

impl AddAssign<&BigRat> for BigRat {
    fn add_assign(&mut self, rhs: &BigRat) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigRat> for BigRat {
    fn sub_assign(&mut self, rhs: &BigRat) {
        *self = &*self - rhs;
    }
}

impl fmt::Display for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRat({self})")
    }
}

impl Default for BigRat {
    fn default() -> Self {
        BigRat::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(BigRat::from_ratio(2, 4).to_string(), "1/2");
        assert_eq!(BigRat::from_ratio(-2, -4).to_string(), "1/2");
        assert_eq!(BigRat::from_ratio(2, -4).to_string(), "-1/2");
        assert_eq!(BigRat::from_ratio(0, 5), BigRat::zero());
    }

    #[test]
    fn field_operations() {
        let a = BigRat::from_ratio(3, 7);
        let b = BigRat::from_ratio(2, 5);
        assert_eq!((&a + &b).to_string(), "29/35");
        assert_eq!((&a - &b).to_string(), "1/35");
        assert_eq!((&a * &b).to_string(), "6/35");
        assert_eq!((&a / &b).to_string(), "15/14");
        assert_eq!((&a * &a.recip()), BigRat::one());
    }

    #[test]
    fn floor_ceil_negative() {
        let x = BigRat::from_ratio(-7, 2); // -3.5
        assert_eq!(x.floor().to_string(), "-4");
        assert_eq!(x.ceil().to_string(), "-3");
        let y = BigRat::from_ratio(7, 2);
        assert_eq!(y.floor().to_string(), "3");
        assert_eq!(y.ceil().to_string(), "4");
        let z = BigRat::from(5i64);
        assert_eq!(z.floor(), z.ceil());
    }

    #[test]
    fn ordering() {
        assert!(BigRat::from_ratio(1, 3) < BigRat::from_ratio(1, 2));
        assert!(BigRat::from_ratio(-1, 2) < BigRat::from_ratio(-1, 3));
        assert_eq!(BigRat::from_ratio(2, 6), BigRat::from_ratio(1, 3));
    }

    #[test]
    fn to_f64_matches() {
        assert!((BigRat::from_ratio(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = BigRat::from_ratio(1, 0);
    }
}
