//! Sign-magnitude arbitrary-precision integers.
//!
//! Stored little-endian in base 2³². Schoolbook multiplication and Knuth
//! Algorithm D division — ample for the coefficient sizes arising in
//! scheduling LPs, where magnitudes stay modest.

// Limb arithmetic is clearer with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub};

/// An arbitrary-precision signed integer.
///
/// ```
/// use swp_milp::exact::BigInt;
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// True for strictly negative values; zero is always non-negative.
    neg: bool,
    /// Little-endian base-2³² magnitude with no trailing zero limbs.
    mag: Vec<u32>,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            neg: false,
            mag: Vec::new(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt {
            neg: false,
            mag: vec![1],
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.is_zero()
    }

    /// Sign as -1, 0, or 1.
    pub fn signum(&self) -> i32 {
        if self.is_zero() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            neg: false,
            mag: self.mag.clone(),
        }
    }

    fn trim(mut mag: Vec<u32>) -> Vec<u32> {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        mag
    }

    fn from_mag(neg: bool, mag: Vec<u32>) -> Self {
        let mag = Self::trim(mag);
        BigInt {
            neg: neg && !mag.is_empty(),
            mag,
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = long[i] as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let d = a[i] as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        Self::trim(out)
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        Self::trim(out)
    }

    /// Divides magnitudes, returning `(quotient, remainder)`.
    fn divrem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (Self::trim(q), r);
        }
        // Knuth Algorithm D.
        let shift = b.last().map_or(0, |w| w.leading_zeros());
        let bn = shl_bits(b, shift);
        let mut an = shl_bits(a, shift);
        an.push(0); // room for the extra limb
        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u32; m + 1];
        let btop = bn[n - 1] as u64;
        let bsec = if n >= 2 { bn[n - 2] as u64 } else { 0 };
        for j in (0..=m).rev() {
            let num = ((an[j + n] as u64) << 32) | an[j + n - 1] as u64;
            let mut qhat = num / btop;
            let mut rhat = num % btop;
            while qhat >= 1u64 << 32
                || qhat as u128 * bsec as u128 > (((rhat as u128) << 32) | an[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += btop;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // Multiply-subtract qhat * bn from an[j..j+n+1].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * bn[i] as u64 + carry;
                carry = p >> 32;
                let sub = an[j + i] as i64 - (p as u32) as i64 - borrow;
                if sub < 0 {
                    an[j + i] = (sub + (1i64 << 32)) as u32;
                    borrow = 1;
                } else {
                    an[j + i] = sub as u32;
                    borrow = 0;
                }
            }
            let sub = an[j + n] as i64 - carry as i64 - borrow;
            if sub < 0 {
                // qhat was one too large: add back.
                an[j + n] = (sub + (1i64 << 32)) as u32;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let s = an[j + i] as u64 + bn[i] as u64 + c;
                    an[j + i] = s as u32;
                    c = s >> 32;
                }
                an[j + n] = (an[j + n] as u64 + c) as u32;
            } else {
                an[j + n] = sub as u32;
            }
            q[j] = qhat as u32;
        }
        let r = shr_bits(&an[..n], shift);
        (Self::trim(q), Self::trim(r))
    }

    /// Quotient and remainder with truncation toward zero
    /// (remainder has the dividend's sign).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = Self::divrem_mag(&self.mag, &other.mag);
        (
            BigInt::from_mag(self.neg != other.neg, q),
            BigInt::from_mag(self.neg, r),
        )
    }

    /// Greatest common divisor (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 4294967296.0 + limb as f64;
        }
        if self.neg {
            -v
        } else {
            v
        }
    }

    /// Exact conversion to `i64` when in range.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            v |= (limb as u64) << (32 * i);
        }
        if self.neg {
            if v > 1u64 << 63 {
                None
            } else if v == 1u64 << 63 {
                Some(i64::MIN)
            } else {
                Some(-(v as i64))
            }
        } else if v <= i64::MAX as u64 {
            Some(v as i64)
        } else {
            None
        }
    }

    /// Exact conversion to `i128` when in range.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &limb) in self.mag.iter().enumerate() {
            v |= (limb as u128) << (32 * i);
        }
        if self.neg {
            if v > 1u128 << 127 {
                None
            } else if v == 1u128 << 127 {
                Some(i128::MIN)
            } else {
                Some(-(v as i128))
            }
        } else if v <= i128::MAX as u128 {
            Some(v as i128)
        } else {
            None
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let neg = v < 0;
        let mut u = v.unsigned_abs();
        let mut mag = Vec::new();
        while u != 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt {
            neg: neg && !mag.is_empty(),
            mag,
        }
    }
}

fn shl_bits(v: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return v.to_vec();
    }
    let mut out = Vec::with_capacity(v.len() + 1);
    let mut carry = 0u32;
    for &limb in v {
        out.push((limb << shift) | carry);
        carry = limb >> (32 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn shr_bits(v: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return v.to_vec();
    }
    let mut out = vec![0u32; v.len()];
    for i in 0..v.len() {
        out[i] = v[i] >> shift;
        if i + 1 < v.len() {
            out[i] |= v[i + 1] << (32 - shift);
        }
    }
    out
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let neg = v < 0;
        let mut u = v.unsigned_abs();
        let mut mag = Vec::new();
        while u != 0 {
            mag.push(u as u32);
            u >>= 32;
        }
        BigInt {
            neg: neg && !mag.is_empty(),
            mag,
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.mag, &other.mag),
            (true, true) => Self::cmp_mag(&other.mag, &self.mag),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.neg == rhs.neg {
            BigInt::from_mag(self.neg, BigInt::add_mag(&self.mag, &rhs.mag))
        } else {
            match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_mag(self.neg, BigInt::sub_mag(&self.mag, &rhs.mag))
                }
                Ordering::Less => BigInt::from_mag(rhs.neg, BigInt::sub_mag(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_mag(self.neg != rhs.neg, BigInt::mul_mag(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        if !self.is_zero() {
            self.neg = !self.neg;
        }
        self
    }
}

macro_rules! forward_owned {
    ($($trait:ident :: $m:ident),*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $m(self, rhs: BigInt) -> BigInt {
                (&self).$m(&rhs)
            }
        }
    )*};
}
forward_owned!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^9.
        let mut mag = self.mag.clone();
        let mut chunks = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u64;
            for i in (0..mag.len()).rev() {
                let cur = (rem << 32) | mag[i] as u64;
                mag[i] = (cur / 1_000_000_000) as u32;
                rem = cur % 1_000_000_000;
            }
            while mag.last() == Some(&0) {
                mag.pop();
            }
            chunks.push(rem as u32);
        }
        if self.neg {
            f.write_str("-")?;
        }
        write!(f, "{}", chunks.last().copied().unwrap_or(0))?;
        for c in chunks.iter().rev().skip(1) {
            write!(f, "{c:09}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_i64() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1, 1 << 40] {
            assert_eq!(BigInt::from(v).to_i64(), Some(v), "{v}");
        }
    }

    #[test]
    fn display_matches_known_values() {
        assert_eq!(BigInt::from(0i64).to_string(), "0");
        assert_eq!(
            BigInt::from(-1234567890123i64).to_string(),
            "-1234567890123"
        );
        let big = &BigInt::from(1_000_000_007i64) * &BigInt::from(1_000_000_007i64);
        assert_eq!(big.to_string(), "1000000014000000049");
    }

    #[test]
    fn arithmetic_agrees_with_i128() {
        let samples: &[i64] = &[
            0,
            1,
            -1,
            7,
            -13,
            1 << 20,
            -(1 << 31),
            1 << 33,
            999_999_999_999,
        ];
        for &a in samples {
            for &b in samples {
                let (ba, bb) = (BigInt::from(a), BigInt::from(b));
                assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
                assert_eq!((&ba - &bb).to_string(), (a as i128 - b as i128).to_string());
                assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
                if b != 0 {
                    let (q, r) = ba.div_rem(&bb);
                    assert_eq!(q.to_string(), (a as i128 / b as i128).to_string());
                    assert_eq!(r.to_string(), (a as i128 % b as i128).to_string());
                }
            }
        }
    }

    #[test]
    fn multi_limb_division() {
        // (2^100 + 3) / (2^50 - 1), cross-check by reconstruction.
        let two = BigInt::from(2i64);
        let mut p100 = BigInt::one();
        for _ in 0..100 {
            p100 = &p100 * &two;
        }
        let mut p50 = BigInt::one();
        for _ in 0..50 {
            p50 = &p50 * &two;
        }
        let a = &p100 + &BigInt::from(3i64);
        let b = &p50 - &BigInt::one();
        let (q, r) = a.div_rem(&b);
        let back = &(&q * &b) + &r;
        assert_eq!(back, a);
        assert!(BigInt::cmp_mag(&r.mag, &b.mag) == Ordering::Less);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigInt::from(48i64).gcd(&BigInt::from(-18i64)),
            BigInt::from(6i64)
        );
        assert_eq!(
            BigInt::from(0i64).gcd(&BigInt::from(5i64)),
            BigInt::from(5i64)
        );
    }

    #[test]
    fn ordering() {
        let mut v = vec![
            BigInt::from(3i64),
            BigInt::from(-7i64),
            BigInt::from(0i64),
            BigInt::from(100i64),
        ];
        v.sort();
        let s: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        assert_eq!(s, ["-7", "0", "3", "100"]);
    }

    #[test]
    fn to_f64_large() {
        let v = BigInt::from(1i64 << 62);
        assert_eq!(v.to_f64(), (1i64 << 62) as f64);
    }
}
