//! Arbitrary-precision arithmetic and an exact rational simplex.
//!
//! The `f64` path in [`crate::simplex`] is fast but decides feasibility
//! with tolerances. For audits — and in this crate's tests — the same LPs
//! can be re-solved here over exact rationals with Bland's rule, which is
//! slower but free of rounding artifacts and guaranteed to terminate.

mod bigint;
mod rational;
mod simplex;
mod smallrat;

pub use bigint::BigInt;
pub use rational::BigRat;
pub use simplex::{solve_lp_exact, solve_lp_exact_dense, ExactLp, ExactOutcome};
pub use smallrat::SmallRat;
