//! Exact rationals with an `i128` fast path.
//!
//! Scheduling LPs have tiny integer coefficients, and even their pivoted
//! tableaus rarely leave machine-word range — yet the dense audit solver
//! pays [`BigRat`] allocation on every add. [`SmallRat`] keeps values as
//! `i128` numerator/denominator pairs and promotes to a heap-allocated
//! [`BigRat`] only on checked-arithmetic overflow, demoting back as soon
//! as a result fits. Every operation is exact in both representations,
//! so swapping `SmallRat` for `BigRat` can never change a comparison —
//! and therefore never a simplex pivot.

use super::{BigInt, BigRat};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact rational: `num / den` in `i128` when it fits, [`BigRat`]
/// otherwise.
///
/// Canonical form is an invariant: `Small` is always normalized
/// (`den > 0`, `gcd(|num|, den) == 1`, zero is `0/1`) and `Big` is only
/// used for values whose reduced numerator or denominator does not fit
/// `i128`. Equality can therefore be derived structurally.
#[derive(Clone, PartialEq, Eq)]
pub enum SmallRat {
    /// `num / den`, normalized, both in machine range.
    Small {
        /// Sign-carrying numerator.
        num: i128,
        /// Denominator, always positive.
        den: i128,
    },
    /// Overflow escape; never holds a value that fits `Small`.
    Big(BigRat),
}

impl SmallRat {
    /// Zero.
    pub fn zero() -> Self {
        SmallRat::Small { num: 0, den: 1 }
    }

    /// One.
    pub fn one() -> Self {
        SmallRat::Small { num: 1, den: 1 }
    }

    /// Normalizes `num / den` into `Small`; `None` when a step (sign
    /// flip of `i128::MIN`) would overflow.
    fn small(num: i128, den: i128) -> Option<SmallRat> {
        assert!(den != 0, "zero denominator");
        if num == 0 {
            return Some(SmallRat::zero());
        }
        let g = gcd_u128(num.unsigned_abs(), den.unsigned_abs());
        if g > i128::MAX as u128 {
            return None; // gcd of two i128::MIN-magnitude values
        }
        let g = g as i128;
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = num.checked_neg()?;
            den = den.checked_neg()?;
        }
        Some(SmallRat::Small { num, den })
    }

    /// Wraps a [`BigRat`], demoting to `Small` when it fits (the
    /// canonical-form invariant).
    fn big(r: BigRat) -> SmallRat {
        match (r.numer().to_i128(), r.denom().to_i128()) {
            // BigRat is already reduced with a positive denominator.
            (Some(num), Some(den)) => SmallRat::Small { num, den },
            _ => SmallRat::Big(r),
        }
    }

    /// Exact conversion from a [`BigRat`].
    pub fn from_bigrat(r: &BigRat) -> SmallRat {
        SmallRat::big(r.clone())
    }

    /// Exact conversion to a [`BigRat`].
    pub fn to_bigrat(&self) -> BigRat {
        match self {
            SmallRat::Small { num, den } => BigRat::new(BigInt::from(*num), BigInt::from(*den)),
            SmallRat::Big(r) => r.clone(),
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        match self {
            SmallRat::Small { num, .. } => *num == 0,
            SmallRat::Big(r) => r.is_zero(),
        }
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match self {
            SmallRat::Small { num, .. } => *num < 0,
            SmallRat::Big(r) => r.is_negative(),
        }
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match self {
            SmallRat::Small { num, .. } => *num > 0,
            SmallRat::Big(r) => r.is_positive(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> SmallRat {
        assert!(!self.is_zero(), "reciprocal of zero");
        match self {
            SmallRat::Small { num, den } => {
                // Already coprime; only the sign swap can overflow.
                match SmallRat::small(*den, *num) {
                    Some(v) => v,
                    None => SmallRat::big(self.to_bigrat().recip()),
                }
            }
            SmallRat::Big(r) => SmallRat::big(r.recip()),
        }
    }
}

impl From<i64> for SmallRat {
    fn from(v: i64) -> Self {
        SmallRat::Small {
            num: v as i128,
            den: 1,
        }
    }
}

impl Default for SmallRat {
    fn default() -> Self {
        SmallRat::zero()
    }
}

impl Add for &SmallRat {
    type Output = SmallRat;
    fn add(self, rhs: &SmallRat) -> SmallRat {
        if let (SmallRat::Small { num: a, den: b }, SmallRat::Small { num: c, den: d }) =
            (self, rhs)
        {
            let fast = || {
                let n = a.checked_mul(*d)?.checked_add(c.checked_mul(*b)?)?;
                SmallRat::small(n, b.checked_mul(*d)?)
            };
            if let Some(v) = fast() {
                return v;
            }
        }
        SmallRat::big(&self.to_bigrat() + &rhs.to_bigrat())
    }
}

impl Neg for &SmallRat {
    type Output = SmallRat;
    fn neg(self) -> SmallRat {
        match self {
            SmallRat::Small { num, den } => match num.checked_neg() {
                Some(n) => SmallRat::Small { num: n, den: *den },
                None => SmallRat::big(-self.to_bigrat()),
            },
            SmallRat::Big(r) => SmallRat::big(-r.clone()),
        }
    }
}

impl Sub for &SmallRat {
    type Output = SmallRat;
    fn sub(self, rhs: &SmallRat) -> SmallRat {
        if let (SmallRat::Small { num: a, den: b }, SmallRat::Small { num: c, den: d }) =
            (self, rhs)
        {
            let fast = || {
                let n = a.checked_mul(*d)?.checked_sub(c.checked_mul(*b)?)?;
                SmallRat::small(n, b.checked_mul(*d)?)
            };
            if let Some(v) = fast() {
                return v;
            }
        }
        SmallRat::big(&self.to_bigrat() - &rhs.to_bigrat())
    }
}

impl Mul for &SmallRat {
    type Output = SmallRat;
    fn mul(self, rhs: &SmallRat) -> SmallRat {
        if self.is_zero() || rhs.is_zero() {
            return SmallRat::zero();
        }
        if let (SmallRat::Small { num: a, den: b }, SmallRat::Small { num: c, den: d }) =
            (self, rhs)
        {
            // Cross-reduce before multiplying to keep products in range.
            let g1 = gcd_u128(a.unsigned_abs(), d.unsigned_abs());
            let g2 = gcd_u128(c.unsigned_abs(), b.unsigned_abs());
            if g1 <= i128::MAX as u128 && g2 <= i128::MAX as u128 {
                let (g1, g2) = (g1 as i128, g2 as i128);
                let fast = || {
                    SmallRat::small((a / g1).checked_mul(c / g2)?, (b / g2).checked_mul(d / g1)?)
                };
                if let Some(v) = fast() {
                    return v;
                }
            }
        }
        SmallRat::big(&self.to_bigrat() * &rhs.to_bigrat())
    }
}

impl Div for &SmallRat {
    type Output = SmallRat;
    fn div(self, rhs: &SmallRat) -> SmallRat {
        self * &rhs.recip()
    }
}

impl PartialOrd for SmallRat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SmallRat {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (SmallRat::Small { num: a, den: b }, SmallRat::Small { num: c, den: d }) =
            (self, other)
        {
            // a/b vs c/d (b,d > 0): compare a*d with c*b.
            if let (Some(l), Some(r)) = (a.checked_mul(*d), c.checked_mul(*b)) {
                return l.cmp(&r);
            }
        }
        self.to_bigrat().cmp(&other.to_bigrat())
    }
}

impl fmt::Display for SmallRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmallRat::Small { num, den: 1 } => write!(f, "{num}"),
            SmallRat::Small { num, den } => write!(f, "{num}/{den}"),
            SmallRat::Big(r) => write!(f, "{r}"),
        }
    }
}

impl fmt::Debug for SmallRat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SmallRat({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: i64, d: i64) -> SmallRat {
        SmallRat::from_bigrat(&BigRat::from_ratio(n, d))
    }

    #[test]
    fn small_arithmetic_matches_bigrat() {
        let cases = [(3, 7), (-2, 5), (0, 1), (10, 4), (-9, -6)];
        for &(an, ad) in &cases {
            for &(bn, bd) in &cases {
                let (a, b) = (s(an, ad), s(bn, bd));
                let (ra, rb) = (BigRat::from_ratio(an, ad), BigRat::from_ratio(bn, bd));
                assert_eq!((&a + &b).to_bigrat(), &ra + &rb);
                assert_eq!((&a - &b).to_bigrat(), &ra - &rb);
                assert_eq!((-&a).to_bigrat(), -ra.clone());
                assert_eq!((&a * &b).to_bigrat(), &ra * &rb);
                assert_eq!(a.cmp(&b), ra.cmp(&rb));
                if !b.is_zero() {
                    assert_eq!((&a / &b).to_bigrat(), &ra / &rb);
                }
            }
        }
    }

    #[test]
    fn overflow_promotes_and_demotes() {
        let huge = SmallRat::Small {
            num: i128::MAX / 2,
            den: 1,
        };
        let three = s(3, 1);
        // (i128::MAX/2) * 3 overflows i128: must promote, not wrap.
        let prod = &huge * &three;
        assert!(matches!(prod, SmallRat::Big(_)));
        assert_eq!(
            prod.to_bigrat(),
            &huge.to_bigrat() * &BigRat::from_ratio(3, 1)
        );
        // Dividing back demotes to Small (canonical form).
        let back = &prod / &three;
        assert!(matches!(back, SmallRat::Small { .. }));
        assert_eq!(back, huge);
    }

    #[test]
    fn canonical_form_makes_equality_structural() {
        assert_eq!(s(2, 4), s(1, 2));
        assert_eq!(s(-2, -4), s(1, 2));
        let promoted = SmallRat::from_bigrat(&BigRat::from_ratio(1, 2));
        assert!(matches!(promoted, SmallRat::Small { .. }));
    }

    #[test]
    fn recip_and_signs() {
        assert_eq!(s(3, 4).recip(), s(4, 3));
        assert_eq!(s(-3, 4).recip(), s(-4, 3));
        assert!(s(-1, 2).is_negative());
        assert!(s(1, 2).is_positive());
        assert!(SmallRat::zero().is_zero());
    }
}
