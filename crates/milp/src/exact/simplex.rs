//! Exact rational simplex with Bland's rule.
//!
//! Mirrors the transformation pipeline of [`crate::simplex`] — shift or
//! split variables to non-negativity, turn finite upper bounds into rows,
//! add slacks and artificials, run two phases — but every number is exact
//! and Bland's rule guarantees finite termination. Used to audit the
//! `f64` path.
//!
//! Two implementations share the pipeline:
//!
//! * [`solve_lp_exact`] — the default: sparse `(column, coefficient)`
//!   rows over [`SmallRat`] (`i128` fast path, [`BigRat`] overflow
//!   escape) with a maintained reduced-cost row, so each pivot touches
//!   only structural nonzeros.
//! * [`solve_lp_exact_dense`] — the seed's dense [`BigRat`] tableau
//!   with reduced costs recomputed per iteration.
//!
//! Both run textbook Bland over exact arithmetic, so their pivot
//! sequences — and therefore outcomes, down to the exact optimum —
//! are identical; the test suite asserts it.

// Tableau arithmetic is clearer with explicit indices.
#![allow(clippy::needless_range_loop)]

use super::{BigRat, SmallRat};
use crate::model::Sense;
use crate::simplex::LpProblem;

/// An LP over exact rationals in bounded row form.
///
/// `lo[j]`/`hi[j]` of `None` mean unbounded on that side.
#[derive(Debug, Clone)]
pub struct ExactLp {
    /// Minimization objective, one coefficient per column.
    pub obj: Vec<BigRat>,
    /// Sparse rows `(terms, sense, rhs)`.
    pub rows: Vec<(Vec<(usize, BigRat)>, Sense, BigRat)>,
    /// Lower bounds; `None` = −∞.
    pub lo: Vec<Option<BigRat>>,
    /// Upper bounds; `None` = +∞.
    pub hi: Vec<Option<BigRat>>,
}

impl ExactLp {
    /// Converts the `f64` problem exactly (every finite double is a
    /// dyadic rational); infinite bounds become `None`.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is NaN.
    pub fn from_f64_problem(p: &LpProblem) -> ExactLp {
        let cvt = |v: f64| BigRat::from_f64(v).expect("NaN coefficient");
        let bound = |v: f64| {
            if v.is_finite() {
                Some(BigRat::from_f64(v).expect("finite"))
            } else {
                None
            }
        };
        ExactLp {
            obj: p.obj.iter().map(|&c| cvt(c)).collect(),
            rows: p
                .rows
                .iter()
                .map(|(t, s, b)| (t.iter().map(|&(j, c)| (j, cvt(c))).collect(), *s, cvt(*b)))
                .collect(),
            lo: p.lo.iter().map(|&v| bound(v)).collect(),
            hi: p.hi.iter().map(|&v| bound(v)).collect(),
        }
    }
}

/// Result of an exact LP solve.
#[derive(Debug, Clone)]
pub enum ExactOutcome {
    /// Optimum found: column values and objective.
    Optimal {
        /// Exact value of each structural column.
        x: Vec<BigRat>,
        /// Exact objective value.
        objective: BigRat,
    },
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

#[derive(Debug, Clone, Copy)]
enum ColMap {
    Shifted { col: usize },
    Split { plus: usize, minus: usize },
    Fixed,
}

/// Maps original columns to the non-negative standard form:
/// `(map, nstruct, ub_rows)` where `ub_rows` counts the finite upper
/// bounds that become extra `≤` rows.
fn column_map(p: &ExactLp) -> (Vec<ColMap>, usize, usize) {
    let ncols = p.obj.len();
    let mut map = Vec::with_capacity(ncols);
    let mut next = 0usize;
    let mut ub_rows = 0usize;
    for j in 0..ncols {
        match (&p.lo[j], &p.hi[j]) {
            (Some(lo), Some(hi)) if lo == hi => map.push(ColMap::Fixed),
            (Some(_), hi) => {
                map.push(ColMap::Shifted { col: next });
                next += 1;
                if hi.is_some() {
                    ub_rows += 1;
                }
            }
            (None, hi) => {
                map.push(ColMap::Split {
                    plus: next,
                    minus: next + 1,
                });
                next += 2;
                if hi.is_some() {
                    ub_rows += 1;
                }
            }
        }
    }
    (map, next, ub_rows)
}

// ---------------------------------------------------------------------
// Sparse SmallRat solver (the default).
// ---------------------------------------------------------------------

/// Sparse tableau: each row a column-sorted `(col, value)` list holding
/// no exact zeros, so pivoting skips structural zeros entirely.
struct SparseTab {
    m: usize,
    rows: Vec<Vec<(usize, SmallRat)>>,
    rhs: Vec<SmallRat>,
    basis: Vec<usize>,
}

fn row_find(row: &[(usize, SmallRat)], c: usize) -> Option<&SmallRat> {
    row.binary_search_by_key(&c, |t| t.0)
        .ok()
        .map(|i| &row[i].1)
}

impl SparseTab {
    /// `out = row − f·prow`, a merge of two column-sorted lists; values
    /// that cancel exactly are dropped on the spot.
    fn saxpy(
        out: &mut Vec<(usize, SmallRat)>,
        row: &[(usize, SmallRat)],
        f: &SmallRat,
        prow: &[(usize, SmallRat)],
    ) {
        out.clear();
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            match (row.get(i), prow.get(j)) {
                (Some((c1, v)), Some((c2, p))) if c1 == c2 => {
                    let v = v - &(f * p);
                    if !v.is_zero() {
                        out.push((*c1, v));
                    }
                    i += 1;
                    j += 1;
                }
                (Some((c1, v)), Some((c2, _))) if c1 < c2 => {
                    out.push((*c1, v.clone()));
                    i += 1;
                }
                (Some(_) | None, Some((c2, p))) => {
                    let v = -&(f * p);
                    if !v.is_zero() {
                        out.push((*c2, v));
                    }
                    j += 1;
                }
                (Some((c1, v)), None) => {
                    out.push((*c1, v.clone()));
                    i += 1;
                }
                (None, None) => break,
            }
        }
    }

    /// Pivots on `(pr, pc)` and keeps the maintained reduced-cost row
    /// `z` consistent (`z −= z[pc]·prow` after row normalization).
    fn pivot(
        &mut self,
        pr: usize,
        pc: usize,
        z: &mut [SmallRat],
        scratch: &mut Vec<(usize, SmallRat)>,
    ) {
        let inv = row_find(&self.rows[pr], pc).expect("pivot on zero").recip();
        let mut prow = std::mem::take(&mut self.rows[pr]);
        for t in &mut prow {
            t.1 = &t.1 * &inv;
        }
        self.rhs[pr] = &self.rhs[pr] * &inv;
        let rhs_pr = self.rhs[pr].clone();
        for r in 0..self.m {
            if r == pr {
                continue;
            }
            let Some(f) = row_find(&self.rows[r], pc).cloned() else {
                continue;
            };
            Self::saxpy(scratch, &self.rows[r], &f, &prow);
            std::mem::swap(&mut self.rows[r], scratch);
            self.rhs[r] = &self.rhs[r] - &(&f * &rhs_pr);
        }
        let zf = z[pc].clone();
        if !zf.is_zero() {
            for (c, v) in &prow {
                z[*c] = &z[*c] - &(&zf * v);
            }
        }
        self.rows[pr] = prow;
        self.basis[pr] = pc;
    }
}

/// Reduced costs `z_j = c_j − c_B B⁻¹ A_j` from scratch (phase starts).
fn reduced_costs(t: &SparseTab, cost: &[SmallRat]) -> Vec<SmallRat> {
    let mut z = cost.to_vec();
    for r in 0..t.m {
        let cb = cost[t.basis[r]].clone();
        if cb.is_zero() {
            continue;
        }
        for (c, v) in &t.rows[r] {
            z[*c] = &z[*c] - &(&cb * v);
        }
    }
    z
}

enum End {
    Optimal,
    Unbounded,
}

/// Bland's rule over the maintained reduced-cost row: lowest-index
/// entering column with negative reduced cost (basic columns have
/// exactly-zero reduced cost, so no basis test is needed), lowest-
/// basis-index tie-break in the ratio test. Pivot-identical to the
/// dense recomputed-cost loop because both arithmetics are exact.
fn bland_sparse(
    t: &mut SparseTab,
    z: &mut [SmallRat],
    col_limit: usize,
    scratch: &mut Vec<(usize, SmallRat)>,
) -> End {
    loop {
        let Some(pc) = (0..col_limit).find(|&c| z[c].is_negative()) else {
            return End::Optimal;
        };
        let mut pr = None;
        let mut best: Option<SmallRat> = None;
        for r in 0..t.m {
            let Some(a) = row_find(&t.rows[r], pc) else {
                continue;
            };
            if a.is_positive() {
                let ratio = &t.rhs[r] / a;
                let take = match &best {
                    None => true,
                    Some(b) => {
                        ratio < *b || (ratio == *b && pr.map_or(true, |p| t.basis[r] < t.basis[p]))
                    }
                };
                if take {
                    best = Some(ratio);
                    pr = Some(r);
                }
            }
        }
        let Some(pr) = pr else {
            return End::Unbounded;
        };
        t.pivot(pr, pc, z, scratch);
    }
}

/// Solves `p` exactly over sparse [`SmallRat`] rows. See
/// [`ExactOutcome`]; outcome-identical to [`solve_lp_exact_dense`].
pub fn solve_lp_exact(p: &ExactLp) -> ExactOutcome {
    let ncols = p.obj.len();
    for j in 0..ncols {
        if let (Some(lo), Some(hi)) = (&p.lo[j], &p.hi[j]) {
            if lo > hi {
                return ExactOutcome::Infeasible;
            }
        }
    }
    let (map, nstruct, ub_rows) = column_map(p);
    let cvt = SmallRat::from_bigrat;
    let fixed_val = |j: usize| p.lo[j].clone().expect("fixed has lo");

    // Rows in standard form: accumulate (duplicate columns sum, exactly
    // as the dense scatter does), sort by column, drop exact zeros.
    let mut rows: Vec<(Vec<(usize, SmallRat)>, Sense, SmallRat)> =
        Vec::with_capacity(p.rows.len() + ub_rows);
    let mut push_row = |acc: Vec<(usize, SmallRat)>, sense: Sense, b: SmallRat| {
        let mut acc = acc;
        acc.sort_by_key(|t| t.0);
        let mut merged: Vec<(usize, SmallRat)> = Vec::with_capacity(acc.len());
        for (c, v) in acc {
            match merged.last_mut() {
                Some((lc, lv)) if *lc == c => *lv = &*lv + &v,
                _ => merged.push((c, v)),
            }
        }
        merged.retain(|t| !t.1.is_zero());
        rows.push((merged, sense, b));
    };
    for (terms, sense, rhs) in &p.rows {
        let mut acc = Vec::with_capacity(terms.len() + 1);
        let mut b = cvt(rhs);
        for (j, coeff) in terms {
            let coeff = cvt(coeff);
            match map[*j] {
                ColMap::Shifted { col } => {
                    let lo = cvt(&p.lo[*j].clone().expect("shifted has lo"));
                    b = &b - &(&coeff * &lo);
                    acc.push((col, coeff));
                }
                ColMap::Split { plus, minus } => {
                    acc.push((plus, coeff.clone()));
                    acc.push((minus, -&coeff));
                }
                ColMap::Fixed => b = &b - &(&coeff * &cvt(&fixed_val(*j))),
            }
        }
        push_row(acc, *sense, b);
    }
    for j in 0..ncols {
        let Some(hi) = &p.hi[j] else { continue };
        match map[j] {
            ColMap::Shifted { col } => {
                let lo = p.lo[j].clone().expect("shifted has lo");
                push_row(vec![(col, SmallRat::one())], Sense::Le, cvt(&(hi - &lo)));
            }
            ColMap::Split { plus, minus } => {
                push_row(
                    vec![(plus, SmallRat::one()), (minus, -&SmallRat::one())],
                    Sense::Le,
                    cvt(hi),
                );
            }
            ColMap::Fixed => {}
        }
    }

    // Vacuous rows.
    let mut infeasible_vacuous = false;
    rows.retain(|(terms, sense, b)| {
        if !terms.is_empty() {
            return true;
        }
        let ok = match sense {
            Sense::Le => !b.is_negative(),
            Sense::Ge => !b.is_positive(),
            Sense::Eq => b.is_zero(),
        };
        if !ok {
            infeasible_vacuous = true;
        }
        false
    });
    if infeasible_vacuous {
        return ExactOutcome::Infeasible;
    }

    // Slacks and artificials, exactly as the dense path assigns them.
    let m = rows.len();
    let mut nslack = 0usize;
    let mut nart = 0usize;
    for (_, sense, b) in &rows {
        let neg = b.is_negative();
        match (sense, neg) {
            (Sense::Le, false) | (Sense::Ge, true) => nslack += 1,
            (Sense::Le, true) | (Sense::Ge, false) => {
                nslack += 1;
                nart += 1;
            }
            (Sense::Eq, _) => nart += 1,
        }
    }
    let n = nstruct + nslack + nart;
    let mut t = SparseTab {
        m,
        rows: Vec::with_capacity(m),
        rhs: Vec::with_capacity(m),
        basis: vec![usize::MAX; m],
    };
    let mut sc = nstruct;
    let mut ac = nstruct + nslack;
    for (r, (terms, sense, b)) in rows.into_iter().enumerate() {
        let neg = b.is_negative();
        let mut row: Vec<(usize, SmallRat)> = if neg {
            terms.into_iter().map(|(c, v)| (c, -&v)).collect()
        } else {
            terms
        };
        t.rhs.push(if neg { -&b } else { b });
        let eff = match (sense, neg) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        // Slack then artificial columns keep the row column-sorted:
        // every structural col < sc < ac.
        match eff {
            Sense::Le => {
                row.push((sc, SmallRat::one()));
                t.basis[r] = sc;
                sc += 1;
            }
            Sense::Ge => {
                row.push((sc, -&SmallRat::one()));
                sc += 1;
                row.push((ac, SmallRat::one()));
                t.basis[r] = ac;
                ac += 1;
            }
            Sense::Eq => {
                row.push((ac, SmallRat::one()));
                t.basis[r] = ac;
                ac += 1;
            }
        }
        t.rows.push(row);
    }
    let art_start = nstruct + nslack;
    let mut scratch = Vec::new();

    // Phase 1.
    if nart > 0 {
        let mut cost = vec![SmallRat::zero(); n];
        for c in art_start..n {
            cost[c] = SmallRat::one();
        }
        let mut z = reduced_costs(&t, &cost);
        match bland_sparse(&mut t, &mut z, n, &mut scratch) {
            End::Optimal => {}
            End::Unbounded => return ExactOutcome::Infeasible,
        }
        let mut phase1 = SmallRat::zero();
        for r in 0..m {
            if t.basis[r] >= art_start {
                phase1 = &phase1 + &t.rhs[r];
            }
        }
        if !phase1.is_zero() {
            return ExactOutcome::Infeasible;
        }
        for r in 0..m {
            if t.basis[r] >= art_start {
                // Rows are column-sorted, so the first entry below the
                // artificial range is the lowest-index nonzero — the
                // same column the dense left-to-right scan pivots on.
                if let Some(&(pc, _)) = t.rows[r].first().filter(|(c, _)| *c < art_start) {
                    t.pivot(r, pc, &mut z, &mut scratch);
                }
            }
        }
    }

    // Phase 2, artificials excluded from entering.
    let mut cost = vec![SmallRat::zero(); n];
    for j in 0..ncols {
        if p.obj[j].is_zero() {
            continue;
        }
        let c = cvt(&p.obj[j]);
        match map[j] {
            ColMap::Shifted { col } => cost[col] = &cost[col] + &c,
            ColMap::Split { plus, minus } => {
                cost[plus] = &cost[plus] + &c;
                cost[minus] = &cost[minus] - &c;
            }
            ColMap::Fixed => {}
        }
    }
    let mut z = reduced_costs(&t, &cost);
    match bland_sparse(&mut t, &mut z, art_start, &mut scratch) {
        End::Optimal => {}
        End::Unbounded => return ExactOutcome::Unbounded,
    }

    // Extract.
    let mut y = vec![BigRat::zero(); n];
    for r in 0..m {
        y[t.basis[r]] = t.rhs[r].to_bigrat();
    }
    let mut x = vec![BigRat::zero(); ncols];
    let mut objective = BigRat::zero();
    for j in 0..ncols {
        x[j] = match map[j] {
            ColMap::Shifted { col } => {
                let lo = p.lo[j].clone().expect("shifted has lo");
                &lo + &y[col]
            }
            ColMap::Split { plus, minus } => &y[plus] - &y[minus],
            ColMap::Fixed => fixed_val(j),
        };
        objective += &(&p.obj[j] * &x[j]);
    }
    ExactOutcome::Optimal { x, objective }
}

// ---------------------------------------------------------------------
// Dense BigRat solver (the seed implementation, kept as the reference
// the sparse path is tested against).
// ---------------------------------------------------------------------

struct Tab {
    m: usize,
    n: usize,
    a: Vec<BigRat>,
    rhs: Vec<BigRat>,
    basis: Vec<usize>,
}

impl Tab {
    fn at(&self, r: usize, c: usize) -> &BigRat {
        &self.a[r * self.n + c]
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let n = self.n;
        let inv = self.a[pr * n + pc].recip();
        for c in 0..n {
            self.a[pr * n + c] = &self.a[pr * n + c] * &inv;
        }
        self.rhs[pr] = &self.rhs[pr] * &inv;
        let prow: Vec<BigRat> = self.a[pr * n..(pr + 1) * n].to_vec();
        let rhs_pr = self.rhs[pr].clone();
        for r in 0..self.m {
            if r == pr {
                continue;
            }
            let f = self.a[r * n + pc].clone();
            if !f.is_zero() {
                for c in 0..n {
                    let sub = &f * &prow[c];
                    self.a[r * n + c] = &self.a[r * n + c] - &sub;
                }
                self.rhs[r] = &self.rhs[r] - &(&f * &rhs_pr);
            }
        }
        self.basis[pr] = pc;
    }
}

/// Bland's rule: lowest-index entering column with negative reduced cost,
/// lowest-basis-index tie-break in the ratio test. Terminates finitely.
fn bland(t: &mut Tab, cost: &[BigRat], col_limit: usize) -> End {
    loop {
        // Reduced costs z_j = c_j - c_B B^-1 A_j computed directly.
        let mut entering = None;
        for c in 0..col_limit {
            if t.basis.contains(&c) {
                continue;
            }
            let mut z = cost[c].clone();
            for r in 0..t.m {
                if !cost[t.basis[r]].is_zero() {
                    z -= &(&cost[t.basis[r]] * t.at(r, c));
                }
            }
            if z.is_negative() {
                entering = Some(c);
                break;
            }
        }
        let Some(pc) = entering else {
            return End::Optimal;
        };
        let mut pr = None;
        let mut best: Option<BigRat> = None;
        for r in 0..t.m {
            if t.at(r, pc).is_positive() {
                let ratio = &t.rhs[r] / t.at(r, pc);
                let take = match &best {
                    None => true,
                    Some(b) => {
                        ratio < *b || (ratio == *b && pr.map_or(true, |p| t.basis[r] < t.basis[p]))
                    }
                };
                if take {
                    best = Some(ratio);
                    pr = Some(r);
                }
            }
        }
        let Some(pr) = pr else {
            return End::Unbounded;
        };
        t.pivot(pr, pc);
    }
}

/// Solves `p` exactly over the dense [`BigRat`] tableau. See
/// [`ExactOutcome`]; outcome-identical to (but slower than)
/// [`solve_lp_exact`].
pub fn solve_lp_exact_dense(p: &ExactLp) -> ExactOutcome {
    let ncols = p.obj.len();
    for j in 0..ncols {
        if let (Some(lo), Some(hi)) = (&p.lo[j], &p.hi[j]) {
            if lo > hi {
                return ExactOutcome::Infeasible;
            }
        }
    }

    let (map, nstruct, ub_rows) = column_map(p);

    // Dense rows.
    let mut rows: Vec<(Vec<BigRat>, Sense, BigRat)> = Vec::with_capacity(p.rows.len() + ub_rows);
    let fixed_val = |j: usize| p.lo[j].clone().expect("fixed has lo");
    for (terms, sense, rhs) in &p.rows {
        let mut dense = vec![BigRat::zero(); nstruct];
        let mut b = rhs.clone();
        for (j, coeff) in terms {
            match map[*j] {
                ColMap::Shifted { col } => {
                    let lo = p.lo[*j].clone().expect("shifted has lo");
                    dense[col] = &dense[col] + coeff;
                    b -= &(coeff * &lo);
                }
                ColMap::Split { plus, minus } => {
                    dense[plus] = &dense[plus] + coeff;
                    dense[minus] = &dense[minus] - coeff;
                }
                ColMap::Fixed => b -= &(coeff * &fixed_val(*j)),
            }
        }
        rows.push((dense, *sense, b));
    }
    for j in 0..ncols {
        let Some(hi) = &p.hi[j] else { continue };
        match map[j] {
            ColMap::Shifted { col } => {
                let lo = p.lo[j].clone().expect("shifted has lo");
                let mut dense = vec![BigRat::zero(); nstruct];
                dense[col] = BigRat::one();
                rows.push((dense, Sense::Le, hi - &lo));
            }
            ColMap::Split { plus, minus } => {
                let mut dense = vec![BigRat::zero(); nstruct];
                dense[plus] = BigRat::one();
                dense[minus] = -BigRat::one();
                rows.push((dense, Sense::Le, hi.clone()));
            }
            ColMap::Fixed => {}
        }
    }

    // Vacuous rows.
    let mut infeasible_vacuous = false;
    rows.retain(|(dense, sense, b)| {
        if dense.iter().any(|c| !c.is_zero()) {
            return true;
        }
        let ok = match sense {
            Sense::Le => !b.is_negative(),
            Sense::Ge => !b.is_positive(),
            Sense::Eq => b.is_zero(),
        };
        if !ok {
            infeasible_vacuous = true;
        }
        false
    });
    if infeasible_vacuous {
        return ExactOutcome::Infeasible;
    }

    let m = rows.len();
    let mut nslack = 0usize;
    let mut nart = 0usize;
    for (_, sense, b) in &rows {
        let neg = b.is_negative();
        match (sense, neg) {
            (Sense::Le, false) | (Sense::Ge, true) => nslack += 1,
            (Sense::Le, true) | (Sense::Ge, false) => {
                nslack += 1;
                nart += 1;
            }
            (Sense::Eq, _) => nart += 1,
        }
    }
    let n = nstruct + nslack + nart;
    let mut t = Tab {
        m,
        n,
        a: vec![BigRat::zero(); m * n],
        rhs: vec![BigRat::zero(); m],
        basis: vec![usize::MAX; m],
    };
    let mut art_cols = Vec::with_capacity(nart);
    let mut sc = nstruct;
    let mut ac = nstruct + nslack;
    for (r, (dense, sense, b)) in rows.iter().enumerate() {
        let neg = b.is_negative();
        for c in 0..nstruct {
            t.a[r * n + c] = if neg {
                -dense[c].clone()
            } else {
                dense[c].clone()
            };
        }
        t.rhs[r] = if neg { -b.clone() } else { b.clone() };
        let eff = match (sense, neg) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        match eff {
            Sense::Le => {
                t.a[r * n + sc] = BigRat::one();
                t.basis[r] = sc;
                sc += 1;
            }
            Sense::Ge => {
                t.a[r * n + sc] = -BigRat::one();
                sc += 1;
                t.a[r * n + ac] = BigRat::one();
                t.basis[r] = ac;
                art_cols.push(ac);
                ac += 1;
            }
            Sense::Eq => {
                t.a[r * n + ac] = BigRat::one();
                t.basis[r] = ac;
                art_cols.push(ac);
                ac += 1;
            }
        }
    }

    // Phase 1.
    if !art_cols.is_empty() {
        let mut cost = vec![BigRat::zero(); n];
        for &c in &art_cols {
            cost[c] = BigRat::one();
        }
        match bland(&mut t, &cost, n) {
            End::Optimal => {}
            End::Unbounded => return ExactOutcome::Infeasible,
        }
        let mut phase1 = BigRat::zero();
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                phase1 += &t.rhs[r];
            }
        }
        if !phase1.is_zero() {
            return ExactOutcome::Infeasible;
        }
        for r in 0..m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(pc) = (0..nstruct + nslack).find(|&c| !t.at(r, c).is_zero()) {
                    t.pivot(r, pc);
                }
            }
        }
    }

    // Phase 2, artificials excluded from entering.
    let mut cost = vec![BigRat::zero(); n];
    for j in 0..ncols {
        if p.obj[j].is_zero() {
            continue;
        }
        match map[j] {
            ColMap::Shifted { col } => cost[col] = &cost[col] + &p.obj[j],
            ColMap::Split { plus, minus } => {
                cost[plus] = &cost[plus] + &p.obj[j];
                cost[minus] = &cost[minus] - &p.obj[j];
            }
            ColMap::Fixed => {}
        }
    }
    match bland(&mut t, &cost, nstruct + nslack) {
        End::Optimal => {}
        End::Unbounded => return ExactOutcome::Unbounded,
    }

    // Extract.
    let mut y = vec![BigRat::zero(); n];
    for r in 0..m {
        y[t.basis[r]] = t.rhs[r].clone();
    }
    let mut x = vec![BigRat::zero(); ncols];
    let mut objective = BigRat::zero();
    for j in 0..ncols {
        x[j] = match map[j] {
            ColMap::Shifted { col } => {
                let lo = p.lo[j].clone().expect("shifted has lo");
                &lo + &y[col]
            }
            ColMap::Split { plus, minus } => &y[plus] - &y[minus],
            ColMap::Fixed => fixed_val(j),
        };
        objective += &(&p.obj[j] * &x[j]);
    }
    ExactOutcome::Optimal { x, objective }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> BigRat {
        BigRat::from(v)
    }

    #[test]
    fn exact_textbook() {
        // min -5x -4y s.t. 6x+4y<=24, x+2y<=6, x,y >= 0 -> obj -21
        let p = ExactLp {
            obj: vec![r(-5), r(-4)],
            rows: vec![
                (vec![(0, r(6)), (1, r(4))], Sense::Le, r(24)),
                (vec![(0, r(1)), (1, r(2))], Sense::Le, r(6)),
            ],
            lo: vec![Some(r(0)), Some(r(0))],
            hi: vec![None, None],
        };
        match solve_lp_exact(&p) {
            ExactOutcome::Optimal { objective, x } => {
                assert_eq!(objective, r(-21));
                assert_eq!(x[0], r(3));
                assert_eq!(x[1], BigRat::from_ratio(3, 2));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn exact_infeasible() {
        let p = ExactLp {
            obj: vec![r(0)],
            rows: vec![
                (vec![(0, r(1))], Sense::Le, r(1)),
                (vec![(0, r(1))], Sense::Ge, r(2)),
            ],
            lo: vec![Some(r(0))],
            hi: vec![None],
        };
        assert!(matches!(solve_lp_exact(&p), ExactOutcome::Infeasible));
    }

    #[test]
    fn exact_unbounded() {
        let p = ExactLp {
            obj: vec![r(-1)],
            rows: vec![],
            lo: vec![Some(r(0))],
            hi: vec![None],
        };
        assert!(matches!(solve_lp_exact(&p), ExactOutcome::Unbounded));
    }

    #[test]
    fn agrees_with_f64_path() {
        use crate::simplex::{solve_lp, LpProblem};
        let p = LpProblem {
            obj: vec![1.0, 2.0, -1.0],
            rows: vec![
                (vec![(0, 1.0), (1, 1.0), (2, 1.0)], Sense::Eq, 10.0),
                (vec![(0, 1.0), (1, -1.0)], Sense::Ge, 2.0),
                (vec![(2, 1.0)], Sense::Le, 7.0),
            ],
            lo: vec![0.0, 0.0, 0.0],
            hi: vec![f64::INFINITY, f64::INFINITY, f64::INFINITY],
        };
        let f = solve_lp(&p).optimal().expect("f64 optimal");
        let e = solve_lp_exact(&ExactLp::from_f64_problem(&p));
        match e {
            ExactOutcome::Optimal { objective, .. } => {
                assert!((objective.to_f64() - f.objective).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // min x s.t. 3x >= 1 -> x = 1/3 exactly.
        let p = ExactLp {
            obj: vec![r(1)],
            rows: vec![(vec![(0, r(3))], Sense::Ge, r(1))],
            lo: vec![Some(r(0))],
            hi: vec![None],
        };
        match solve_lp_exact(&p) {
            ExactOutcome::Optimal { x, .. } => {
                assert_eq!(x[0], BigRat::from_ratio(1, 3));
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    fn assert_same_outcome(p: &ExactLp) {
        match (solve_lp_exact(p), solve_lp_exact_dense(p)) {
            (
                ExactOutcome::Optimal { x, objective },
                ExactOutcome::Optimal {
                    x: xd,
                    objective: od,
                },
            ) => {
                assert_eq!(objective, od, "objective drifted");
                assert_eq!(x, xd, "solution drifted");
            }
            (ExactOutcome::Infeasible, ExactOutcome::Infeasible) => {}
            (ExactOutcome::Unbounded, ExactOutcome::Unbounded) => {}
            (s, d) => panic!("sparse {s:?} != dense {d:?}"),
        }
    }

    #[test]
    fn sparse_matches_dense_on_varied_forms() {
        // Exercise every transformation: free (split) columns, fixed
        // columns, finite upper bounds, negative rhs, all three senses,
        // duplicate terms on one column, and exact cancellation.
        let cases = vec![
            ExactLp {
                obj: vec![r(-5), r(-4)],
                rows: vec![
                    (vec![(0, r(6)), (1, r(4))], Sense::Le, r(24)),
                    (vec![(0, r(1)), (1, r(2))], Sense::Le, r(6)),
                ],
                lo: vec![Some(r(0)), Some(r(0))],
                hi: vec![None, None],
            },
            ExactLp {
                obj: vec![r(1), r(2), r(-1)],
                rows: vec![
                    (vec![(0, r(1)), (1, r(1)), (2, r(1))], Sense::Eq, r(10)),
                    (vec![(0, r(1)), (1, r(-1))], Sense::Ge, r(2)),
                    (vec![(2, r(1))], Sense::Le, r(7)),
                ],
                lo: vec![Some(r(0)), Some(r(0)), Some(r(0))],
                hi: vec![None, None, None],
            },
            // Free column, fixed column, finite upper bound.
            ExactLp {
                obj: vec![r(1), r(3), r(0)],
                rows: vec![
                    (vec![(0, r(1)), (1, r(1)), (2, r(2))], Sense::Ge, r(4)),
                    (vec![(0, r(1)), (1, r(-2))], Sense::Le, r(3)),
                ],
                lo: vec![None, Some(r(0)), Some(r(5))],
                hi: vec![None, Some(r(2)), Some(r(5))],
            },
            // Negative rhs flips row signs; duplicate column terms sum;
            // (0, 1) + (0, -1) cancels to a vacuous feasible row.
            ExactLp {
                obj: vec![r(2), r(1)],
                rows: vec![
                    (vec![(0, r(-1)), (1, r(-1))], Sense::Le, r(-3)),
                    (vec![(0, r(1)), (0, r(1)), (1, r(1))], Sense::Le, r(10)),
                    (vec![(0, r(1)), (0, r(-1))], Sense::Le, r(0)),
                ],
                lo: vec![Some(r(0)), Some(r(0))],
                hi: vec![None, None],
            },
            // Infeasible.
            ExactLp {
                obj: vec![r(0)],
                rows: vec![
                    (vec![(0, r(1))], Sense::Le, r(1)),
                    (vec![(0, r(1))], Sense::Ge, r(2)),
                ],
                lo: vec![Some(r(0))],
                hi: vec![None],
            },
            // Unbounded via a free column.
            ExactLp {
                obj: vec![r(1)],
                rows: vec![],
                lo: vec![None],
                hi: vec![None],
            },
        ];
        for p in &cases {
            assert_same_outcome(p);
        }
    }

    #[test]
    fn fractional_pivots_stay_in_the_small_path() {
        // 1/3-style values come out of integer pivots; the sparse path
        // must produce the identical exact optimum.
        let p = ExactLp {
            obj: vec![r(1), r(1)],
            rows: vec![
                (vec![(0, r(3)), (1, r(1))], Sense::Ge, r(1)),
                (vec![(0, r(1)), (1, r(7))], Sense::Ge, r(2)),
            ],
            lo: vec![Some(r(0)), Some(r(0))],
            hi: vec![None, None],
        };
        assert_same_outcome(&p);
    }
}
