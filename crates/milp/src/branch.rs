//! Branch-and-bound search for mixed-integer models.
//!
//! Depth-first search over LP relaxations solved by [`crate::simplex`].
//! Branching picks the most fractional integer variable; the child whose
//! branch is nearer the LP value is explored first. An LP-rounding primal
//! heuristic runs at the root and periodically thereafter, which matters
//! for the scheduling models in `swp-core`: their LP relaxations are often
//! integral or nearly so, and rounding finds a schedule without descending
//! the tree.

use crate::budget::{Budget, Exhaustion};
use crate::model::{Model, Sense, VarKind};
use crate::simplex::{
    solve_lp_warm_layout, solve_lp_with_layout, LpBasis, LpOutcome, LpProblem, PivotLayout,
    FEAS_TOL,
};
use crate::SolveError;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Integrality tolerance: an LP value within this of an integer counts
/// as integral.
pub const INT_TOL: f64 = 1e-6;

/// A domain-side node rejector consulted *before* a node's LP is
/// solved: called with the node's per-variable lower and upper bounds
/// (in variable-creation order); returning `true` discards the node
/// without an LP solve.
///
/// Soundness contract: return `true` only when **no integer-feasible
/// point exists** within the given box. The scheduling driver uses this
/// to kill partial assignments the moment the hazard automaton rejects
/// a fixed class/offset pair — a structural fact no LP relaxation can
/// see. An unsound pruner silently loses solutions; prune conservatively.
#[derive(Clone)]
pub struct NodePruner(Arc<dyn Fn(&[f64], &[f64]) -> bool + Send + Sync>);

impl NodePruner {
    /// Wraps a predicate over `(lower_bounds, upper_bounds)`.
    pub fn new(f: impl Fn(&[f64], &[f64]) -> bool + Send + Sync + 'static) -> Self {
        NodePruner(Arc::new(f))
    }

    /// Whether the node with these bounds should be discarded.
    pub fn prunes(&self, lo: &[f64], hi: &[f64]) -> bool {
        (self.0)(lo, hi)
    }
}

impl fmt::Debug for NodePruner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("NodePruner(..)")
    }
}

/// Search limits for [`Model::solve_with`].
#[derive(Debug, Clone)]
pub struct SolveLimits {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Wall-clock budget for the whole search.
    pub time_limit: Option<Duration>,
    /// Stop as soon as any integer-feasible point is found.
    ///
    /// The scheduling driver uses this: at a fixed initiation interval it
    /// only needs feasibility, not the objective optimum.
    pub stop_at_first_incumbent: bool,
    /// Prune nodes whose LP bound (in the *stated* objective direction)
    /// cannot improve on this value.
    pub objective_cutoff: Option<f64>,
    /// Shared solve budget: wall-clock deadline, deterministic tick cap,
    /// and cooperative cancellation (default: unlimited). One tick is
    /// spent per simplex pivot, so the cap bounds total work across every
    /// node LP; the cancel token stops the search within one check
    /// interval with [`SolveError::Cancelled`].
    pub budget: Budget,
    /// Optional domain-side node rejector, consulted before each node's
    /// LP solve (default: none). See [`NodePruner`] for the soundness
    /// contract.
    pub node_pruner: Option<NodePruner>,
    /// Optional basis hint for the **root** relaxation, typically
    /// exported from a closely related earlier solve (the previous
    /// period of a T-sweep, or the pre-edit instance). Crash-started
    /// with a full ratio test, so the hint can never change the verdict
    /// — only the pivot count (default: none).
    pub warm_basis: Option<LpBasis>,
    /// Inner-loop layout of every node LP's pivot elimination (default:
    /// [`PivotLayout::SparseRow`]). Layouts are decision-identical —
    /// same pivot sequences, verdicts, and tick spending — so this
    /// only trades inner-loop cost; see [`crate::simplex`]'s docs.
    pub pivot_layout: PivotLayout,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            max_nodes: 1_000_000,
            time_limit: None,
            stop_at_first_incumbent: false,
            objective_cutoff: None,
            budget: Budget::unlimited(),
            node_pruner: None,
            warm_basis: None,
            pivot_layout: PivotLayout::default(),
        }
    }
}

impl SolveLimits {
    /// Limits suitable for a feasibility probe with a wall-clock budget.
    pub fn feasibility(time_limit: Duration) -> Self {
        SolveLimits {
            time_limit: Some(time_limit),
            stop_at_first_incumbent: true,
            ..Self::default()
        }
    }
}

/// Why a branch-and-bound search stopped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StopReason {
    /// The tree was exhausted: the answer is exact.
    #[default]
    Exhausted,
    /// `stop_at_first_incumbent` fired.
    FirstIncumbent,
    /// The node limit was reached.
    NodeLimit,
    /// The [`SolveLimits::time_limit`] wall clock ran out.
    TimeLimit,
    /// The shared [`Budget`] tripped (deadline, tick cap, or cancel).
    Budget(Exhaustion),
}

/// Counters describing a finished (or truncated) search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Nodes explored (LPs solved, excluding heuristic probes).
    pub nodes: u64,
    /// Nodes discarded by the [`SolveLimits::node_pruner`] before their
    /// LP was solved.
    pub pruned_nodes: u64,
    /// Total simplex iterations across all node LPs.
    pub lp_iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Whether optimality was proven (search exhausted, not truncated).
    pub proven_optimal: bool,
    /// What ended the search.
    pub stop_reason: StopReason,
}

/// An integer-feasible solution of a [`Model`].
#[derive(Debug, Clone)]
pub struct MipSolution {
    values: Vec<f64>,
    objective: f64,
    stats: SearchStats,
}

impl MipSolution {
    /// Value of `var` in the solution.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of `var` rounded to the nearest integer.
    pub fn value_int(&self, var: crate::VarId) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// All variable values in creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Objective value in the model's stated direction.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Search counters.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Whether the search proved this solution optimal.
    pub fn is_proven_optimal(&self) -> bool {
        self.stats.proven_optimal
    }
}

struct Node {
    lo: Vec<f64>,
    hi: Vec<f64>,
    depth: usize,
}

/// The branch-and-bound engine. Most callers use [`Model::solve`] /
/// [`Model::solve_with`] instead of driving this directly.
pub struct BranchBound<'a> {
    model: &'a Model,
    limits: SolveLimits,
    /// Indices of integer/binary variables.
    int_vars: Vec<usize>,
    /// Rows shared by every node LP.
    rows: Vec<(Vec<(usize, f64)>, Sense, f64)>,
    /// Minimization objective (negated if the model maximizes).
    obj_min: Vec<f64>,
}

impl<'a> BranchBound<'a> {
    /// Prepares a search over `model` with the given `limits`.
    pub fn new(model: &'a Model, limits: SolveLimits) -> Self {
        let int_vars: Vec<usize> = model
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind != VarKind::Continuous)
            .map(|(i, _)| i)
            .collect();
        let rows = model
            .constrs
            .iter()
            .map(|c| {
                (
                    c.terms.iter().map(|&(v, co)| (v.index(), co)).collect(),
                    c.sense,
                    c.rhs,
                )
            })
            .collect();
        let sign = if model.maximize { -1.0 } else { 1.0 };
        let obj_min = model.obj.iter().map(|&c| sign * c).collect();
        BranchBound {
            model,
            limits,
            int_vars,
            rows,
            obj_min,
        }
    }

    fn root_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let mut lo: Vec<f64> = self.model.vars.iter().map(|v| v.lo).collect();
        let mut hi: Vec<f64> = self.model.vars.iter().map(|v| v.hi).collect();
        for &j in &self.int_vars {
            if lo[j].is_finite() {
                lo[j] = (lo[j] - INT_TOL).ceil();
            }
            if hi[j].is_finite() {
                hi[j] = (hi[j] + INT_TOL).floor();
            }
        }
        (lo, hi)
    }

    /// Stated-direction objective from a minimization objective value.
    fn stated(&self, min_obj: f64) -> f64 {
        let v = if self.model.maximize {
            -min_obj
        } else {
            min_obj
        };
        v + self.model.obj_constant
    }

    /// Runs the search.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no integer point exists,
    /// [`SolveError::Unbounded`] if the root relaxation is unbounded,
    /// [`SolveError::LimitReached`] if limits (node, time, or budget)
    /// were hit before any integer-feasible point was found,
    /// [`SolveError::Cancelled`] if the budget's cancel token fired, and
    /// [`SolveError::Numerical`] if a node LP stalled. If node/time/
    /// budget limits are hit *after* an incumbent was found, that
    /// incumbent is returned with `proven_optimal == false` and the
    /// tripping limit in [`SearchStats::stop_reason`].
    pub fn run(self) -> Result<MipSolution, SolveError> {
        self.run_with_basis().0
    }

    /// Runs the search and additionally exports the **root** relaxation's
    /// terminal simplex basis, which is the natural warm-start hint for
    /// the next closely-related model (T+1 of a sweep, or a re-solve
    /// after a DDG edit). The basis is exported on the infeasible path
    /// too — refuted periods are exactly where the next period's warm
    /// start pays.
    ///
    /// # Errors
    ///
    /// As [`BranchBound::run`]; the error sits in the first tuple slot.
    pub fn run_with_basis(self) -> (Result<MipSolution, SolveError>, Option<LpBasis>) {
        let mut root_basis: Option<LpBasis> = None;
        let start = Instant::now();
        let (lo, hi) = self.root_bounds();
        let mut stack = vec![Node { lo, hi, depth: 0 }];
        let mut incumbent: Option<(Vec<f64>, f64)> = None; // (x, min-objective)
        let mut stats = SearchStats::default();
        let cutoff_min = self.limits.objective_cutoff.map(|c| {
            if self.model.maximize {
                -(c - self.model.obj_constant)
            } else {
                c - self.model.obj_constant
            }
        });
        let mut truncated = false;

        'search: while let Some(node) = stack.pop() {
            if stats.nodes >= self.limits.max_nodes {
                truncated = true;
                stats.stop_reason = StopReason::NodeLimit;
                break;
            }
            if let Some(tl) = self.limits.time_limit {
                if start.elapsed() >= tl {
                    truncated = true;
                    stats.stop_reason = StopReason::TimeLimit;
                    break;
                }
            }
            // Full budget check at every node boundary so cancellation is
            // honoured promptly even when node LPs are tiny.
            match self.limits.budget.check() {
                Ok(()) => {}
                Err(Exhaustion::Cancelled) => return (Err(SolveError::Cancelled), root_basis),
                Err(e) => {
                    truncated = true;
                    stats.stop_reason = StopReason::Budget(e);
                    break;
                }
            }
            // Domain-side pruning: reject the node before paying for its
            // LP when the caller's oracle proves the box empty.
            if let Some(pruner) = &self.limits.node_pruner {
                if pruner.prunes(&node.lo, &node.hi) {
                    stats.pruned_nodes += 1;
                    continue;
                }
            }
            stats.nodes += 1;

            let lp = LpProblem {
                obj: self.obj_min.clone(),
                rows: self.rows.clone(),
                lo: node.lo.clone(),
                hi: node.hi.clone(),
            };
            // The root relaxation is warm-started from the caller's hint
            // (if any) and its terminal basis exported for the caller's
            // next solve; deeper nodes stay on the cold path, whose pivot
            // sequence is untouched.
            let lp_result = if node.depth == 0 {
                solve_lp_warm_layout(
                    &lp,
                    &self.limits.budget,
                    self.limits.warm_basis.as_ref(),
                    self.limits.pivot_layout,
                )
                .map(|r| {
                    root_basis = Some(r.basis);
                    r.outcome
                })
            } else {
                solve_lp_with_layout(&lp, &self.limits.budget, self.limits.pivot_layout)
            };
            let sol = match lp_result {
                Ok(LpOutcome::Optimal(s)) => s,
                Ok(LpOutcome::Infeasible) => continue,
                Ok(LpOutcome::Unbounded) => {
                    // An unbounded relaxation (with or without integer
                    // variables) means the MIP is unbounded or needs a
                    // bound; report it.
                    return (Err(SolveError::Unbounded), root_basis);
                }
                Err(SolveError::Cancelled) => return (Err(SolveError::Cancelled), root_basis),
                Err(SolveError::LimitReached(_)) => {
                    // Budget tripped mid-LP: keep whatever incumbent we have.
                    truncated = true;
                    stats.stop_reason = StopReason::Budget(
                        // Distinguish deadline from ticks for the log; a
                        // second check cannot un-trip.
                        self.limits
                            .budget
                            .check()
                            .err()
                            .unwrap_or(Exhaustion::Deadline),
                    );
                    break;
                }
                Err(e) => return (Err(e), root_basis),
            };
            stats.lp_iterations += sol.iterations as u64;

            // Bound pruning.
            if let Some((_, inc)) = &incumbent {
                if sol.objective >= *inc - 1e-9 {
                    continue;
                }
            }
            if let Some(cut) = cutoff_min {
                if sol.objective >= cut - 1e-9 {
                    continue;
                }
            }

            // Most fractional integer variable.
            let mut branch_var = None;
            let mut best_frac = INT_TOL;
            for &j in &self.int_vars {
                let x = sol.x[j];
                let frac = (x - x.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some(j);
                }
            }

            match branch_var {
                None => {
                    // Integer feasible: snap and accept.
                    let mut x = sol.x.clone();
                    for &j in &self.int_vars {
                        x[j] = x[j].round();
                    }
                    let obj: f64 = self.obj_min.iter().zip(&x).map(|(&c, &v)| c * v).sum();
                    let better = incumbent
                        .as_ref()
                        .map(|(_, inc)| obj < *inc - 1e-9)
                        .unwrap_or(true);
                    if better && self.model.is_feasible_point(&x, 1e-5) {
                        incumbent = Some((x, obj));
                        if self.limits.stop_at_first_incumbent {
                            truncated = true;
                            stats.stop_reason = StopReason::FirstIncumbent;
                            break 'search;
                        }
                    }
                }
                Some(j) => {
                    // Rounding heuristic: occasionally try snapping the whole
                    // LP point.
                    if stats.nodes == 1 || stats.nodes % 64 == 0 {
                        if let Some((x, obj)) = self.try_round(&sol.x, &node) {
                            let better = incumbent
                                .as_ref()
                                .map(|(_, inc)| obj < *inc - 1e-9)
                                .unwrap_or(true);
                            if better {
                                incumbent = Some((x, obj));
                                if self.limits.stop_at_first_incumbent {
                                    truncated = true;
                                    stats.stop_reason = StopReason::FirstIncumbent;
                                    break 'search;
                                }
                            }
                        }
                    }
                    let x = sol.x[j];
                    let down = x.floor();
                    let up = x.ceil();
                    let mut child_down = Node {
                        lo: node.lo.clone(),
                        hi: node.hi.clone(),
                        depth: node.depth + 1,
                    };
                    child_down.hi[j] = child_down.hi[j].min(down);
                    let mut child_up = Node {
                        lo: node.lo,
                        hi: node.hi,
                        depth: node.depth + 1,
                    };
                    child_up.lo[j] = child_up.lo[j].max(up);
                    // Explore the branch nearer the LP value first (LIFO).
                    if x - down <= up - x {
                        stack.push(child_up);
                        stack.push(child_down);
                    } else {
                        stack.push(child_down);
                        stack.push(child_up);
                    }
                }
            }
        }

        stats.elapsed = start.elapsed();
        stats.proven_optimal = !truncated;
        let result = match incumbent {
            Some((x, obj)) => Ok(MipSolution {
                objective: self.stated(obj),
                values: x,
                stats,
            }),
            None if truncated => Err(SolveError::LimitReached(None)),
            None => Err(SolveError::Infeasible),
        };
        (result, root_basis)
    }

    /// Rounds the LP point to integers (within node bounds) and accepts it
    /// if it satisfies every constraint.
    fn try_round(&self, x: &[f64], node: &Node) -> Option<(Vec<f64>, f64)> {
        let mut y = x.to_vec();
        for &j in &self.int_vars {
            y[j] = y[j].round().clamp(node.lo[j], node.hi[j]);
        }
        if self.model.is_feasible_point(&y, FEAS_TOL * 10.0) {
            let obj: f64 = self.obj_min.iter().zip(&y).map(|(&c, &v)| c * v).sum();
            Some((y, obj))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense, VarKind};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a=0? enumerate:
        // best is a+c? 3+2=5 -> 17; b+c = 6 -> 20. optimum 20.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.maximize([(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_constr([(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let sol = m.solve().expect("solved");
        assert_eq!(sol.objective().round() as i64, 20);
        assert_eq!(sol.value_int(b), 1);
        assert_eq!(sol.value_int(c), 1);
        assert!(sol.is_proven_optimal());
    }

    #[test]
    fn node_pruner_counts_and_never_firing_pruner_is_inert() {
        let build = || {
            let mut m = Model::new();
            let a = m.add_binary("a");
            let b = m.add_binary("b");
            let c = m.add_binary("c");
            m.maximize([(a, 10.0), (b, 13.0), (c, 7.0)]);
            m.add_constr([(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
            m
        };
        // A pruner that never fires changes nothing.
        let inert = SolveLimits {
            node_pruner: Some(NodePruner::new(|_, _| false)),
            ..SolveLimits::default()
        };
        let sol = build().solve_with(&inert).expect("solved");
        assert_eq!(sol.objective().round() as i64, 20);
        assert_eq!(sol.stats().pruned_nodes, 0);
        assert!(sol.is_proven_optimal());
        // A pruner that rejects everything kills the root before any LP
        // is solved: no incumbent can exist.
        let total = SolveLimits {
            node_pruner: Some(NodePruner::new(|_, _| true)),
            ..SolveLimits::default()
        };
        assert!(matches!(
            build().solve_with(&total),
            Err(SolveError::Infeasible)
        ));
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5)
        let mut m = Model::new();
        let x = m.add_integer(100.0, "x");
        m.maximize([(x, 1.0)]);
        m.add_constr([(x, 2.0)], Sense::Le, 7.0);
        let sol = m.solve().expect("solved");
        assert_eq!(sol.value_int(x), 3);
    }

    #[test]
    fn infeasible_integer_model() {
        // 0.4 <= x <= 0.6, x integer
        let mut m = Model::new();
        m.add_var(VarKind::Integer, 0.4, 0.6, "x");
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Choose exactly one of three slots; minimize cost 5, 3, 9.
        let mut m = Model::new();
        let xs: Vec<_> = (0..3).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.minimize([(xs[0], 5.0), (xs[1], 3.0), (xs[2], 9.0)]);
        m.add_constr(
            xs.iter().map(|&x| (x, 1.0)).collect::<Vec<_>>(),
            Sense::Eq,
            1.0,
        );
        let sol = m.solve().expect("solved");
        assert_eq!(sol.value_int(xs[1]), 1);
        assert!((sol.objective() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn maximization_objective_sign() {
        let mut m = Model::new();
        let x = m.add_integer(10.0, "x");
        m.maximize([(x, 2.0)]);
        m.add_constr([(x, 1.0)], Sense::Le, 4.0);
        let sol = m.solve().expect("solved");
        assert!((sol.objective() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn stop_at_first_incumbent_is_feasible() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constr(
            xs.iter().map(|&x| (x, 1.0)).collect::<Vec<_>>(),
            Sense::Eq,
            3.0,
        );
        let limits = SolveLimits {
            stop_at_first_incumbent: true,
            ..Default::default()
        };
        let sol = m.solve_with(&limits).expect("feasible");
        let count: i64 = xs.iter().map(|&x| sol.value_int(x)).sum();
        assert_eq!(count, 3);
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut m = Model::new();
        // Infeasible parity-style system that needs branching to refute.
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.add_constr(
            xs.iter().map(|&x| (x, 1.0)).collect::<Vec<_>>(),
            Sense::Eq,
            1.5,
        );
        let limits = SolveLimits {
            max_nodes: 0,
            ..Default::default()
        };
        assert_eq!(
            m.solve_with(&limits).unwrap_err(),
            SolveError::LimitReached(None)
        );
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, "x");
        let y = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, "y");
        m.maximize([(x, 5.0), (y, 4.0)]);
        m.add_constr([(x, 6.0), (y, 4.0)], Sense::Le, 24.0);
        m.add_constr([(x, 1.0), (y, 2.0)], Sense::Le, 6.0);
        let sol = m.solve().expect("solved");
        assert!((sol.objective() - 21.0).abs() < 1e-6);
    }

    #[test]
    fn unbounded_is_reported() {
        let mut m = Model::new();
        let x = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, "x");
        m.maximize([(x, 1.0)]);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn objective_cutoff_prunes() {
        let mut m = Model::new();
        let x = m.add_integer(10.0, "x");
        m.minimize([(x, 1.0)]);
        m.add_constr([(x, 1.0)], Sense::Ge, 4.0);
        // Cutoff below the true optimum of 4: nothing qualifies.
        let limits = SolveLimits {
            objective_cutoff: Some(3.0),
            ..Default::default()
        };
        assert_eq!(m.solve_with(&limits).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn gomory_free_correctness_vs_enumeration() {
        // Random-ish 0-1 problem checked against brute force.
        let weights = [4.0, 7.0, 5.0, 2.0, 6.0];
        let values = [9.0, 12.0, 8.0, 3.0, 10.0];
        let cap = 13.0;
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.maximize(
            xs.iter()
                .zip(values)
                .map(|(&x, v)| (x, v))
                .collect::<Vec<_>>(),
        );
        m.add_constr(
            xs.iter()
                .zip(weights)
                .map(|(&x, w)| (x, w))
                .collect::<Vec<_>>(),
            Sense::Le,
            cap,
        );
        let sol = m.solve().expect("solved");
        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..32 {
            let w: f64 = (0..5)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            if w <= cap {
                let v: f64 = (0..5)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| values[i])
                    .sum();
                best = best.max(v);
            }
        }
        assert!((sol.objective() - best).abs() < 1e-6);
    }
}
