//! Exact and floating-point mixed-integer linear programming.
//!
//! This crate is the solver substrate for the software-pipelining ILP
//! formulations of Altman, Govindarajan & Gao (PLDI 1995). It is written
//! from scratch and has no external dependencies:
//!
//! * [`Model`] — a small modeling layer: variables (continuous, integer,
//!   binary) with bounds, linear constraints, and a linear objective.
//! * [`simplex`] — a dense two-phase primal simplex over `f64` with
//!   Dantzig pricing and a Bland anti-cycling fallback.
//! * [`branch`] — branch-and-bound for mixed-integer models with
//!   most-fractional branching, depth-first search with best-bound
//!   tie-breaking, an LP-rounding primal heuristic, and node/time limits.
//! * [`exact`] — arbitrary-precision integers and rationals plus an exact
//!   rational simplex, used in tests and audits to cross-check the `f64`
//!   path on small instances.
//!
//! # Example
//!
//! Maximize `5x + 4y` subject to `6x + 4y <= 24`, `x + 2y <= 6`:
//!
//! ```
//! use swp_milp::{Model, Sense, VarKind};
//!
//! # fn main() -> Result<(), swp_milp::SolveError> {
//! let mut m = Model::new();
//! let x = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, "x");
//! let y = m.add_var(VarKind::Continuous, 0.0, f64::INFINITY, "y");
//! m.maximize([(x, 5.0), (y, 4.0)]);
//! m.add_constr([(x, 6.0), (y, 4.0)], Sense::Le, 24.0);
//! m.add_constr([(x, 1.0), (y, 2.0)], Sense::Le, 6.0);
//! let sol = m.solve()?;
//! assert!((sol.objective() - 21.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod budget;
pub mod exact;
mod lpwrite;
pub mod model;
pub mod simplex;

pub use branch::{BranchBound, MipSolution, NodePruner, SearchStats, SolveLimits, StopReason};
pub use budget::{Budget, CancelToken, Exhaustion};
pub use model::{ConstrId, LinExpr, Model, Sense, VarId, VarKind};
pub use simplex::{LpBasis, LpOutcome, LpSolution, PivotLayout, WarmLpResult};

use std::error::Error;
use std::fmt;

/// Reason a solve did not produce an optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The node, time, or tick limit was reached before optimality was
    /// proven.
    ///
    /// Carries the best incumbent objective found, if any.
    LimitReached(Option<f64>),
    /// The model is malformed (e.g. a variable bound with `lo > hi`).
    BadModel(String),
    /// The `f64` pipeline lost numerical traction (a simplex stall or
    /// cycling that even the Bland fallback could not resolve). The model
    /// itself may be fine; callers should fall back to another engine.
    Numerical(String),
    /// A [`CancelToken`] fired mid-solve; the search stopped
    /// cooperatively without a usable answer.
    Cancelled,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::LimitReached(Some(_)) => {
                write!(f, "search limit reached with an unproven incumbent")
            }
            SolveError::LimitReached(None) => {
                write!(
                    f,
                    "search limit reached before any feasible point was found"
                )
            }
            SolveError::BadModel(msg) => write!(f, "malformed model: {msg}"),
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            SolveError::Cancelled => write!(f, "solve cancelled"),
        }
    }
}

impl Error for SolveError {}

impl From<Exhaustion> for SolveError {
    fn from(e: Exhaustion) -> Self {
        match e {
            Exhaustion::Cancelled => SolveError::Cancelled,
            Exhaustion::Deadline | Exhaustion::Ticks => SolveError::LimitReached(None),
        }
    }
}
