//! Concurrent budget-tree semantics under real threads.
//!
//! The scheduling daemon (`swpd`) hands every in-flight request an
//! isolated child budget (`fork_isolated`) rebound to a per-request
//! cancel token (`cancelled_by`), all derived from one admission pool.
//! Two properties make that safe:
//!
//! * **isolation** — cancelling one request's token never stops a
//!   sibling request or the pool itself, and an isolated child's ticks
//!   never drain the pool;
//! * **propagation** — exhaustion of the *parent* (its deadline, or its
//!   cancel token for children that still share it) always reaches
//!   every child.
//!
//! These run 8 OS threads per case so the atomics are exercised under
//! genuine contention, not just sequential interleavings.

use proptest::prelude::*;
use std::sync::Barrier;
use std::time::Duration;
use swp_milp::{Budget, CancelToken, Exhaustion};

const THREADS: usize = 8;
/// Upper bound on ticks a child spins waiting for cancellation; far
/// above anything a working implementation needs (cancellation lands
/// within one 64-tick check interval), far below anything slow.
const SPIN_CAP: u64 = 5_000_000;

/// Ticks `b` until it trips, returning the exhaustion and how many
/// ticks were spent. Panics if the budget never trips within the cap.
fn tick_until_trip(b: &Budget) -> (Exhaustion, u64) {
    let mut spent = 0u64;
    loop {
        match b.tick() {
            Ok(()) => {
                spent += 1;
                assert!(spent <= SPIN_CAP, "budget never tripped under contention");
            }
            Err(e) => return (e, spent),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cancelling any subset of per-request tokens stops exactly those
    /// children: siblings run their full workload untouched and the
    /// parent pool stays healthy.
    #[test]
    fn child_cancellation_never_leaks_into_siblings(cancel_mask in 1u8..=254) {
        let parent = Budget::unlimited();
        let tokens: Vec<CancelToken> = (0..THREADS).map(|_| CancelToken::new()).collect();
        let children: Vec<Budget> = tokens
            .iter()
            .map(|t| parent.fork_isolated().cancelled_by(t))
            .collect();

        let barrier = Barrier::new(THREADS + 1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (k, child) in children.iter().enumerate() {
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    if cancel_mask & (1 << k) != 0 {
                        // Doomed child: spin until the token lands.
                        let (why, _) = tick_until_trip(child);
                        why == Exhaustion::Cancelled
                    } else {
                        // Survivor: a fixed workload must complete clean.
                        (0..10_000).all(|_| child.tick().is_ok()) && child.check().is_ok()
                    }
                }));
            }
            barrier.wait();
            // Fire the masked tokens while all 8 children are ticking.
            for (k, t) in tokens.iter().enumerate() {
                if cancel_mask & (1 << k) != 0 {
                    t.cancel();
                }
            }
            for h in handles {
                prop_assert!(h.join().expect("child thread panicked"));
            }
        });

        // The parent pool heard nothing and spent nothing.
        prop_assert_eq!(parent.check(), Ok(()));
        prop_assert_eq!(parent.ticks_used(), 0);
        // Sticky and exact: a token is fired iff it was masked.
        for (k, t) in tokens.iter().enumerate() {
            prop_assert_eq!(t.is_cancelled(), cancel_mask & (1 << k) != 0);
        }
    }

    /// Firing the parent's token stops every isolated child that still
    /// shares it, no matter when each child started working.
    #[test]
    fn parent_cancellation_reaches_all_isolated_children(head_start in 0u64..2_000) {
        let parent = Budget::unlimited();
        let children: Vec<Budget> = (0..THREADS).map(|_| parent.fork_isolated()).collect();

        let barrier = Barrier::new(THREADS + 1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for child in &children {
                let barrier = &barrier;
                handles.push(scope.spawn(move || {
                    barrier.wait();
                    tick_until_trip(child)
                }));
            }
            barrier.wait();
            // Let the children race ahead a varying amount, then pull
            // the plug on the whole tree.
            for _ in 0..head_start {
                std::hint::spin_loop();
            }
            parent.cancel_token().cancel();
            for h in handles {
                let (why, _) = h.join().expect("child thread panicked");
                prop_assert_eq!(why, Exhaustion::Cancelled);
            }
        });
    }
}

/// The parent's deadline is copied into isolated children even after a
/// `cancelled_by` rebind, so deadline exhaustion propagates to every
/// child — including ones that no longer share the parent's token.
#[test]
fn parent_deadline_propagates_to_rebound_children() {
    let parent = Budget::with_deadline(Duration::ZERO);
    let tokens: Vec<CancelToken> = (0..THREADS).map(|_| CancelToken::new()).collect();
    std::thread::scope(|scope| {
        for t in &tokens {
            let child = parent.fork_isolated().cancelled_by(t);
            scope.spawn(move || {
                assert_eq!(child.check(), Err(Exhaustion::Deadline));
                // The rebind cut the cancel link, not the deadline link.
                let (why, _) = tick_until_trip(&child);
                assert_eq!(why, Exhaustion::Deadline);
            });
        }
    });
    // No child token fired; the trip came from the deadline alone.
    assert!(tokens.iter().all(|t| !t.is_cancelled()));
}

/// Isolated children ticking concurrently never drain the parent pool:
/// its cap stays fully available for admission decisions.
#[test]
fn isolated_children_never_drain_the_admission_pool() {
    let pool = Budget::with_tick_limit(8);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let child = pool.fork_isolated();
            scope.spawn(move || {
                for _ in 0..50_000 {
                    child.tick().expect("isolated child is uncapped");
                }
            });
        }
    });
    assert_eq!(pool.remaining_ticks(), Some(8));
    assert!(pool.try_slice(8).is_ok());
}
