//! Property tests for warm-started simplex: a basis hint — exact, stale,
//! or garbage — never changes the verdict or the optimal objective, and
//! the warm branch-and-bound root reaches the same MIP answer as cold.

use proptest::prelude::*;
use swp_milp::simplex::{solve_lp_warm, solve_lp_with, LpBasis, LpOutcome, LpProblem};
use swp_milp::{Budget, Model, Sense, SolveError, SolveLimits, VarKind};

fn coeff() -> impl Strategy<Value = i64> {
    -5i64..=5
}

/// A random bounded LP: every variable in [0, ub] so it is never
/// unbounded, with a handful of random rows.
fn random_lp() -> impl Strategy<Value = LpProblem> {
    (2usize..=6, 1usize..=6).prop_flat_map(|(ncols, nrows)| {
        (
            proptest::collection::vec(coeff(), ncols),
            proptest::collection::vec(
                (
                    proptest::collection::vec(coeff(), ncols),
                    0usize..3,
                    -10i64..=20,
                ),
                nrows,
            ),
            proptest::collection::vec(1i64..=9, ncols),
        )
            .prop_map(|(obj, rows, ubs)| LpProblem {
                obj: obj.iter().map(|&c| c as f64).collect(),
                rows: rows
                    .into_iter()
                    .map(|(terms, sense, rhs)| {
                        (
                            terms
                                .into_iter()
                                .enumerate()
                                .map(|(j, c)| (j, c as f64))
                                .collect(),
                            match sense {
                                0 => Sense::Le,
                                1 => Sense::Ge,
                                _ => Sense::Eq,
                            },
                            rhs as f64,
                        )
                    })
                    .collect(),
                lo: vec![0.0; obj.len()],
                hi: ubs.iter().map(|&u| u as f64).collect(),
            })
    })
}

fn outcomes_agree(cold: &LpOutcome, warm: &LpOutcome) -> Result<(), String> {
    match (cold, warm) {
        (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) => {
            if (a.objective - b.objective).abs() > 1e-6 * (1.0 + a.objective.abs()) {
                return Err(format!(
                    "objectives differ: cold {} vs warm {}",
                    a.objective, b.objective
                ));
            }
            Ok(())
        }
        (LpOutcome::Infeasible, LpOutcome::Infeasible) => Ok(()),
        (LpOutcome::Unbounded, LpOutcome::Unbounded) => Ok(()),
        (c, w) => Err(format!("verdicts differ: cold {c:?} vs warm {w:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Warm-starting from the cold solve's own exported basis — the
    /// "T-sweep replays its predecessor" shape — reproduces the verdict
    /// and objective exactly.
    #[test]
    fn warm_from_own_basis_matches_cold(p in random_lp()) {
        let budget = Budget::unlimited();
        let cold = solve_lp_with(&p, &budget).expect("cold solve");
        let warm = solve_lp_warm(&p, &budget, None).expect("warm no-hint");
        let r = outcomes_agree(&cold, &warm.outcome);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
        let again = solve_lp_warm(&p, &budget, Some(&warm.basis)).expect("warm hinted");
        let r = outcomes_agree(&cold, &again.outcome);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// A garbage hint (arbitrary column subset, possibly out of range)
    /// never changes the verdict — the crash ratio test keeps the start
    /// primal-feasible regardless.
    #[test]
    fn warm_from_garbage_basis_matches_cold(
        p in random_lp(),
        junk in proptest::collection::vec(0usize..12, 0..8),
    ) {
        let budget = Budget::unlimited();
        let cold = solve_lp_with(&p, &budget).expect("cold solve");
        let hint = LpBasis { cols: junk };
        let warm = solve_lp_warm(&p, &budget, Some(&hint)).expect("warm junk");
        let r = outcomes_agree(&cold, &warm.outcome);
        prop_assert!(r.is_ok(), "{}", r.unwrap_err());
    }

    /// Warm-started branch-and-bound (basis threaded through the root
    /// relaxation) reaches the same MIP objective and proof status as a
    /// cold solve, across random integer models — the `Optimality`
    /// agreement the sweep relies on.
    #[test]
    fn warm_bb_root_matches_cold(p in random_lp(), flip in any::<u64>()) {
        let mut m = Model::new();
        let n = p.obj.len();
        let vars: Vec<_> = (0..n)
            .map(|j| {
                let kind = if flip & (1 << j) != 0 { VarKind::Integer } else { VarKind::Continuous };
                m.add_var(kind, p.lo[j], p.hi[j], format!("x{j}"))
            })
            .collect();
        m.minimize(vars.iter().enumerate().map(|(j, &v)| (v, p.obj[j])).collect::<Vec<_>>());
        for (terms, sense, rhs) in &p.rows {
            m.add_constr(
                terms.iter().map(|&(j, c)| (vars[j], c)).collect::<Vec<_>>(),
                *sense,
                *rhs,
            );
        }
        let (cold, basis) = m.solve_with_basis(&SolveLimits::default());
        let warm_limits = SolveLimits { warm_basis: basis, ..SolveLimits::default() };
        let (warm, _) = m.solve_with_basis(&warm_limits);
        match (&cold, &warm) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective() - b.objective()).abs() <= 1e-6 * (1.0 + a.objective().abs()),
                    "objectives differ: cold {} warm {}", a.objective(), b.objective());
                prop_assert_eq!(a.is_proven_optimal(), b.is_proven_optimal());
            }
            (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
            (c, w) => prop_assert!(false, "verdicts differ: cold {c:?} warm {w:?}"),
        }
    }
}
