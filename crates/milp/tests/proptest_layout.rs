//! Layout-equivalence property tests for the `f64` simplex pivot: the
//! sparse-row elimination must be decision-identical to the dense sweep
//! — same verdicts, same pivot sequences (iteration counts), same
//! solutions under `==` (which treats `-0.0` and `0.0` alike, the only
//! value difference the skipped `x -= f * 0.0` updates can introduce) —
//! on random LPs, and branch-and-bound must inherit that identity node
//! for node.
//!
//! Replay a failing stream with `SWP_PROPTEST_SEED=<seed>`.

use proptest::prelude::*;
use swp_milp::simplex::{solve_lp_with_layout, LpProblem};
use swp_milp::{Budget, Model, PivotLayout, Sense, SolveLimits};

fn small_int() -> impl Strategy<Value = i64> {
    -9i64..=9
}

/// Outcome equality under `==` on every f64 (so `-0.0 == 0.0`, the one
/// representational slack the sparse pivot is allowed).
fn outcomes_eq(
    a: &Result<swp_milp::LpOutcome, swp_milp::SolveError>,
    b: &Result<swp_milp::LpOutcome, swp_milp::SolveError>,
) -> Result<(), String> {
    use swp_milp::LpOutcome::*;
    match (a, b) {
        (Ok(Optimal(s)), Ok(Optimal(t))) => {
            if s.iterations != t.iterations {
                return Err(format!(
                    "pivot sequences diverged: {} vs {} iterations",
                    s.iterations, t.iterations
                ));
            }
            if s.objective != t.objective {
                return Err(format!("objective {} vs {}", s.objective, t.objective));
            }
            if s.x.len() != t.x.len() {
                return Err(format!("dim {} vs {}", s.x.len(), t.x.len()));
            }
            for (i, (&u, &v)) in s.x.iter().zip(&t.x).enumerate() {
                if u != v {
                    return Err(format!("x[{i}]: {u} vs {v}"));
                }
            }
            Ok(())
        }
        (Ok(Infeasible), Ok(Infeasible)) | (Ok(Unbounded), Ok(Unbounded)) => Ok(()),
        (Err(a), Err(b)) if a == b => Ok(()),
        (a, b) => Err(format!("results diverge: {a:?} vs {b:?}")),
    }
}

fn arb_lp() -> impl Strategy<Value = LpProblem> {
    (
        prop::collection::vec(small_int(), 3..=5),
        prop::collection::vec(
            (prop::collection::vec(small_int(), 5), 0usize..3, -9i64..=9),
            1..6,
        ),
    )
        .prop_map(|(obj, rows)| {
            let n = obj.len();
            LpProblem {
                obj: obj.iter().map(|&c| c as f64).collect(),
                rows: rows
                    .iter()
                    .map(|(coeffs, s, b)| {
                        let terms: Vec<(usize, f64)> = coeffs
                            .iter()
                            .take(n)
                            .enumerate()
                            .filter(|(_, &c)| c != 0)
                            .map(|(j, &c)| (j, c as f64))
                            .collect();
                        (terms, [Sense::Le, Sense::Ge, Sense::Eq][*s], *b as f64)
                    })
                    .collect(),
                lo: vec![0.0; n],
                hi: vec![10.0; n], // bounded -> never unbounded
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dense and sparse-row pivoting return the same outcome: identical
    /// verdict, iteration count, objective, and point (elementwise `==`).
    #[test]
    fn lp_pivot_layouts_agree(p in arb_lp()) {
        let dense = solve_lp_with_layout(&p, &Budget::unlimited(), PivotLayout::Dense);
        let sparse = solve_lp_with_layout(&p, &Budget::unlimited(), PivotLayout::SparseRow);
        if let Err(msg) = outcomes_eq(&dense, &sparse) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Tick spending is layout-independent: under any tick cap, both
    /// layouts run out (or don't) at exactly the same point.
    #[test]
    fn lp_tick_spending_is_layout_invariant(p in arb_lp(), ticks in 0u64..12) {
        let dense = solve_lp_with_layout(
            &p, &Budget::with_tick_limit(ticks), PivotLayout::Dense);
        let sparse = solve_lp_with_layout(
            &p, &Budget::with_tick_limit(ticks), PivotLayout::SparseRow);
        if let Err(msg) = outcomes_eq(&dense, &sparse) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Branch-and-bound inherits the identity: same incumbent, same node
    /// and pruning counts, same total simplex iterations, same proof.
    #[test]
    fn bnb_pivot_layouts_agree(
        obj in prop::collection::vec(small_int(), 4),
        rows in prop::collection::vec(
            (prop::collection::vec(small_int(), 4), 0usize..2, -6i64..=12),
            1..4,
        ),
    ) {
        let mut m = Model::new();
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.minimize(
            xs.iter()
                .zip(&obj)
                .map(|(&x, &c)| (x, c as f64))
                .collect::<Vec<_>>(),
        );
        for (coeffs, s, b) in &rows {
            m.add_constr(
                xs.iter()
                    .zip(coeffs)
                    .map(|(&x, &c)| (x, c as f64))
                    .collect::<Vec<_>>(),
                [Sense::Le, Sense::Ge][*s],
                *b as f64,
            );
        }
        let solve = |layout: PivotLayout| {
            m.solve_with(&SolveLimits {
                pivot_layout: layout,
                ..SolveLimits::default()
            })
        };
        match (solve(PivotLayout::Dense), solve(PivotLayout::SparseRow)) {
            (Ok(a), Ok(b)) => {
                prop_assert!(
                    a.objective() == b.objective(),
                    "objective {} vs {}", a.objective(), b.objective()
                );
                for (i, (&u, &v)) in a.values().iter().zip(b.values()).enumerate() {
                    prop_assert!(u == v, "x[{}]: {} vs {}", i, u, v);
                }
                let (sa, sb) = (a.stats(), b.stats());
                prop_assert_eq!(sa.nodes, sb.nodes);
                prop_assert_eq!(sa.pruned_nodes, sb.pruned_nodes);
                prop_assert_eq!(sa.lp_iterations, sb.lp_iterations);
                prop_assert_eq!(sa.proven_optimal, sb.proven_optimal);
                prop_assert_eq!(sa.stop_reason, sb.stop_reason);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: {a:?} vs {b:?}"),
        }
    }
}
