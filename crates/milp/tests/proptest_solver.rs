//! Property tests: the `f64` solver stack against exhaustive enumeration
//! and the exact rational path, plus algebraic laws of the arbitrary-
//! precision types.

use proptest::prelude::*;
use swp_milp::exact::{solve_lp_exact, BigInt, BigRat, ExactLp, ExactOutcome};
use swp_milp::simplex::{solve_lp, LpProblem};
use swp_milp::{Model, Sense, SolveError};

fn small_int() -> impl Strategy<Value = i64> {
    -9i64..=9
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BigInt +, -, * agree with i128 on 64-bit inputs.
    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba - &bb).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
    }

    /// Division is Euclidean: a == q*b + r with |r| < |b| and sign(r) == sign(a).
    #[test]
    fn bigint_divrem_reconstructs(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |&b| b != 0)) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        let (q, r) = ba.div_rem(&bb);
        prop_assert_eq!(&(&q * &bb) + &r, ba);
        prop_assert!(r.abs() < bb.abs());
    }

    /// BigRat is a field: a + b - b == a, (a*b)/b == a for b != 0.
    #[test]
    fn bigrat_field_laws(
        an in small_int(), ad in 1i64..=9,
        bn in small_int(), bd in 1i64..=9,
    ) {
        let a = BigRat::from_ratio(an, ad);
        let b = BigRat::from_ratio(bn, bd);
        prop_assert_eq!(&(&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!(&(&a * &b) / &b, a);
        }
    }

    /// floor/ceil bracket the value and differ only on non-integers.
    #[test]
    fn bigrat_floor_ceil(n in -100i64..=100, d in 1i64..=13) {
        let x = BigRat::from_ratio(n, d);
        let fl = BigRat::from(x.floor());
        let ce = BigRat::from(x.ceil());
        prop_assert!(fl <= x && x <= ce);
        if x.is_integer() {
            prop_assert_eq!(fl, ce);
        } else {
            prop_assert_eq!(&ce - &fl, BigRat::one());
        }
    }

    /// f64 simplex agrees with the exact rational simplex on random
    /// bounded LPs (outcome class and, when optimal, objective value).
    #[test]
    fn f64_simplex_agrees_with_exact(
        obj in prop::collection::vec(small_int(), 3),
        rows in prop::collection::vec(
            (prop::collection::vec(small_int(), 3), 0usize..3, -9i64..=9),
            1..5,
        ),
    ) {
        let p = LpProblem {
            obj: obj.iter().map(|&c| c as f64).collect(),
            rows: rows
                .iter()
                .map(|(coeffs, s, b)| {
                    let terms: Vec<(usize, f64)> = coeffs
                        .iter()
                        .enumerate()
                        .map(|(j, &c)| (j, c as f64))
                        .collect();
                    let sense = [Sense::Le, Sense::Ge, Sense::Eq][*s];
                    (terms, sense, *b as f64)
                })
                .collect(),
            lo: vec![0.0; 3],
            hi: vec![10.0; 3], // bounded -> never unbounded
        };
        let f = solve_lp(&p);
        let e = solve_lp_exact(&ExactLp::from_f64_problem(&p));
        match (&f, &e) {
            (swp_milp::LpOutcome::Optimal(fs), ExactOutcome::Optimal { objective, .. }) => {
                prop_assert!(
                    (fs.objective - objective.to_f64()).abs() < 1e-5,
                    "objectives diverge: f64 {} vs exact {}",
                    fs.objective,
                    objective.to_f64()
                );
            }
            (swp_milp::LpOutcome::Infeasible, ExactOutcome::Infeasible) => {}
            other => prop_assert!(false, "outcome mismatch: {other:?}"),
        }
    }

    /// Branch-and-bound on random 0-1 models matches brute-force
    /// enumeration of all 2^n assignments.
    #[test]
    fn bnb_matches_bruteforce(
        obj in prop::collection::vec(small_int(), 4),
        rows in prop::collection::vec(
            (prop::collection::vec(small_int(), 4), 0usize..2, -6i64..=12),
            1..4,
        ),
    ) {
        let mut m = Model::new();
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.minimize(
            xs.iter()
                .zip(&obj)
                .map(|(&x, &c)| (x, c as f64))
                .collect::<Vec<_>>(),
        );
        for (coeffs, s, b) in &rows {
            let sense = [Sense::Le, Sense::Ge][*s];
            m.add_constr(
                xs.iter()
                    .zip(coeffs)
                    .map(|(&x, &c)| (x, c as f64))
                    .collect::<Vec<_>>(),
                sense,
                *b as f64,
            );
        }
        // Brute force.
        let mut best: Option<f64> = None;
        for mask in 0u32..16 {
            let point: Vec<f64> = (0..4)
                .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .collect();
            if m.is_feasible_point(&point, 1e-9) {
                let v = m.objective_value(&point);
                best = Some(best.map_or(v, |b: f64| b.min(v)));
            }
        }
        match (m.solve(), best) {
            (Ok(sol), Some(b)) => prop_assert!(
                (sol.objective() - b).abs() < 1e-6,
                "solver {} vs brute force {}",
                sol.objective(),
                b
            ),
            (Err(SolveError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "mismatch: solver {got:?}, brute force {want:?}"),
        }
    }

    /// Every solution the MIP solver returns satisfies the model.
    #[test]
    fn solutions_are_feasible(
        rhs in 1i64..=5,
        coeffs in prop::collection::vec(1i64..=4, 3),
    ) {
        let mut m = Model::new();
        let xs: Vec<_> = (0..3).map(|i| m.add_integer(6.0, format!("x{i}"))).collect();
        m.maximize(
            xs.iter()
                .zip(&coeffs)
                .map(|(&x, &c)| (x, c as f64))
                .collect::<Vec<_>>(),
        );
        m.add_constr(
            xs.iter()
                .zip(&coeffs)
                .map(|(&x, &c)| (x, c as f64))
                .collect::<Vec<_>>(),
            Sense::Le,
            rhs as f64,
        );
        let sol = m.solve().expect("bounded and feasible (origin)");
        prop_assert!(m.is_feasible_point(sol.values(), 1e-6));
        for &x in &xs {
            let v = sol.value(x);
            prop_assert!((v - v.round()).abs() < 1e-6, "integrality violated: {v}");
        }
    }
}
