//! Tick budgets make solves a pure function of the model.
//!
//! The fuzzing and golden-snapshot layers above this crate rely on one
//! contract: a solve bounded only by *ticks* (never the wall clock)
//! produces bit-identical search statistics on every run, on every
//! machine, at any load. These tests pin that contract at the MILP
//! layer directly.

use swp_milp::{Budget, Model, Sense, SolveError};

/// A 0-1 knapsack-ish model hard enough to branch a few times.
fn model() -> Model {
    let mut m = Model::new();
    let xs: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
    let weights = [3.0, 5.0, 7.0, 2.0, 9.0, 4.0, 6.0, 8.0, 5.0, 3.0];
    let values = [-2.0, -4.0, -7.0, -1.0, -9.0, -3.0, -5.0, -8.0, -4.0, -2.0];
    m.minimize(
        xs.iter()
            .zip(values)
            .map(|(&x, v)| (x, v))
            .collect::<Vec<_>>(),
    );
    m.add_constr(
        xs.iter()
            .zip(weights)
            .map(|(&x, w)| (x, w))
            .collect::<Vec<_>>(),
        Sense::Le,
        20.0,
    );
    // A coupling row so the LP relaxation is fractional.
    m.add_constr(
        vec![(xs[0], 1.0), (xs[4], 1.0), (xs[7], 1.0)],
        Sense::Le,
        2.0,
    );
    m
}

fn limits(ticks: u64) -> swp_milp::SolveLimits {
    swp_milp::SolveLimits {
        budget: Budget::unlimited().limit_ticks(ticks),
        ..Default::default()
    }
}

#[test]
fn tick_limited_solves_are_bit_identical_across_runs() {
    let m = model();
    let a = m.solve_with(&limits(1_000_000)).expect("solvable");
    let b = m.solve_with(&limits(1_000_000)).expect("solvable");
    assert_eq!(a.objective(), b.objective());
    assert_eq!(a.stats().nodes, b.stats().nodes);
    assert_eq!(a.stats().lp_iterations, b.stats().lp_iterations);
    assert_eq!(a.stats().proven_optimal, b.stats().proven_optimal);
    assert!(
        a.stats().proven_optimal,
        "generous tick budget should prove optimality"
    );
}

#[test]
fn exhausted_tick_budget_fails_identically_across_runs() {
    let m = model();
    // Too few ticks to finish: the truncation point must also be
    // deterministic — same incumbent, same stats, same stop reason,
    // run after run (whether it surfaces as an unproven Ok or an Err).
    let a = m.solve_with(&limits(8));
    let b = m.solve_with(&limits(8));
    match (&a, &b) {
        (Ok(x), Ok(y)) => {
            assert!(
                !x.stats().proven_optimal,
                "8 ticks cannot prove optimality for this model"
            );
            assert_eq!(x.objective(), y.objective());
            assert_eq!(x.stats().nodes, y.stats().nodes);
            assert_eq!(x.stats().lp_iterations, y.stats().lp_iterations);
            assert_eq!(
                format!("{:?}", x.stats().stop_reason),
                format!("{:?}", y.stats().stop_reason),
            );
            assert!(
                format!("{:?}", x.stats().stop_reason).contains("Ticks"),
                "truncation must be attributed to the tick budget, got {:?}",
                x.stats().stop_reason
            );
        }
        (Err(SolveError::LimitReached(x)), Err(SolveError::LimitReached(y))) => {
            assert_eq!(x, y, "incumbent at truncation differs between runs");
        }
        other => panic!("expected identical truncation, got {other:?}"),
    }
}

#[test]
fn tick_budget_never_changes_the_answer_only_whether_there_is_one() {
    let m = model();
    let unlimited = m.solve_with(&limits(u64::MAX)).expect("solvable");
    for ticks in [50u64, 500, 5_000, 50_000] {
        match m.solve_with(&limits(ticks)) {
            Ok(sol) if sol.stats().proven_optimal => {
                assert_eq!(
                    sol.objective(),
                    unlimited.objective(),
                    "a proven solve under {ticks} ticks found a different optimum"
                );
            }
            Ok(sol) => {
                // Unproven incumbent: must never beat the true optimum.
                assert!(
                    sol.objective() >= unlimited.objective() - 1e-9,
                    "incumbent {} beats the optimum {}",
                    sol.objective(),
                    unlimited.objective()
                );
            }
            Err(SolveError::LimitReached(_)) => {}
            Err(e) => panic!("unexpected error under {ticks} ticks: {e:?}"),
        }
    }
}
