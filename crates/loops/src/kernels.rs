//! Hand-written kernel DDGs.
//!
//! Each builder takes the target [`Machine`] and a [`ClassConvention`]
//! and derives node latencies from the machine, so the same kernel can be
//! scheduled on the example machines and the PowerPC-604 model alike.
//! [`motivating_example`] is the paper's Figure 1 and is pinned to the
//! example convention.

use crate::ClassConvention;
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_machine::Machine;

/// A named loop.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Human-readable kernel name.
    pub name: String,
    /// Its dependence graph.
    pub ddg: Ddg,
}

struct B<'a> {
    g: Ddg,
    m: &'a Machine,
    c: ClassConvention,
}

impl<'a> B<'a> {
    fn new(m: &'a Machine, c: ClassConvention) -> Self {
        B {
            g: Ddg::new(),
            m,
            c,
        }
    }

    fn node(&mut self, name: &str, class: OpClass) -> NodeId {
        let lat = self.c.latency(self.m, class);
        self.g.add_node(name, class, lat)
    }

    fn ld(&mut self, name: &str) -> NodeId {
        self.node(name, self.c.ldst)
    }

    fn st(&mut self, name: &str) -> NodeId {
        self.node(name, self.c.ldst)
    }

    fn fp(&mut self, name: &str) -> NodeId {
        self.node(name, self.c.fp)
    }

    fn int(&mut self, name: &str) -> NodeId {
        self.node(name, self.c.int)
    }

    fn div(&mut self, name: &str) -> NodeId {
        self.node(name, self.c.fdiv_or_fp())
    }

    fn dep(&mut self, a: NodeId, b: NodeId) {
        self.g.add_edge(a, b, 0).expect("builder ids are valid");
    }

    fn carried(&mut self, a: NodeId, b: NodeId, dist: u32) {
        self.g.add_edge(a, b, dist).expect("builder ids are valid");
    }

    fn finish(self, name: &str) -> Kernel {
        debug_assert_eq!(self.g.validate(), Ok(()));
        Kernel {
            name: name.to_string(),
            ddg: self.g,
        }
    }
}

/// The paper's motivating example (Figure 1, reconstructed): six
/// instructions — two loads, a multiply with a distance-1 self-
/// dependence (`T_dep = 2`), two dependent FP ops, and a store.
/// Schedule B of the paper (`T = 4`, `t = [0,1,3,5,7,11]`) satisfies
/// exactly these dependences on [`Machine::example_pldi95`].
pub fn motivating_example() -> Ddg {
    let m = Machine::example_pldi95();
    let mut b = B::new(&m, ClassConvention::example());
    let i0 = b.ld("i0: load");
    let i1 = b.ld("i1: load");
    let i2 = b.fp("i2: fmul");
    let i3 = b.fp("i3: fadd");
    let i4 = b.fp("i4: fadd");
    let i5 = b.st("i5: store");
    b.dep(i0, i2);
    b.carried(i2, i2, 1);
    b.dep(i2, i3);
    b.dep(i1, i4);
    b.dep(i3, i4);
    b.dep(i4, i5);
    b.finish("motivating").ddg
}

/// `y[i] = y[i] + a * x[i]` — linpack daxpy.
pub fn daxpy(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lx = b.ld("load x[i]");
    let ly = b.ld("load y[i]");
    let mul = b.fp("a*x[i]");
    let add = b.fp("y[i]+ax");
    let st = b.st("store y[i]");
    b.dep(lx, mul);
    b.dep(ly, add);
    b.dep(mul, add);
    b.dep(add, st);
    b.finish("daxpy")
}

/// `s += x[i] * y[i]` — linpack ddot (sum recurrence).
pub fn ddot(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lx = b.ld("load x[i]");
    let ly = b.ld("load y[i]");
    let mul = b.fp("x*y");
    let acc = b.fp("s += xy");
    b.dep(lx, mul);
    b.dep(ly, mul);
    b.dep(mul, acc);
    b.carried(acc, acc, 1);
    b.finish("ddot")
}

/// Livermore loop 1 (hydro fragment):
/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
pub fn livermore1(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lz10 = b.ld("load z[k+10]");
    let lz11 = b.ld("load z[k+11]");
    let ly = b.ld("load y[k]");
    let m1 = b.fp("r*z10");
    let m2 = b.fp("t*z11");
    let a1 = b.fp("m1+m2");
    let m3 = b.fp("y*a1");
    let a2 = b.fp("q+m3");
    let st = b.st("store x[k]");
    b.dep(lz10, m1);
    b.dep(lz11, m2);
    b.dep(m1, a1);
    b.dep(m2, a1);
    b.dep(ly, m3);
    b.dep(a1, m3);
    b.dep(m3, a2);
    b.dep(a2, st);
    b.finish("livermore1")
}

/// Livermore loop 5 (tridiagonal elimination):
/// `x[i] = z[i] * (y[i] - x[i-1])` — a tight carried recurrence.
pub fn livermore5(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let ly = b.ld("load y[i]");
    let lz = b.ld("load z[i]");
    let sub = b.fp("y - x[i-1]");
    let mul = b.fp("z * sub");
    let st = b.st("store x[i]");
    b.dep(ly, sub);
    b.dep(lz, mul);
    b.dep(sub, mul);
    b.dep(mul, st);
    b.carried(mul, sub, 1); // x[i-1] feeds the next subtract
    b.finish("livermore5")
}

/// Livermore loop 7 (equation of state fragment) — wide FP tree.
pub fn livermore7(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lu = b.ld("load u[k]");
    let lz = b.ld("load z[k]");
    let ly = b.ld("load y[k]");
    let m1 = b.fp("r*z");
    let a1 = b.fp("u+m1");
    let m2 = b.fp("t*a1");
    let m3 = b.fp("y*m2");
    let a2 = b.fp("u+m3");
    let m4 = b.fp("r*a2");
    let a3 = b.fp("u+m4");
    let st = b.st("store x[k]");
    b.dep(lu, a1);
    b.dep(lz, m1);
    b.dep(m1, a1);
    b.dep(a1, m2);
    b.dep(ly, m3);
    b.dep(m2, m3);
    b.dep(m3, a2);
    b.dep(lu, a2);
    b.dep(a2, m4);
    b.dep(m4, a3);
    b.dep(lu, a3);
    b.dep(a3, st);
    b.finish("livermore7")
}

/// Livermore loop 11 (first sum): `x[k] = x[k-1] + y[k]`.
pub fn livermore11(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let ly = b.ld("load y[k]");
    let add = b.fp("x[k-1] + y[k]");
    let st = b.st("store x[k]");
    b.dep(ly, add);
    b.carried(add, add, 1);
    b.dep(add, st);
    b.finish("livermore11")
}

/// Livermore loop 12 (first difference): `x[k] = y[k+1] - y[k]`.
pub fn livermore12(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let l1 = b.ld("load y[k+1]");
    let l0 = b.ld("load y[k]");
    let sub = b.fp("y1 - y0");
    let st = b.st("store x[k]");
    b.dep(l1, sub);
    b.dep(l0, sub);
    b.dep(sub, st);
    b.finish("livermore12")
}

/// 3-point stencil: `b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1]`.
pub fn stencil3(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let l0 = b.ld("load a[i-1]");
    let l1 = b.ld("load a[i]");
    let l2 = b.ld("load a[i+1]");
    let m0 = b.fp("w0*a0");
    let m1 = b.fp("w1*a1");
    let m2 = b.fp("w2*a2");
    let a1 = b.fp("m0+m1");
    let a2 = b.fp("a1+m2");
    let st = b.st("store b[i]");
    b.dep(l0, m0);
    b.dep(l1, m1);
    b.dep(l2, m2);
    b.dep(m0, a1);
    b.dep(m1, a1);
    b.dep(a1, a2);
    b.dep(m2, a2);
    b.dep(a2, st);
    b.finish("stencil3")
}

/// Complex multiply: `(cr, ci) = (ar*br − ai*bi, ar*bi + ai*br)`.
pub fn complex_multiply(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lar = b.ld("load ar");
    let lai = b.ld("load ai");
    let lbr = b.ld("load br");
    let lbi = b.ld("load bi");
    let m1 = b.fp("ar*br");
    let m2 = b.fp("ai*bi");
    let m3 = b.fp("ar*bi");
    let m4 = b.fp("ai*br");
    let sub = b.fp("m1-m2");
    let add = b.fp("m3+m4");
    let scr = b.st("store cr");
    let sci = b.st("store ci");
    b.dep(lar, m1);
    b.dep(lbr, m1);
    b.dep(lai, m2);
    b.dep(lbi, m2);
    b.dep(lar, m3);
    b.dep(lbi, m3);
    b.dep(lai, m4);
    b.dep(lbr, m4);
    b.dep(m1, sub);
    b.dep(m2, sub);
    b.dep(m3, add);
    b.dep(m4, add);
    b.dep(sub, scr);
    b.dep(add, sci);
    b.finish("complex_multiply")
}

/// Horner polynomial evaluation: `p = p*x + c[i]` (serial recurrence).
pub fn horner(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lc = b.ld("load c[i]");
    let mul = b.fp("p*x");
    let add = b.fp("px + c[i]");
    b.dep(lc, add);
    b.dep(mul, add);
    b.carried(add, mul, 1);
    b.finish("horner")
}

/// 4-tap FIR filter: `y[i] = Σ_k h[k]·x[i−k]`.
pub fn fir4(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let mut prev: Option<NodeId> = None;
    for k in 0..4 {
        let lx = b.ld(&format!("load x[i-{k}]"));
        let mul = b.fp(&format!("h{k}*x"));
        b.dep(lx, mul);
        if let Some(p) = prev {
            let add = b.fp(&format!("acc{k}"));
            b.dep(p, add);
            b.dep(mul, add);
            prev = Some(add);
        } else {
            prev = Some(mul);
        }
    }
    let st = b.st("store y[i]");
    let last = prev.expect("nonempty");
    b.dep(last, st);
    b.finish("fir4")
}

/// Vector normalize with a divide: `y[i] = x[i] / norm` plus an update
/// of a running maximum — exercises the non-pipelined divide unit.
pub fn vector_normalize(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lx = b.ld("load x[i]");
    let dv = b.div("x/norm");
    let mx = b.fp("max(acc, y)");
    let st = b.st("store y[i]");
    b.dep(lx, dv);
    b.dep(dv, mx);
    b.carried(mx, mx, 1);
    b.dep(dv, st);
    b.finish("vector_normalize")
}

/// Matrix-vector inner loop: `y[i] += a[i][j] * x[j]` with address
/// update on the integer unit.
pub fn matvec_inner(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let addr = b.int("addr += 8");
    let la = b.ld("load a[i][j]");
    let lx = b.ld("load x[j]");
    let mul = b.fp("a*x");
    let acc = b.fp("y += ax");
    b.carried(addr, addr, 1);
    b.dep(addr, la);
    b.dep(la, mul);
    b.dep(lx, mul);
    b.dep(mul, acc);
    b.carried(acc, acc, 1);
    b.finish("matvec_inner")
}

/// Prefix-ish two-term recurrence crossing two iterations:
/// `x[i] = a*x[i-1] + b*x[i-2]`.
pub fn second_order_recurrence(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let m1 = b.fp("a*x[i-1]");
    let m2 = b.fp("b*x[i-2]");
    let add = b.fp("m1+m2");
    let st = b.st("store x[i]");
    b.carried(add, m1, 1);
    b.carried(add, m2, 2);
    b.dep(m1, add);
    b.dep(m2, add);
    b.dep(add, st);
    b.finish("second_order_recurrence")
}

/// Livermore loop 2 (incomplete Cholesky / ICCG fragment):
/// `x[i] = x[i] - z[i]*x[i+m] - z[i+1]*x[i+m+1]` shaped reduction step.
pub fn livermore2(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let lx = b.ld("load x[ipnt]");
    let lz0 = b.ld("load z[ii]");
    let lx1 = b.ld("load x[ipnt+1]");
    let lz1 = b.ld("load z[ii+1]");
    let m1 = b.fp("z0*x1");
    let m2 = b.fp("z1*x1b");
    let s1 = b.fp("x - m1");
    let s2 = b.fp("s1 - m2");
    let st = b.st("store x[i]");
    b.dep(lz0, m1);
    b.dep(lx1, m1);
    b.dep(lz1, m2);
    b.dep(lx1, m2);
    b.dep(lx, s1);
    b.dep(m1, s1);
    b.dep(s1, s2);
    b.dep(m2, s2);
    b.dep(s2, st);
    b.finish("livermore2")
}

/// Livermore loop 3 (inner product) — same as ddot but with the classic
/// 8-op body after address arithmetic.
pub fn livermore3(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let ax = b.int("ax += 8");
    let az = b.int("az += 8");
    let lx = b.ld("load x[k]");
    let lz = b.ld("load z[k]");
    let mul = b.fp("x*z");
    let acc = b.fp("q += xz");
    b.carried(ax, ax, 1);
    b.carried(az, az, 1);
    b.dep(ax, lx);
    b.dep(az, lz);
    b.dep(lx, mul);
    b.dep(lz, mul);
    b.dep(mul, acc);
    b.carried(acc, acc, 1);
    b.finish("livermore3")
}

/// Livermore loop 9 (integrate predictors) — a wide multiply-add fan-in.
pub fn livermore9(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let mut terms = Vec::new();
    for i in 0..5 {
        let lc = b.ld(&format!("load c{i}"));
        let lp = b.ld(&format!("load px[{i}]"));
        let mul = b.fp(&format!("c{i}*px{i}"));
        b.dep(lc, mul);
        b.dep(lp, mul);
        terms.push(mul);
    }
    let mut acc = terms[0];
    for (i, &t) in terms.iter().enumerate().skip(1) {
        let add = b.fp(&format!("sum{i}"));
        b.dep(acc, add);
        b.dep(t, add);
        acc = add;
    }
    let st = b.st("store px[i]");
    b.dep(acc, st);
    b.finish("livermore9")
}

/// FFT butterfly (radix-2, one stage): two loads, complex twiddle
/// multiply, add/sub pair, two stores.
pub fn fft_butterfly(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let la = b.ld("load a");
    let lb2 = b.ld("load b");
    let m1 = b.fp("br*wr");
    let m2 = b.fp("bi*wi");
    let m3 = b.fp("br*wi");
    let m4 = b.fp("bi*wr");
    let tr = b.fp("m1-m2");
    let ti = b.fp("m3+m4");
    let out0 = b.fp("a + t");
    let out1 = b.fp("a - t");
    let s0 = b.st("store out0");
    let s1 = b.st("store out1");
    b.dep(lb2, m1);
    b.dep(lb2, m2);
    b.dep(lb2, m3);
    b.dep(lb2, m4);
    b.dep(m1, tr);
    b.dep(m2, tr);
    b.dep(m3, ti);
    b.dep(m4, ti);
    b.dep(la, out0);
    b.dep(tr, out0);
    b.dep(la, out1);
    b.dep(ti, out1);
    b.dep(out0, s0);
    b.dep(out1, s1);
    b.finish("fft_butterfly")
}

/// Newton–Raphson reciprocal step: `r = r*(2 - d*r)` — a divide-free
/// recurrence with two chained FP ops per iteration.
pub fn newton_recip(m: &Machine, c: ClassConvention) -> Kernel {
    let mut b = B::new(m, c);
    let mul1 = b.fp("d*r");
    let sub = b.fp("2 - dr");
    let mul2 = b.fp("r*(2-dr)");
    b.dep(mul1, sub);
    b.dep(sub, mul2);
    b.carried(mul2, mul1, 1);
    b.carried(mul2, mul2, 1);
    b.finish("newton_recip")
}

/// All kernels parameterized over a machine/convention pair.
pub fn all(m: &Machine, c: ClassConvention) -> Vec<Kernel> {
    vec![
        daxpy(m, c),
        ddot(m, c),
        livermore1(m, c),
        livermore2(m, c),
        livermore3(m, c),
        livermore5(m, c),
        livermore7(m, c),
        livermore9(m, c),
        livermore11(m, c),
        livermore12(m, c),
        stencil3(m, c),
        complex_multiply(m, c),
        horner(m, c),
        fir4(m, c),
        vector_normalize(m, c),
        matvec_inner(m, c),
        second_order_recurrence(m, c),
        fft_butterfly(m, c),
        newton_recip(m, c),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivating_example_matches_paper_bounds() {
        let g = motivating_example();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.t_dep(), Some(2)); // the i2 self-loop
        let m = Machine::example_pldi95();
        // 3 LD/ST ops on 1 clean unit -> T_res >= 3; FP busiest stage has
        // 2 marks, 3 FP ops on 2 units -> ceil(6/2) = 3 by counting.
        assert_eq!(m.t_res_counting(&g).unwrap(), 3);
        // The packing refinement sees that a hazard unit hosts only one
        // op at T = 3 (stage-3 2-blocks mod 3), so 3 FP ops need T >= 4 —
        // which is exactly why the paper's Schedule B sits at T = 4.
        assert_eq!(m.t_res(&g).unwrap(), 4);
    }

    #[test]
    fn paper_schedule_b_satisfies_motivating_dependences() {
        use swp_core::PipelinedSchedule;
        let g = motivating_example();
        let s = PipelinedSchedule::new(4, vec![0, 1, 3, 5, 7, 11], vec![None; 6]);
        let m = Machine::example_pldi95();
        assert_eq!(s.validate(&g, &m), Ok(()));
    }

    #[test]
    fn all_kernels_validate_on_both_machines() {
        for (m, c) in [
            (Machine::example_pldi95(), ClassConvention::example()),
            (Machine::ppc604(), ClassConvention::ppc604()),
        ] {
            for k in all(&m, c) {
                assert_eq!(k.ddg.validate(), Ok(()), "kernel {}", k.name);
                assert!(k.ddg.t_dep().is_some(), "kernel {}", k.name);
                assert!(m.t_res(&k.ddg).is_ok(), "kernel {}", k.name);
            }
        }
    }

    #[test]
    fn recurrences_bound_t_dep() {
        let m = Machine::example_pldi95();
        let c = ClassConvention::example();
        // horner: carried(add -> mul, 1), mul -> add: cycle latency
        // = lat(add) + lat(mul) = 4, distance 1 -> T_dep = 4.
        assert_eq!(horner(&m, c).ddg.t_dep(), Some(4));
        // second order: ceil((2+2)/1)? cycle add->m1->add: lat 2+2 over
        // dist 1 -> 4; add->m2->add: 4 over 2 -> 2. Max = 4.
        assert_eq!(second_order_recurrence(&m, c).ddg.t_dep(), Some(4));
        // livermore12 has no cycles.
        assert_eq!(livermore12(&m, c).ddg.t_dep(), Some(1));
    }

    #[test]
    fn divide_lands_on_fdiv_class_for_ppc() {
        let m = Machine::ppc604();
        let c = ClassConvention::ppc604();
        let k = vector_normalize(&m, c);
        let has_div = k
            .ddg
            .nodes()
            .any(|(_, n)| n.class == OpClass::new(4) && n.latency == 18);
        assert!(has_div);
    }
}
