//! Stable fingerprints for cache keys.
//!
//! The corpus-execution harness (`swp-harness`) keys its on-disk result
//! cache by `(ddg fingerprint, machine fingerprint, config fingerprint)`.
//! Those keys must be *stable*: the same loop and machine must hash to
//! the same value across processes, runs, and Rust releases — which
//! rules out `std::hash::DefaultHasher` (its algorithm is explicitly
//! unspecified). This module hand-rolls FNV-1a 64, a fixed published
//! algorithm, over a canonical byte encoding of the hashed structures.
//!
//! The encoding is length-prefixed (every variable-length field is
//! preceded by its length) so distinct structures cannot collide by
//! concatenation ambiguity, and every integer is serialized as
//! little-endian `u64`.

use swp_ddg::Ddg;
use swp_machine::Machine;

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with a stable, documented
/// algorithm (unlike `std`'s `DefaultHasher`).
///
/// ```
/// use swp_loops::fingerprint::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"hello");
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write(b"hello");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs an integer as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a string, length-prefixed so field boundaries are
    /// unambiguous.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Renders a fingerprint as the fixed-width hex form used in the JSONL
/// artifact schema (16 lowercase hex digits).
pub fn to_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses the fixed-width hex form back to a fingerprint.
pub fn from_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Stable fingerprint of a dependence graph: covers node names, classes,
/// latencies, and every edge with its distance, all in creation order.
/// Two structurally identical graphs built in the same order fingerprint
/// identically; any change to a node or edge changes the value.
pub fn ddg_fingerprint(ddg: &Ddg) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(ddg.num_nodes() as u64);
    for (_, node) in ddg.nodes() {
        h.write_str(&node.name);
        h.write_u64(node.class.index() as u64);
        h.write_u64(u64::from(node.latency));
    }
    h.write_u64(ddg.num_edges() as u64);
    for e in ddg.edges() {
        h.write_u64(e.src.index() as u64);
        h.write_u64(e.dst.index() as u64);
        h.write_u64(u64::from(e.distance));
    }
    h.finish()
}

/// Stable fingerprint of a machine description: covers every unit type's
/// name, copy count, latency, and full reservation-table mark pattern,
/// plus the issue-bundle constraints (width and every slot group) —
/// machines differing only in bundle limits must never alias, or the
/// hazard-automaton registry and the harness result cache would serve
/// one machine's answers for the other.
pub fn machine_fingerprint(machine: &Machine) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(machine.num_classes() as u64);
    for t in machine.types() {
        h.write_str(&t.name);
        h.write_u64(u64::from(t.count));
        h.write_u64(u64::from(t.latency));
        let rt = &t.reservation;
        h.write_u64(rt.stages() as u64);
        for s in 0..rt.stages() {
            let offs = rt.stage_offsets(s);
            h.write_u64(offs.len() as u64);
            for l in offs {
                h.write_u64(l as u64);
            }
        }
    }
    match machine.bundle() {
        None => h.write_u64(0),
        Some(b) => {
            h.write_u64(1);
            h.write_u64(u64::from(b.width));
            h.write_u64(b.groups.len() as u64);
            for g in &b.groups {
                h.write_str(&g.name);
                h.write_u64(u64::from(g.cap));
                h.write_u64(g.classes.len() as u64);
                for &c in &g.classes {
                    h.write_u64(c as u64);
                }
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{generate, SuiteConfig};
    use swp_ddg::OpClass;

    #[test]
    fn fnv_matches_published_vectors() {
        // Classic FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hex_round_trips() {
        for fp in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(from_hex(&to_hex(fp)), Some(fp));
        }
        assert_eq!(from_hex("zzzz"), None);
        assert_eq!(from_hex("00"), None);
    }

    #[test]
    fn ddg_fingerprint_is_stable_and_sensitive() {
        let build = || {
            let mut g = Ddg::new();
            let a = g.add_node("a", OpClass::new(0), 1);
            let b = g.add_node("b", OpClass::new(1), 2);
            g.add_edge(a, b, 0).unwrap();
            g
        };
        let fp = ddg_fingerprint(&build());
        assert_eq!(fp, ddg_fingerprint(&build()));

        // Any field change moves the fingerprint.
        let mut g = build();
        let c = g.add_node("c", OpClass::new(0), 1);
        assert_ne!(fp, ddg_fingerprint(&g));
        g.add_edge(c, c, 1).unwrap();
        let with_edge = ddg_fingerprint(&g);
        let mut g2 = build();
        let c2 = g2.add_node("c", OpClass::new(0), 1);
        g2.add_edge(c2, c2, 2).unwrap(); // distance differs
        assert_ne!(with_edge, ddg_fingerprint(&g2));
    }

    #[test]
    fn corpus_fingerprints_are_distinct_and_reproducible() {
        let cfg = SuiteConfig {
            num_loops: 64,
            ..SuiteConfig::pldi95_default()
        };
        let a: Vec<u64> = generate(&cfg)
            .iter()
            .map(|l| ddg_fingerprint(&l.ddg))
            .collect();
        let b: Vec<u64> = generate(&cfg)
            .iter()
            .map(|l| ddg_fingerprint(&l.ddg))
            .collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        // Loops may legitimately coincide structurally, but most differ.
        assert!(dedup.len() > 56, "suspiciously many collisions");
    }

    #[test]
    fn machine_fingerprints_distinguish_models() {
        let fps = [
            machine_fingerprint(&Machine::example_pldi95()),
            machine_fingerprint(&Machine::example_clean()),
            machine_fingerprint(&Machine::ppc604()),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
        assert_eq!(fps[0], machine_fingerprint(&Machine::example_pldi95()));
    }

    #[test]
    fn machine_fingerprints_cover_bundle_fields() {
        use swp_machine::{BundleSpec, SlotGroup};
        let base = Machine::example_clean();
        let width = |w| {
            Machine::example_clean()
                .with_bundle(BundleSpec::width(w))
                .unwrap()
        };
        // No-bundle vs bundle, and distinct widths, must never alias:
        // these keys drive the hazard-automaton registry and the harness
        // result cache.
        assert_ne!(machine_fingerprint(&base), machine_fingerprint(&width(2)));
        assert_ne!(
            machine_fingerprint(&width(2)),
            machine_fingerprint(&width(3))
        );
        // Slot groups are covered too: cap, member set, and name.
        let grouped = |cap, classes: Vec<usize>| {
            Machine::example_clean()
                .with_bundle(BundleSpec {
                    width: 2,
                    groups: vec![SlotGroup {
                        name: "g".into(),
                        cap,
                        classes,
                    }],
                })
                .unwrap()
        };
        assert_ne!(
            machine_fingerprint(&width(2)),
            machine_fingerprint(&grouped(1, vec![1]))
        );
        assert_ne!(
            machine_fingerprint(&grouped(1, vec![1])),
            machine_fingerprint(&grouped(2, vec![1]))
        );
        assert_ne!(
            machine_fingerprint(&grouped(1, vec![1])),
            machine_fingerprint(&grouped(1, vec![2]))
        );
    }
}
