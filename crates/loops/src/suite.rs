//! The synthetic 1066-loop corpus.
//!
//! The generator is seeded and fully deterministic: the same
//! [`SuiteConfig`] always yields the same loops, so Table 4 and the
//! solve-time tables are reproducible run to run.
//!
//! Population shape (chosen to match what the paper reports about its
//! corpus): node counts are concentrated around 4–8 with a tail to ~25
//! (the paper's per-bucket means are 6 at `T_lb`, 16–17 in the
//! `T_lb+2`/`+4` tail); roughly half the loops carry an accumulator-style
//! recurrence; the op mix is FP/memory heavy as in numeric kernels.
//! Structurally, intra-iteration edges always point from lower to higher
//! index, so no zero-distance cycle can arise; carried edges have
//! distance ≥ 1.

use crate::ClassConvention;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swp_ddg::{Ddg, NodeId};

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Number of loops (the paper's corpus has 1066).
    pub num_loops: usize,
    /// RNG seed; fixed default for reproducibility.
    pub seed: u64,
    /// Class convention of the target machine.
    pub convention: ClassConvention,
    /// Latencies per abstract kind `(int, fp, ldst, fdiv)`; pair these
    /// with the machine the suite will be scheduled on.
    pub latencies: (u32, u32, u32, u32),
    /// Probability that a loop gets a divide op (rare but present).
    pub divide_prob: f64,
}

impl SuiteConfig {
    /// The corpus used to regenerate Table 4: 1066 loops against the
    /// example hazard machine's convention and latencies.
    pub fn pldi95_default() -> Self {
        SuiteConfig {
            num_loops: 1066,
            seed: 0x5CED_1995,
            convention: ClassConvention::example(),
            latencies: (1, 2, 3, 2),
            divide_prob: 0.0, // the example machine has no divide class
        }
    }

    /// A corpus for the PowerPC-604 model.
    pub fn ppc604() -> Self {
        SuiteConfig {
            num_loops: 1066,
            seed: 0x5CED_1995,
            convention: ClassConvention::ppc604(),
            latencies: (1, 3, 3, 18),
            divide_prob: 0.04,
        }
    }
}

/// A generated loop.
#[derive(Debug, Clone)]
pub struct GeneratedLoop {
    /// Stable name (`"loop0042"`).
    pub name: String,
    /// The dependence graph.
    pub ddg: Ddg,
}

/// Generates the corpus described by `config`.
pub fn generate(config: &SuiteConfig) -> Vec<GeneratedLoop> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..config.num_loops)
        .map(|i| GeneratedLoop {
            name: format!("loop{i:04}"),
            ddg: one_loop(&mut rng, config),
        })
        .collect()
}

/// Samples the node count: mostly 3–8, tail to 25.
fn sample_size(rng: &mut SmallRng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.55 {
        rng.gen_range(3..=7) // small numeric kernels
    } else if r < 0.85 {
        rng.gen_range(8..=12)
    } else if r < 0.97 {
        rng.gen_range(13..=18)
    } else {
        rng.gen_range(19..=25)
    }
}

fn one_loop(rng: &mut SmallRng, config: &SuiteConfig) -> Ddg {
    let n = sample_size(rng);
    let c = &config.convention;
    let (lat_int, lat_fp, lat_ldst, lat_div) = config.latencies;
    let mut g = Ddg::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);

    // Loads first (numeric loops begin by streaming operands in), compute
    // in the middle, stores and address updates at the end.
    let num_loads = (n as f64 * rng.gen_range(0.2..0.4)).round().max(1.0) as usize;
    let num_stores = (n as f64 * rng.gen_range(0.05..0.2)).round().max(1.0) as usize;
    let num_core = n.saturating_sub(num_loads + num_stores).max(1);

    for i in 0..num_loads {
        ids.push(g.add_node(format!("ld{i}"), c.ldst, lat_ldst));
    }
    let mut placed_div = false;
    for i in 0..num_core {
        let r: f64 = rng.gen();
        let (name, class, lat) = if !placed_div && rng.gen_bool(config.divide_prob) {
            placed_div = true;
            (format!("div{i}"), c.fdiv_or_fp(), lat_div)
        } else if r < 0.72 {
            (format!("fp{i}"), c.fp, lat_fp)
        } else {
            (format!("int{i}"), c.int, lat_int)
        };
        ids.push(g.add_node(name, class, lat));
    }
    for i in 0..num_stores {
        ids.push(g.add_node(format!("st{i}"), c.ldst, lat_ldst));
    }
    let n = ids.len();

    // Forward dataflow: every non-source picks 1–2 predecessors among
    // earlier nodes (biased to recent ones, as real expression trees are).
    for i in 1..n {
        let preds = if rng.gen_bool(0.45) && i >= 2 { 2 } else { 1 };
        let mut used = Vec::new();
        for _ in 0..preds {
            // Bias toward nearby predecessors.
            let lo = i.saturating_sub(5);
            let p = rng.gen_range(lo..i);
            if !used.contains(&p) {
                used.push(p);
                g.add_edge(ids[p], ids[i], 0).expect("valid ids");
            }
        }
    }

    // Recurrences: with probability ~0.5 add an accumulator self-loop on
    // a compute node; occasionally a longer carried cycle.
    if n > 2 && rng.gen_bool(0.5) {
        let k = rng.gen_range(num_loads.min(n - 1)..n);
        let dist = if rng.gen_bool(0.8) { 1 } else { 2 };
        g.add_edge(ids[k], ids[k], dist).expect("valid ids");
    }
    if n > 4 && rng.gen_bool(0.25) {
        // Carried cycle back from a later node to an earlier one.
        let a = rng.gen_range(1..n - 1);
        let b = rng.gen_range(0..a);
        let dist = rng.gen_range(1..=2);
        g.add_edge(ids[a], ids[b], dist).expect("valid ids");
    }

    debug_assert_eq!(g.validate(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SuiteConfig {
            num_loops: 25,
            ..SuiteConfig::pldi95_default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ddg, y.ddg);
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut cfg = SuiteConfig {
            num_loops: 25,
            ..SuiteConfig::pldi95_default()
        };
        let a = generate(&cfg);
        cfg.seed ^= 1;
        let b = generate(&cfg);
        assert!(a.iter().zip(&b).any(|(x, y)| x.ddg != y.ddg));
    }

    #[test]
    fn all_loops_are_well_formed() {
        let cfg = SuiteConfig {
            num_loops: 300,
            ..SuiteConfig::pldi95_default()
        };
        for l in generate(&cfg) {
            assert_eq!(l.ddg.validate(), Ok(()), "{}", l.name);
            assert!(l.ddg.t_dep().is_some(), "{}", l.name);
            assert!(l.ddg.num_nodes() >= 3);
            assert!(l.ddg.num_nodes() <= 25);
        }
    }

    #[test]
    fn population_statistics_match_targets() {
        let cfg = SuiteConfig {
            num_loops: 1066,
            ..SuiteConfig::pldi95_default()
        };
        let loops = generate(&cfg);
        assert_eq!(loops.len(), 1066);
        let sizes: Vec<usize> = loops.iter().map(|l| l.ddg.num_nodes()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(
            (5.0..11.0).contains(&mean),
            "mean size {mean} out of the paper's range"
        );
        let with_recurrence = loops
            .iter()
            .filter(|l| l.ddg.t_dep().map(|t| t > 1).unwrap_or(false))
            .count();
        let frac = with_recurrence as f64 / loops.len() as f64;
        assert!(
            (0.3..0.8).contains(&frac),
            "recurrence fraction {frac} implausible"
        );
    }

    #[test]
    fn ppc_corpus_places_divides() {
        let cfg = SuiteConfig {
            num_loops: 300,
            ..SuiteConfig::ppc604()
        };
        let loops = generate(&cfg);
        let with_div = loops
            .iter()
            .filter(|l| {
                l.ddg
                    .nodes()
                    .any(|(_, n)| n.class == swp_ddg::OpClass::new(4))
            })
            .count();
        assert!(with_div > 0, "no divides generated");
    }
}
