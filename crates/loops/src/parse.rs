//! A tiny textual loop language, so kernels can be written as code
//! rather than hand-assembled DDGs.
//!
//! ```text
//! # dot product with an accumulator recurrence
//! loop ddot {
//!     t1 = load x[i]
//!     t2 = load y[i]
//!     t3 = fmul t1, t2
//!     s  = fadd s@1, t3      # s@1: the s produced one iteration ago
//! }
//! ```
//!
//! Rules:
//!
//! * one instruction per line: `dest = op arg, arg, …` or `op arg, …`
//!   for result-less ops (`store`);
//! * `name@k` reads the value of `name` from `k` iterations back — the
//!   dependence distance of the resulting DDG edge;
//! * operands that are never defined in the loop are live-ins (no edge);
//!   operands like `x[i]` are address expressions, also live-ins;
//! * the op mnemonic picks the function-unit class: `load`/`store` →
//!   load/store class, mnemonics starting with `f` → FP, `div`/`fdiv` →
//!   divide class, everything else → integer; latency comes from the
//!   machine.

use crate::ClassConvention;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_machine::Machine;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// A parsed loop: the DDG plus name tables for diagnostics.
#[derive(Debug, Clone)]
pub struct ParsedLoop {
    /// Loop name from the header.
    pub name: String,
    /// The dependence graph.
    pub ddg: Ddg,
    /// For each node, the destination value name (if any).
    pub defs: Vec<Option<String>>,
}

/// Maps an op mnemonic to its unit class under a convention.
pub fn class_of(mnemonic: &str, conv: &ClassConvention) -> OpClass {
    if mnemonic == "load" || mnemonic == "store" {
        conv.ldst
    } else if mnemonic == "div" || mnemonic == "fdiv" {
        conv.fdiv_or_fp()
    } else if mnemonic.starts_with('f') {
        conv.fp
    } else {
        conv.int
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses one `loop <name> { … }` block.
///
/// # Errors
///
/// [`ParseError`] on malformed syntax, duplicate definitions, or a
/// `@k` reference to a name never defined in the loop.
pub fn parse_loop(
    source: &str,
    machine: &Machine,
    conv: &ClassConvention,
) -> Result<ParsedLoop, ParseError> {
    let mut name = None;
    let mut body: Vec<(usize, String)> = Vec::new();
    let mut in_body = false;
    let mut closed = false;
    for (ln, raw) in source.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !in_body {
            let rest = line
                .strip_prefix("loop")
                .ok_or_else(|| err(line_no, "expected `loop <name> {`"))?
                .trim();
            let rest = rest
                .strip_suffix('{')
                .ok_or_else(|| err(line_no, "expected `{` at end of loop header"))?
                .trim();
            if rest.is_empty() {
                return Err(err(line_no, "loop needs a name"));
            }
            name = Some(rest.to_string());
            in_body = true;
        } else if line == "}" {
            closed = true;
            in_body = false;
        } else if closed {
            return Err(err(line_no, "content after closing `}`"));
        } else {
            body.push((line_no, line.to_string()));
        }
    }
    let name = name.ok_or_else(|| err(1, "no `loop` block found"))?;
    if !closed {
        return Err(err(source.lines().count().max(1), "missing closing `}`"));
    }

    // Pass 1: instructions and definitions.
    struct Inst {
        line: usize,
        mnemonic: String,
        dest: Option<String>,
        args: Vec<(String, u32)>, // (name, distance)
    }
    let mut insts = Vec::new();
    let mut def_site: HashMap<String, usize> = HashMap::new();
    for (line_no, line) in &body {
        let (dest, rhs) = match line.split_once('=') {
            Some((d, r)) => {
                let d = d.trim();
                if d.is_empty() || !is_ident(d) {
                    return Err(err(*line_no, format!("bad destination `{d}`")));
                }
                (Some(d.to_string()), r.trim())
            }
            None => (None, line.as_str()),
        };
        let mut parts = rhs.splitn(2, char::is_whitespace);
        let mnemonic = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or_else(|| err(*line_no, "missing op mnemonic"))?
            .to_string();
        if !is_ident(&mnemonic) {
            return Err(err(*line_no, format!("bad mnemonic `{mnemonic}`")));
        }
        let args = match parts.next() {
            None => Vec::new(),
            Some(rest) => rest
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(|a| parse_operand(a, *line_no))
                .collect::<Result<Vec<_>, _>>()?,
        };
        if let Some(d) = &dest {
            if def_site.insert(d.clone(), insts.len()).is_some() {
                return Err(err(
                    *line_no,
                    format!("`{d}` defined twice (the loop body is SSA per iteration)"),
                ));
            }
        }
        insts.push(Inst {
            line: *line_no,
            mnemonic,
            dest,
            args,
        });
    }
    if insts.is_empty() {
        return Err(err(1, "empty loop body"));
    }

    // Pass 2: build the DDG.
    let mut ddg = Ddg::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(insts.len());
    for inst in &insts {
        let class = class_of(&inst.mnemonic, conv);
        let latency = machine
            .fu_type(class)
            .map_err(|_| {
                err(
                    inst.line,
                    format!("machine has no unit for `{}`", inst.mnemonic),
                )
            })?
            .latency;
        let label = match &inst.dest {
            Some(d) => format!("{d} = {}", inst.mnemonic),
            None => inst.mnemonic.clone(),
        };
        ids.push(ddg.add_node(label, class, latency));
    }
    for (i, inst) in insts.iter().enumerate() {
        for (arg, dist) in &inst.args {
            match def_site.get(arg) {
                Some(&src) => {
                    ddg.add_edge(ids[src], ids[i], *dist)
                        .expect("ids are from this graph");
                }
                None if *dist > 0 => {
                    return Err(err(
                        inst.line,
                        format!("`{arg}@{dist}` references a name never defined in the loop"),
                    ));
                }
                None => { /* live-in */ }
            }
        }
    }
    ddg.validate()
        .map_err(|e| err(insts[0].line, format!("invalid dependence structure: {e}")))?;

    Ok(ParsedLoop {
        name,
        ddg,
        defs: insts.into_iter().map(|i| i.dest).collect(),
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

/// `name` or `name@k` or an address expression like `x[i]`/`a[i+1]`.
fn parse_operand(s: &str, line: usize) -> Result<(String, u32), ParseError> {
    if let Some((base, dist)) = s.split_once('@') {
        let base = base.trim();
        if !is_ident(base) {
            return Err(err(line, format!("bad operand `{s}`")));
        }
        let d: u32 = dist
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad distance in `{s}`")))?;
        if d == 0 {
            return Err(err(line, format!("`{s}`: distance 0 is just `{base}`")));
        }
        return Ok((base.to_string(), d));
    }
    let ok_addr = s
        .chars()
        .all(|c| c.is_alphanumeric() || "_[]+-".contains(c));
    if !ok_addr {
        return Err(err(line, format!("bad operand `{s}`")));
    }
    Ok((s.to_string(), 0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, ClassConvention) {
        (Machine::example_pldi95(), ClassConvention::example())
    }

    #[test]
    fn parses_ddot() {
        let (m, c) = setup();
        let src = "
            # dot product
            loop ddot {
                t1 = load x[i]
                t2 = load y[i]
                t3 = fmul t1, t2
                s  = fadd s@1, t3
            }";
        let p = parse_loop(src, &m, &c).expect("parses");
        assert_eq!(p.name, "ddot");
        assert_eq!(p.ddg.num_nodes(), 4);
        assert_eq!(p.ddg.num_edges(), 4); // t1->t3, t2->t3, t3->s, s->s@1
        assert_eq!(p.ddg.t_dep(), Some(2)); // fadd lat 2 over distance 1
    }

    #[test]
    fn storeless_dest_and_live_ins() {
        let (m, c) = setup();
        let src = "loop k {
            t = fadd a, b
            store t
        }";
        let p = parse_loop(src, &m, &c).expect("parses");
        assert_eq!(p.ddg.num_edges(), 1); // a, b are live-ins
        assert_eq!(p.defs, vec![Some("t".into()), None]);
    }

    #[test]
    fn classes_and_latencies_from_machine() {
        let (m, c) = setup();
        let src = "loop k {
            t = load x[i]
            u = fmul t, t
            v = add u, u
        }";
        let p = parse_loop(src, &m, &c).expect("parses");
        let nodes: Vec<_> = p.ddg.nodes().map(|(_, n)| (n.class, n.latency)).collect();
        assert_eq!(nodes[0], (c.ldst, 3));
        assert_eq!(nodes[1], (c.fp, 2));
        assert_eq!(nodes[2], (c.int, 1));
    }

    #[test]
    fn double_definition_rejected() {
        let (m, c) = setup();
        let e = parse_loop("loop k {\n t = add a\n t = add b\n}", &m, &c).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn undefined_carried_reference_rejected() {
        let (m, c) = setup();
        let e = parse_loop("loop k {\n t = fadd q@1\n}", &m, &c).unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let (m, c) = setup();
        assert!(parse_loop("loop k {\n t = \n}", &m, &c).is_err());
        assert!(parse_loop("loop {\n}", &m, &c).is_err());
        assert!(parse_loop("loop k {\n t = add a", &m, &c).is_err());
        let e = parse_loop("loop k {\n 9x = add a\n}", &m, &c).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn distance_zero_suffix_rejected() {
        let (m, c) = setup();
        let e = parse_loop("loop k {\n t = fadd t@0\n}", &m, &c).unwrap_err();
        assert!(e.message.contains("distance 0"));
    }

    #[test]
    fn parsed_loop_schedules_end_to_end() {
        let (m, c) = setup();
        let src = "loop daxpy {
            t1 = load x[i]
            t2 = load y[i]
            t3 = fmul t1, a
            t4 = fadd t2, t3
            store t4
        }";
        let p = parse_loop(src, &m, &c).expect("parses");
        let r = swp_core::RateOptimalScheduler::new(m.clone(), Default::default())
            .schedule(&p.ddg)
            .expect("schedulable");
        assert_eq!(r.schedule.validate(&p.ddg, &m), Ok(()));
    }
}
