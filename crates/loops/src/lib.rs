//! Benchmark loops: hand-written kernel DDGs and a seeded generator for
//! large loop populations.
//!
//! The paper evaluates on 1066 loops drawn from SPEC92, the NAS kernels,
//! linpack, and the Livermore loops, compiled by the authors' testbed.
//! Those exact DDGs are not recoverable, so this crate substitutes:
//!
//! * [`kernels`] — faithful hand translations of the classic kernels the
//!   paper's sources are full of (daxpy, ddot, Livermore hydro/tridiag/
//!   state/recurrence kernels, FIR, Horner, complex multiply, …), plus
//!   the paper's own motivating example (Figure 1);
//! * [`suite`] — a deterministic generator that reproduces the
//!   *population statistics* the paper reports (node counts concentrated
//!   around 5–10 with a tail to ~25; accumulator recurrences common;
//!   FP/memory-heavy op mix), giving the 1066-loop corpus that Table 4
//!   is regenerated from.
//!
//! All loops use the class convention of a [`ClassConvention`], so the
//! same kernel builders target both the example machines and the
//! PowerPC-604-flavoured model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod kernels;
pub mod parse;
pub mod suite;

use swp_ddg::OpClass;
use swp_machine::Machine;

/// Maps the abstract operation kinds used by the kernel builders to the
/// concrete class indices of a machine description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassConvention {
    /// Integer ALU class.
    pub int: OpClass,
    /// Floating-point add/multiply class.
    pub fp: OpClass,
    /// Load/store class.
    pub ldst: OpClass,
    /// Divide class, if the machine separates it (falls back to `fp`).
    pub fdiv: Option<OpClass>,
}

impl ClassConvention {
    /// Convention of the `Machine::example_*` models:
    /// 0 = Int, 1 = FP, 2 = Ld/St.
    pub fn example() -> Self {
        ClassConvention {
            int: OpClass::new(0),
            fp: OpClass::new(1),
            ldst: OpClass::new(2),
            fdiv: None,
        }
    }

    /// Convention of [`Machine::ppc604`]:
    /// 0 = SCIU, 2 = FPU, 3 = LSU, 4 = FDIV.
    pub fn ppc604() -> Self {
        ClassConvention {
            int: OpClass::new(0),
            fp: OpClass::new(2),
            ldst: OpClass::new(3),
            fdiv: Some(OpClass::new(4)),
        }
    }

    /// The divide class, falling back to `fp`.
    pub fn fdiv_or_fp(&self) -> OpClass {
        self.fdiv.unwrap_or(self.fp)
    }

    /// Latency of `class` on `machine`, for building consistent DDGs.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not define `class` — conventions and
    /// machines are paired by the caller.
    pub fn latency(&self, machine: &Machine, class: OpClass) -> u32 {
        machine
            .fu_type(class)
            .expect("convention matches machine")
            .latency
    }
}
