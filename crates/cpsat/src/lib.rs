//! Constraint-propagation exact backend for scheduling-and-mapping.
//!
//! This crate decides the *same* question as the ILP formulation in
//! `swp-core` — "does a modulo schedule with a valid unit mapping exist
//! at period `T`?" — with a different exact method: depth-first search
//! over MRT **row/offset assignments** (one residue `o_i = t_i mod T`
//! per operation) and **unit colors** for the classes where mapping can
//! bind, driven to a fixpoint after every decision by four propagators:
//!
//! 1. **Dependence bounds** — interval propagation of the difference
//!    constraints `t_j − t_i ≥ d_i − T·m_ij` over `[lo_i, hi_i]` boxes
//!    (longest-path tightening, the CP analogue of the ILP's dependence
//!    rows plus its earliest-start potentials).
//! 2. **Congruence sync** — each node's start must hit an allowed
//!    residue: windows narrower than `T` prune the offset domain, and
//!    `lo`/`hi` are rounded in to the nearest allowed residue.
//! 3. **Capacity** — per class/stage/step demand counting of *fixed*
//!    offsets against the unit count `R_r` (the ILP's capacity rows,
//!    eq. (5)/(25)), with forward pruning of residues that would land
//!    an operation on a saturated stage-step.
//! 4. **Hazard/coloring** — for classes where the ILP emits
//!    circular-arc coloring (`count ≥ 2`, `≥ 2` members, unclean
//!    table), structural conflicts come from the hazard automaton of
//!    `swp-automata`: two members whose fixed offsets collide (a bit
//!    test on the precompiled forbidden-latency closure) must take
//!    distinct colors; members forced onto one unit prune each other's
//!    offset domains word-parallel via the rotated closure mask
//!    ([`swp_automata::HazardAutomaton::or_forbidden_from`]); and a
//!    per-unit pigeonhole bounds each unit's load by the closure-derived
//!    packing capacity.
//!
//! Dead ends record **no-goods** (refuted decision prefixes, kept
//! short) that later branches consult before cloning a state, so the
//! search never re-explores a refuted subtree reached in a different
//! order.
//!
//! # Exactness and agreement with the ILP
//!
//! The solver is complete over the same solution space the ILP
//! searches: the identical horizon (`Σd_i + 2T`), the identical root
//! rejections (self-loop period test, `modulo_feasible`, the
//! pigeonhole packing pre-check when enabled), the identical capacity
//! and coloring constraints, and the identical symmetry reductions
//! (node 0 pinned to pattern step 0, the first member of each colored
//! class pinned to color 0). Soundness of a `Feasible` answer: at a
//! full assignment the propagation fixpoint gives `lo_j ≥ lo_i + w` for
//! every dependence, so `t_i = lo_i` is a concrete witness, and the
//! fixed-offset capacity/coloring checks are exact. Completeness of an
//! `Infeasible` answer: every propagator only removes values that no
//! extension of the current assignment can use, so the branch carrying
//! any existing solution is never pruned. Hence for every case where
//! both engines finish within budget, CP and ILP verdicts agree — the
//! property the differential fuzzer enforces.
//!
//! # Budget integration
//!
//! The inner propagation loop and every search node call
//! [`swp_milp::Budget::tick`], so deadline, tick-cap, and
//! [`swp_milp::CancelToken`] cancellation are all observed within one
//! budget-check interval — the contract the portfolio racer in
//! `swp-core` relies on to cancel the losing engine promptly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use swp_automata::HazardAutomaton;
use swp_ddg::{Ddg, OpClass};
use swp_machine::Machine;
use swp_milp::{Budget, Exhaustion};

/// Widest colored class the color-mask representation supports. The
/// driver falls back to the ILP for machines beyond it (none of the
/// paper's machines come close).
pub const MAX_COLORED_UNITS: u32 = 64;

/// Longest decision prefix recorded as a no-good. Short prefixes are
/// the ones a reordered search can actually rediscover; long ones cost
/// more to index than they save.
const MAX_NOGOOD_LEN: usize = 4;

/// Cap on the no-good store, bounding memory on adversarial inputs.
const MAX_NOGOODS: usize = 4096;

/// Knobs mirrored from `SchedulerConfig` so both exact engines search
/// the same reduced space (a precondition for differential agreement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpOptions {
    /// Pin node 0 to pattern step 0 and the first member of each
    /// colored class to color 0 (feasibility-preserving, same as the
    /// ILP's rotation/color pinning).
    pub symmetry_breaking: bool,
    /// Apply the pigeonhole packing pre-check at the root and the
    /// per-unit packing bound inside the coloring propagator.
    pub packing_bound: bool,
    /// Register-pressure cap, mirroring the ILP's per-residue live rows
    /// (`SchedulerConfig::max_live`). When set, a fifth propagator
    /// lower-bounds the live census from the current boxes, and — since
    /// pressure depends on actual start *times*, not just residues — a
    /// third branching tier fixes the time of every edge-incident node
    /// before a leaf is accepted, so the verdict is exact.
    pub max_live: Option<u32>,
}

impl Default for CpOptions {
    fn default() -> Self {
        CpOptions {
            symmetry_breaking: true,
            packing_bound: true,
            max_live: None,
        }
    }
}

/// Verdict of [`solve_at`] when the search ran to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpOutcome {
    /// A schedule exists; `starts[i]` is the start time of node `i`
    /// (within the shared horizon) and `units[i]` the 0-based physical
    /// unit for nodes of colored classes (`None` for nodes whose
    /// mapping is left to first-fit completion, exactly like the ILP's
    /// uncolored nodes).
    Feasible {
        /// Start time per node.
        starts: Vec<u32>,
        /// Unit assignment per node, colored classes only.
        units: Vec<Option<u32>>,
    },
    /// The search space is exhausted: no schedule exists at this
    /// period (a proven refutation, like the ILP's `Infeasible`).
    Infeasible,
}

/// Why [`solve_at`] could not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpError {
    /// The DDG uses a class the machine does not define.
    UnknownClass(OpClass),
    /// The budget ran out (deadline, tick cap, or cancellation) before
    /// the search finished; the verdict is unknown.
    Exhausted(Exhaustion),
    /// A colored class has more than [`MAX_COLORED_UNITS`] units; the
    /// caller should fall back to the ILP.
    TooManyUnits {
        /// The offending class.
        class: OpClass,
        /// Its unit count.
        count: u32,
    },
}

impl fmt::Display for CpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpError::UnknownClass(c) => write!(f, "machine does not define class {c}"),
            CpError::Exhausted(e) => write!(f, "budget exhausted: {e:?}"),
            CpError::TooManyUnits { class, count } => write!(
                f,
                "class {class} has {count} units, beyond the {MAX_COLORED_UNITS}-unit color mask"
            ),
        }
    }
}

impl Error for CpError {}

/// Search effort counters, reported alongside the verdict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpStats {
    /// Search-tree nodes visited (decisions tried).
    pub nodes: u64,
    /// Propagation passes run to fixpoint.
    pub passes: u64,
    /// Dead ends detected by propagation.
    pub conflicts: u64,
    /// No-goods recorded from refuted prefixes.
    pub nogoods_recorded: u64,
    /// Branches skipped because a recorded no-good subsumed them.
    pub nogoods_hit: u64,
    /// No-goods carried in from a previous solve via
    /// [`solve_at_warm`]'s store (0 on cold solves).
    pub nogoods_replayed: u64,
}

fn spend(budget: &Budget) -> Result<(), CpError> {
    budget.tick().map_err(CpError::Exhausted)
}

fn words_for(period: u32) -> usize {
    (period as usize).div_ceil(64)
}

fn modt(t: i64, period: u32) -> u32 {
    (t.rem_euclid(period as i64)) as u32
}

/// One function-unit class as the propagators see it.
#[derive(Debug)]
struct ClassInfo {
    class: OpClass,
    count: u32,
    /// Whether the ILP would emit coloring for this class (count ≥ 2,
    /// ≥ 2 members, unclean table) — the CP model colors exactly those.
    colored: bool,
    /// Max ops one unit carries per period (from the automaton).
    capacity: u32,
    /// Reservation-stage offsets, empty stages dropped.
    stage_offsets: Vec<Vec<u32>>,
    /// Node indices of this class, ascending.
    members: Vec<usize>,
}

/// Issue-bundle limits as the propagator sees them: the width row over
/// every node, plus one `(cap, members)` row per slot group.
struct CpBundle {
    width: u32,
    all: Vec<usize>,
    groups: Vec<(u32, Vec<usize>)>,
}

/// The immutable model: graph, classes, automaton, options.
struct CpModel {
    period: u32,
    words: usize,
    n: usize,
    classes: Vec<ClassInfo>,
    /// `(src, dst, w)` with `w = d_src − T·m`, self-loops removed.
    edges: Vec<(usize, usize, i64)>,
    automaton: Arc<HazardAutomaton>,
    colored: Vec<bool>,
    /// Issue-bundle limits, when the machine declares them.
    bundle: Option<CpBundle>,
    /// Out-edges `(dst, T·m)` per node — self-loops *included* (their
    /// `t` terms cancel, leaving the constant `T·m`). Populated only
    /// when `opts.max_live` is set.
    outs: Vec<Vec<(usize, i64)>>,
    /// Nodes whose exact start time can move the pressure census (an
    /// endpoint of some non-self edge); only these get the time
    /// branching tier.
    time_relevant: Vec<bool>,
    opts: CpOptions,
}

/// The mutable search state: per-node bounds, offset domains (one
/// `words`-wide bitset per node, flattened), and color masks (one word
/// per node; meaningful only for colored nodes).
#[derive(Clone)]
struct CpState {
    lo: Vec<i64>,
    hi: Vec<i64>,
    dom: Vec<u64>,
    col: Vec<u64>,
}

impl CpModel {
    fn dom<'s>(&self, s: &'s CpState, i: usize) -> &'s [u64] {
        &s.dom[i * self.words..(i + 1) * self.words]
    }

    fn dom_mut<'s>(&self, s: &'s mut CpState, i: usize) -> &'s mut [u64] {
        &mut s.dom[i * self.words..(i + 1) * self.words]
    }

    fn dom_test(&self, s: &CpState, i: usize, r: u32) -> bool {
        let r = r as usize;
        self.dom(s, i)[r / 64] >> (r % 64) & 1 != 0
    }

    fn dom_clear(&self, s: &mut CpState, i: usize, r: u32) {
        let r = r as usize;
        self.dom_mut(s, i)[r / 64] &= !(1u64 << (r % 64));
    }

    fn dom_count(&self, s: &CpState, i: usize) -> u32 {
        self.dom(s, i).iter().map(|w| w.count_ones()).sum()
    }

    /// The single allowed residue, if the domain is a singleton.
    fn dom_fixed(&self, s: &CpState, i: usize) -> Option<u32> {
        if self.dom_count(s, i) != 1 {
            return None;
        }
        for (wi, &w) in self.dom(s, i).iter().enumerate() {
            if w != 0 {
                return Some((wi * 64) as u32 + w.trailing_zeros());
            }
        }
        None
    }

    /// `dom_i &= !mask`; reports whether anything was removed.
    fn dom_subtract(&self, s: &mut CpState, i: usize, mask: &[u64]) -> bool {
        let dom = self.dom_mut(s, i);
        let mut changed = false;
        for (d, &m) in dom.iter_mut().zip(mask) {
            let next = *d & !m;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// Intersects the domain with the residues reachable in
    /// `[lo_i, hi_i]` (caller guarantees the span is `< T`).
    fn restrict_window(&self, s: &mut CpState, i: usize) -> bool {
        let span = (s.hi[i] - s.lo[i] + 1) as u32;
        let start = modt(s.lo[i], self.period);
        let mut window = vec![0u64; self.words];
        for k in 0..span {
            let r = ((start + k) % self.period) as usize;
            window[r / 64] |= 1u64 << (r % 64);
        }
        let dom = self.dom_mut(s, i);
        let mut changed = false;
        for (d, w) in dom.iter_mut().zip(&window) {
            let next = *d & *w;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    fn closure_bit(&self, class: OpClass, delta: u32) -> bool {
        match self.automaton.forbidden_closure(class) {
            Some(c) => {
                let d = (delta % self.period) as usize;
                c[d / 64] >> (d % 64) & 1 != 0
            }
            None => true, // unknown class: conservative, cannot happen post-build
        }
    }

    /// Propagators 1–2: dependence bounds and congruence sync.
    /// Returns `Ok(false)` on a detected conflict.
    fn bounds_pass(&self, s: &mut CpState) -> Result<bool, bool> {
        let mut changed = false;
        for &(i, j, w) in &self.edges {
            let nl = s.lo[i] + w;
            if nl > s.lo[j] {
                s.lo[j] = nl;
                changed = true;
            }
            let nh = s.hi[j] - w;
            if nh < s.hi[i] {
                s.hi[i] = nh;
                changed = true;
            }
        }
        for i in 0..self.n {
            if s.lo[i] > s.hi[i] {
                return Err(false);
            }
            if s.hi[i] - s.lo[i] + 1 < self.period as i64 {
                changed |= self.restrict_window(s, i);
            }
            if self.dom_count(s, i) == 0 {
                return Err(false);
            }
            // Round lo up / hi down to the nearest allowed residue.
            let mut t = s.lo[i];
            let mut k = 0;
            while k < self.period && !self.dom_test(s, i, modt(t, self.period)) {
                t += 1;
                k += 1;
            }
            if t != s.lo[i] {
                if t > s.hi[i] {
                    return Err(false);
                }
                s.lo[i] = t;
                changed = true;
            }
            let mut t = s.hi[i];
            let mut k = 0;
            while k < self.period && !self.dom_test(s, i, modt(t, self.period)) {
                t -= 1;
                k += 1;
            }
            if t != s.hi[i] {
                if t < s.lo[i] {
                    return Err(false);
                }
                s.hi[i] = t;
                changed = true;
            }
        }
        Ok(changed)
    }

    /// Propagator 3: capacity rows over fixed offsets, with forward
    /// pruning of residues that would overflow a saturated stage-step.
    fn capacity_pass(&self, s: &mut CpState) -> Result<bool, bool> {
        let mut changed = false;
        let t = self.period as usize;
        for ci in &self.classes {
            if ci.stage_offsets.is_empty() {
                continue;
            }
            let mut demand = vec![0u32; ci.stage_offsets.len() * t];
            for &i in &ci.members {
                if let Some(r) = self.dom_fixed(s, i) {
                    for (si, offs) in ci.stage_offsets.iter().enumerate() {
                        for &l in offs {
                            let cell = &mut demand[si * t + ((r + l) % self.period) as usize];
                            *cell += 1;
                            if *cell > ci.count {
                                return Err(false);
                            }
                        }
                    }
                }
            }
            for &i in &ci.members {
                if self.dom_fixed(s, i).is_some() {
                    continue;
                }
                let mut pruned = false;
                for r in 0..self.period {
                    if !self.dom_test(s, i, r) {
                        continue;
                    }
                    'residue: for (si, offs) in ci.stage_offsets.iter().enumerate() {
                        for &l in offs {
                            if demand[si * t + ((r + l) % self.period) as usize] >= ci.count {
                                self.dom_clear(s, i, r);
                                pruned = true;
                                break 'residue;
                            }
                        }
                    }
                }
                if pruned {
                    changed = true;
                    if self.dom_count(s, i) == 0 {
                        return Err(false);
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Propagator 4: hazard/coloring for colored classes.
    fn coloring_pass(&self, s: &mut CpState, scratch: &mut [u64]) -> Result<bool, bool> {
        let mut changed = false;
        for ci in self.classes.iter().filter(|c| c.colored) {
            if self.opts.packing_bound {
                // A unit carries at most `capacity` members; once that
                // many are pinned to it, it is closed to the rest.
                for u in 0..ci.count {
                    let bit = 1u64 << u;
                    let mut pinned = 0u32;
                    for &i in &ci.members {
                        if s.col[i] == bit {
                            pinned += 1;
                        }
                    }
                    if pinned > ci.capacity {
                        return Err(false);
                    }
                    if pinned == ci.capacity {
                        for &i in &ci.members {
                            if s.col[i] != bit && s.col[i] & bit != 0 {
                                s.col[i] &= !bit;
                                changed = true;
                                if s.col[i] == 0 {
                                    return Err(false);
                                }
                            }
                        }
                    }
                }
            }
            for (xi, &i) in ci.members.iter().enumerate() {
                for &j in &ci.members[xi + 1..] {
                    let fi = self.dom_fixed(s, i);
                    let fj = self.dom_fixed(s, j);
                    if let (Some(ri), Some(rj)) = (fi, fj) {
                        // Both offsets fixed: a structural collision at
                        // their separation forces distinct colors.
                        let delta = (ri + self.period - rj) % self.period;
                        if self.closure_bit(ci.class, delta) {
                            if s.col[i].count_ones() == 1 && s.col[j] & s.col[i] != 0 {
                                s.col[j] &= !s.col[i];
                                changed = true;
                                if s.col[j] == 0 {
                                    return Err(false);
                                }
                            }
                            if s.col[j].count_ones() == 1 && s.col[i] & s.col[j] != 0 {
                                s.col[i] &= !s.col[j];
                                changed = true;
                                if s.col[i] == 0 {
                                    return Err(false);
                                }
                            }
                        }
                    } else if s.col[i].count_ones() == 1 && s.col[i] == s.col[j] {
                        // Same unit forced, one offset still open: the
                        // rotated closure mask prunes it word-parallel.
                        let (anchor, open) = match (fi, fj) {
                            (Some(r), None) => (r, j),
                            (None, Some(r)) => (r, i),
                            _ => continue,
                        };
                        scratch.fill(0);
                        self.automaton.or_forbidden_from(ci.class, anchor, scratch);
                        if self.dom_subtract(s, open, scratch) {
                            changed = true;
                            if self.dom_count(s, open) == 0 {
                                return Err(false);
                            }
                        }
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Propagator 5: issue-bundle width and slot-group caps. Counts
    /// fixed offsets per residue against each row's cap (the CP
    /// analogue of the ILP's `Σ_i a_{ρ,i} ≤ W` rows), then prunes
    /// saturated residues from the still-open members.
    fn bundle_pass(&self, s: &mut CpState) -> Result<bool, bool> {
        let Some(b) = &self.bundle else {
            return Ok(false);
        };
        let mut changed = self.bundle_row(s, b.width, &b.all)?;
        for (cap, members) in &b.groups {
            changed |= self.bundle_row(s, *cap, members)?;
        }
        Ok(changed)
    }

    fn bundle_row(&self, s: &mut CpState, cap: u32, members: &[usize]) -> Result<bool, bool> {
        let mut counts = vec![0u32; self.period as usize];
        let mut changed = false;
        for &i in members {
            if let Some(r) = self.dom_fixed(s, i) {
                let c = &mut counts[r as usize];
                *c += 1;
                if *c > cap {
                    return Err(false);
                }
            }
        }
        for &i in members {
            if self.dom_fixed(s, i).is_some() {
                continue;
            }
            let mut pruned = false;
            for r in 0..self.period {
                if counts[r as usize] >= cap && self.dom_test(s, i, r) {
                    self.dom_clear(s, i, r);
                    pruned = true;
                }
            }
            if pruned {
                changed = true;
                if self.dom_count(s, i) == 0 {
                    return Err(false);
                }
            }
        }
        Ok(changed)
    }

    /// Propagator 6: register-pressure census. For each node with a
    /// fixed offset, a sound lower bound on its live range from the
    /// current boxes is `max_j (lo_j + T·m − hi_i)` (the `t` terms
    /// cancel on self-loops, leaving `T·m`); summing each node's
    /// `⌈(L_lb − δ)/T⌉` contribution per residue and comparing against
    /// the cap detects dead ends early. Pure conflict detection — it
    /// never narrows a domain, so it reports no change. Exactness comes
    /// from the time branching tier: at a leaf every edge-incident time
    /// is pinned (`lo == hi`), making the bound the true census.
    fn pressure_pass(&self, s: &CpState) -> Result<bool, bool> {
        let Some(ml) = self.opts.max_live else {
            return Ok(false);
        };
        let t = self.period as i64;
        let mut per_rho = vec![0u64; self.period as usize];
        for (i, outs) in self.outs.iter().enumerate() {
            if outs.is_empty() {
                continue;
            }
            let Some(r) = self.dom_fixed(s, i) else {
                continue;
            };
            let mut l = 0i64;
            for &(j, tm) in outs {
                let lb = if j == i { tm } else { s.lo[j] + tm - s.hi[i] };
                l = l.max(lb);
            }
            if l <= 0 {
                continue;
            }
            for rho in 0..t {
                let delta = (rho - i64::from(r)).rem_euclid(t);
                let instances = (l - delta + t - 1).div_euclid(t).max(0);
                per_rho[rho as usize] += instances as u64;
            }
        }
        if per_rho.iter().any(|&c| c > u64::from(ml)) {
            return Err(false);
        }
        Ok(false)
    }
}

/// Exact pressure census of the witness `t = lo` at a search leaf.
/// Sound to decide here: with the time tier exhausted, every
/// edge-incident node has exactly one residue-consistent time left in
/// its box, so `lo` *is* the only extension — mirror of
/// [`swp_machine::PipelinedSchedule::live_per_residue`].
fn leaf_pressure_ok(m: &CpModel, s: &CpState) -> bool {
    let Some(ml) = m.opts.max_live else {
        return true;
    };
    let t = m.period as i64;
    let mut per_rho = vec![0u64; m.period as usize];
    for (i, outs) in m.outs.iter().enumerate() {
        if outs.is_empty() {
            continue;
        }
        let ti = s.lo[i];
        let mut l = 0i64;
        for &(j, tm) in outs {
            let span = if j == i { tm } else { s.lo[j] + tm - ti };
            l = l.max(span);
        }
        if l <= 0 {
            continue;
        }
        let off = ti.rem_euclid(t);
        for rho in 0..t {
            let delta = (rho - off).rem_euclid(t);
            let instances = (l - delta + t - 1).div_euclid(t).max(0);
            per_rho[rho as usize] += instances as u64;
        }
    }
    per_rho.iter().all(|&c| c <= u64::from(ml))
}

/// Runs all propagators to a fixpoint. `Ok(true)` means consistent,
/// `Ok(false)` means a conflict was derived.
fn propagate(
    m: &CpModel,
    s: &mut CpState,
    budget: &Budget,
    stats: &mut CpStats,
) -> Result<bool, CpError> {
    let mut scratch = vec![0u64; m.words];
    loop {
        spend(budget)?;
        stats.passes += 1;
        let mut changed = false;
        match m.bounds_pass(s) {
            Ok(c) => changed |= c,
            Err(_) => return Ok(false),
        }
        match m.capacity_pass(s) {
            Ok(c) => changed |= c,
            Err(_) => return Ok(false),
        }
        match m.bundle_pass(s) {
            Ok(c) => changed |= c,
            Err(_) => return Ok(false),
        }
        match m.coloring_pass(s, &mut scratch) {
            Ok(c) => changed |= c,
            Err(_) => return Ok(false),
        }
        match m.pressure_pass(s) {
            Ok(c) => changed |= c,
            Err(_) => return Ok(false),
        }
        if !changed {
            return Ok(true);
        }
    }
}

/// A branching variable: an offset domain, a color mask, or — only
/// under a pressure cap — an exact start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Var {
    Off(usize),
    Col(usize),
    Time(usize),
}

const COL_TAG: u32 = 1 << 31;
const TIME_TAG: u32 = 1 << 30;

fn encode(v: Var) -> u32 {
    match v {
        Var::Off(i) => i as u32,
        Var::Col(i) => i as u32 | COL_TAG,
        Var::Time(i) => i as u32 | TIME_TAG,
    }
}

/// Smallest-domain-first over offsets, then colors, then (under a
/// pressure cap) start times; ties break on the lowest node index so
/// the search is deterministic.
fn pick_var(m: &CpModel, s: &CpState) -> Option<Var> {
    let mut best: Option<(u32, usize)> = None;
    for i in 0..m.n {
        let c = m.dom_count(s, i);
        if c >= 2 && best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, i));
        }
    }
    if let Some((_, i)) = best {
        return Some(Var::Off(i));
    }
    let mut best: Option<(u32, usize)> = None;
    for i in 0..m.n {
        if !m.colored[i] {
            continue;
        }
        let c = s.col[i].count_ones();
        if c >= 2 && best.is_none_or(|(bc, _)| c < bc) {
            best = Some((c, i));
        }
    }
    if let Some((_, i)) = best {
        return Some(Var::Col(i));
    }
    if m.opts.max_live.is_some() {
        // All offsets are singletons here, and bounds_pass has rounded
        // `lo`/`hi` onto the allowed residue, so the residue-consistent
        // times left in a box are exactly lo, lo+T, …, hi.
        let t = i64::from(m.period);
        let mut best: Option<(i64, usize)> = None;
        for i in 0..m.n {
            if !m.time_relevant[i] {
                continue;
            }
            let c = (s.hi[i] - s.lo[i]) / t + 1;
            if c >= 2 && best.is_none_or(|(bc, _)| c < bc) {
                best = Some((c, i));
            }
        }
        if let Some((_, i)) = best {
            return Some(Var::Time(i));
        }
    }
    None
}

fn candidate_values(m: &CpModel, s: &CpState, v: Var) -> Vec<u32> {
    match v {
        Var::Off(i) => (0..m.period).filter(|&r| m.dom_test(s, i, r)).collect(),
        Var::Col(i) => (0..64).filter(|&u| s.col[i] >> u & 1 != 0).collect(),
        Var::Time(i) => (s.lo[i]..=s.hi[i])
            .step_by(m.period as usize)
            .map(|t| t as u32)
            .collect(),
    }
}

fn assign(m: &CpModel, s: &mut CpState, v: Var, val: u32) {
    match v {
        Var::Off(i) => {
            let dom = m.dom_mut(s, i);
            dom.fill(0);
            dom[(val / 64) as usize] = 1u64 << (val % 64);
        }
        Var::Col(i) => s.col[i] = 1u64 << val,
        Var::Time(i) => {
            s.lo[i] = i64::from(val);
            s.hi[i] = i64::from(val);
        }
    }
}

/// A persistable no-good store for warm re-solves at the **same period**.
///
/// No-goods are refuted decision prefixes: "under the root constraints,
/// no solution extends this partial assignment". A clause learned for
/// instance `I` stays valid for any instance whose root solution set is
/// a **subset** of `I`'s — i.e. after constraint-*adding* edits (an edge
/// added, or a node appended so existing node indices are stable). The
/// caller owns that monotonicity judgement: replay only across
/// tightening edits, [`NoGoodStore::clear`] on anything else. The store
/// self-invalidates when the period changes, since literals encode
/// residues modulo the period.
#[derive(Default)]
pub struct NoGoodStore {
    ng: NoGoods,
    period: Option<u32>,
}

impl NoGoodStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clauses currently held.
    pub fn len(&self) -> usize {
        self.ng.clauses.len()
    }

    /// Whether the store holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.ng.clauses.is_empty()
    }

    /// The period the clauses were learned at, if any.
    pub fn period(&self) -> Option<u32> {
        self.period
    }

    /// Drops every clause (required after a constraint-removing edit or
    /// any edit that renumbers nodes).
    pub fn clear(&mut self) {
        self.ng = NoGoods::default();
        self.period = None;
    }
}

/// Refuted decision prefixes, indexed by literal for cheap lookup.
#[derive(Default)]
struct NoGoods {
    clauses: Vec<Vec<(u32, u32)>>,
    by_lit: HashMap<(u32, u32), Vec<usize>>,
    seen: HashSet<Vec<(u32, u32)>>,
}

impl NoGoods {
    /// Would taking `lit` on top of `set` complete a recorded no-good?
    fn blocks(&self, lit: (u32, u32), set: &HashSet<(u32, u32)>) -> bool {
        if let Some(idxs) = self.by_lit.get(&lit) {
            'clause: for &ci in idxs {
                for l in &self.clauses[ci] {
                    if *l != lit && !set.contains(l) {
                        continue 'clause;
                    }
                }
                return true;
            }
        }
        false
    }

    fn record(&mut self, decisions: &[(u32, u32)], stats: &mut CpStats) {
        if decisions.is_empty()
            || decisions.len() > MAX_NOGOOD_LEN
            || self.clauses.len() >= MAX_NOGOODS
        {
            return;
        }
        let mut clause = decisions.to_vec();
        clause.sort_unstable();
        if !self.seen.insert(clause.clone()) {
            return;
        }
        let idx = self.clauses.len();
        for &l in &clause {
            self.by_lit.entry(l).or_default().push(idx);
        }
        self.clauses.push(clause);
        stats.nogoods_recorded += 1;
    }
}

fn extract(m: &CpModel, s: &CpState) -> (Vec<u32>, Vec<Option<u32>>) {
    let starts = s.lo.iter().map(|&t| t as u32).collect();
    let units = (0..m.n)
        .map(|i| m.colored[i].then(|| s.col[i].trailing_zeros()))
        .collect();
    (starts, units)
}

#[allow(clippy::too_many_arguments)]
fn search(
    m: &CpModel,
    s: &CpState,
    budget: &Budget,
    stats: &mut CpStats,
    nogoods: &mut NoGoods,
    decisions: &mut Vec<(u32, u32)>,
    decision_set: &mut HashSet<(u32, u32)>,
) -> Result<Option<(Vec<u32>, Vec<Option<u32>>)>, CpError> {
    spend(budget)?;
    stats.nodes += 1;
    let Some(var) = pick_var(m, s) else {
        if !leaf_pressure_ok(m, s) {
            stats.conflicts += 1;
            return Ok(None);
        }
        return Ok(Some(extract(m, s)));
    };
    for val in candidate_values(m, s, var) {
        let lit = (encode(var), val);
        if nogoods.blocks(lit, decision_set) {
            stats.nogoods_hit += 1;
            continue;
        }
        let mut child = s.clone();
        assign(m, &mut child, var, val);
        decisions.push(lit);
        decision_set.insert(lit);
        let outcome = match propagate(m, &mut child, budget, stats) {
            Ok(true) => search(m, &child, budget, stats, nogoods, decisions, decision_set),
            Ok(false) => {
                stats.conflicts += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        };
        decisions.pop();
        decision_set.remove(&lit);
        match outcome {
            Ok(Some(sol)) => return Ok(Some(sol)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
    }
    // Every value of this variable is refuted under the current prefix,
    // so the prefix itself is a no-good (sound for this solve: the root
    // state is fixed and all propagators are sound).
    nogoods.record(decisions, stats);
    Ok(None)
}

/// Decides schedulability of `ddg` on `machine` at period `period`,
/// under the unified-coloring mapping mode (the only mode the CP model
/// implements; the driver falls back to the ILP for others).
///
/// Returns the verdict and search statistics, or a [`CpError`] if the
/// budget ran out or the instance is outside the model's shape.
///
/// # Errors
///
/// [`CpError::UnknownClass`] if the DDG uses a class the machine does
/// not define; [`CpError::Exhausted`] on deadline/tick/cancellation;
/// [`CpError::TooManyUnits`] for colored classes wider than
/// [`MAX_COLORED_UNITS`].
///
/// # Panics
///
/// Panics if `period == 0`.
pub fn solve_at(
    ddg: &Ddg,
    machine: &Machine,
    period: u32,
    options: CpOptions,
    budget: &Budget,
) -> Result<(CpOutcome, CpStats), CpError> {
    let mut fresh = NoGoodStore::new();
    solve_at_warm(ddg, machine, period, options, budget, &mut fresh)
}

/// [`solve_at`] with a caller-owned [`NoGoodStore`]: clauses learned in
/// this solve are appended to the store, and clauses already present are
/// replayed (counted in [`CpStats::nogoods_replayed`]).
///
/// If the store was filled at a different period it is cleared first —
/// residue literals do not transfer across periods. Replay across
/// *edits* is sound only for constraint-adding edits with stable node
/// indices; see [`NoGoodStore`].
///
/// # Errors
///
/// As [`solve_at`].
///
/// # Panics
///
/// Panics if `period == 0`.
pub fn solve_at_warm(
    ddg: &Ddg,
    machine: &Machine,
    period: u32,
    options: CpOptions,
    budget: &Budget,
    store: &mut NoGoodStore,
) -> Result<(CpOutcome, CpStats), CpError> {
    assert!(period > 0, "period must be positive");
    if store.period != Some(period) {
        store.clear();
        store.period = Some(period);
    }
    let mut stats = CpStats {
        nogoods_replayed: store.len() as u64,
        ..CpStats::default()
    };
    let n = ddg.num_nodes();
    if n == 0 {
        return Ok((
            CpOutcome::Feasible {
                starts: Vec::new(),
                units: Vec::new(),
            },
            stats,
        ));
    }

    // Root rejections, in the ILP's order so mixed failure modes (e.g.
    // unknown class + infeasible self-loop) classify identically.
    let Some(earliest) = ddg.earliest_starts(period) else {
        return Ok((CpOutcome::Infeasible, stats));
    };
    let mut edges = Vec::with_capacity(ddg.num_edges());
    for e in ddg.edges() {
        let w = ddg.node(e.src).latency as i64 - period as i64 * e.distance as i64;
        if e.src == e.dst {
            if w > 0 {
                return Ok((CpOutcome::Infeasible, stats));
            }
            continue;
        }
        edges.push((e.src.index(), e.dst.index(), w));
    }

    let automaton = HazardAutomaton::for_machine(machine, period);
    let mut classes = Vec::new();
    let mut colored = vec![false; n];
    for class in ddg.classes() {
        let fu = machine
            .fu_type(class)
            .map_err(|_| CpError::UnknownClass(class))?;
        let members: Vec<usize> = ddg
            .nodes_of_class(class)
            .into_iter()
            .map(|id| id.index())
            .collect();
        let rt = &fu.reservation;
        if !rt.modulo_feasible(period) {
            return Ok((CpOutcome::Infeasible, stats));
        }
        if options.packing_bound && members.len() as u32 > fu.count * rt.max_ops_per_period(period)
        {
            return Ok((CpOutcome::Infeasible, stats));
        }
        let is_colored = fu.count >= 2 && members.len() >= 2 && !rt.is_clean();
        if is_colored && fu.count > MAX_COLORED_UNITS {
            return Err(CpError::TooManyUnits {
                class,
                count: fu.count,
            });
        }
        if is_colored {
            for &i in &members {
                colored[i] = true;
            }
        }
        let stage_offsets: Vec<Vec<u32>> = (0..rt.stages())
            .map(|s| rt.stage_offsets(s).into_iter().map(|l| l as u32).collect())
            .filter(|offs: &Vec<u32>| !offs.is_empty())
            .collect();
        classes.push(ClassInfo {
            class,
            count: fu.count,
            colored: is_colored,
            capacity: automaton.max_ops_per_unit(class).unwrap_or(1),
            stage_offsets,
            members,
        });
    }

    // Bundle root pigeonholes, in the ILP's position (after the
    // per-class rejections) and order (width first, then each group).
    let group_members = |g: &swp_machine::SlotGroup| -> Vec<usize> {
        g.classes
            .iter()
            .flat_map(|&c| ddg.nodes_of_class(OpClass::new(c)))
            .map(|id| id.index())
            .collect()
    };
    if let Some(b) = machine.bundle() {
        if options.packing_bound {
            if n as u64 > u64::from(b.width) * u64::from(period) {
                return Ok((CpOutcome::Infeasible, stats));
            }
            for g in &b.groups {
                if group_members(g).len() as u64 > u64::from(g.cap) * u64::from(period) {
                    return Ok((CpOutcome::Infeasible, stats));
                }
            }
        }
    }
    let bundle = machine.bundle().map(|b| CpBundle {
        width: b.width,
        all: (0..n).collect(),
        groups: b.groups.iter().map(|g| (g.cap, group_members(g))).collect(),
    });

    let mut outs: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    let mut time_relevant = vec![false; n];
    if options.max_live.is_some() {
        for e in ddg.edges() {
            outs[e.src.index()].push((e.dst.index(), i64::from(period) * i64::from(e.distance)));
            if e.src != e.dst {
                time_relevant[e.src.index()] = true;
                time_relevant[e.dst.index()] = true;
            }
        }
    }

    let words = words_for(period);
    let horizon = (ddg.total_latency() + 2 * period) as i64;
    let model = CpModel {
        period,
        words,
        n,
        classes,
        edges,
        automaton,
        colored: colored.clone(),
        bundle,
        outs,
        time_relevant,
        opts: options,
    };

    // Full offset domains: all residues `0..T`.
    let mut full = vec![u64::MAX; words];
    if period as usize % 64 != 0 {
        full[words - 1] = (1u64 << (period % 64)) - 1;
    }
    let mut state = CpState {
        lo: earliest.iter().map(|&e| e.max(0)).collect(),
        hi: vec![horizon; n],
        dom: (0..n).flat_map(|_| full.iter().copied()).collect(),
        col: (0..n)
            .map(|i| {
                if colored[i] {
                    let count = model.classes[..]
                        .iter()
                        .find(|c| c.members.contains(&i))
                        .map_or(1, |c| c.count);
                    if count >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << count) - 1
                    }
                } else {
                    0
                }
            })
            .collect(),
    };

    if options.symmetry_breaking {
        // Rotation symmetry: pin node 0 to pattern step 0.
        let dom = model.dom_mut(&mut state, 0);
        dom.fill(0);
        dom[0] = 1;
        // Color symmetry: first member of each colored class to color 0.
        for ci in model.classes.iter().filter(|c| c.colored) {
            if let Some(&first) = ci.members.first() {
                state.col[first] = 1;
            }
        }
    }

    if !propagate(&model, &mut state, budget, &mut stats)? {
        return Ok((CpOutcome::Infeasible, stats));
    }
    let mut decisions = Vec::new();
    let mut decision_set = HashSet::new();
    match search(
        &model,
        &state,
        budget,
        &mut stats,
        &mut store.ng,
        &mut decisions,
        &mut decision_set,
    )? {
        Some((starts, units)) => Ok((CpOutcome::Feasible { starts, units }, stats)),
        None => Ok((CpOutcome::Infeasible, stats)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::Ddg;
    use swp_machine::checker::{check_fixed_assignment, PlacedOp};
    use swp_machine::{FuType, ReservationTable};

    fn solve(ddg: &Ddg, machine: &Machine, period: u32) -> Result<(CpOutcome, CpStats), CpError> {
        solve_at(
            ddg,
            machine,
            period,
            CpOptions::default(),
            &Budget::unlimited(),
        )
    }

    /// First-fits units for unmapped ops (sound for clean or count-1
    /// classes, which is all the CP leaves unmapped), then runs the
    /// exact cycle-accurate checker.
    fn assert_schedule_valid(
        machine: &Machine,
        period: u32,
        ddg: &Ddg,
        starts: &[u32],
        units: &[Option<u32>],
    ) {
        let mut ops: Vec<PlacedOp> = ddg
            .nodes()
            .map(|(id, node)| PlacedOp {
                class: node.class,
                offset: starts[id.index()] % period,
                fu: units[id.index()],
            })
            .collect();
        let mut usage: HashSet<(usize, u32, usize, u32)> = HashSet::new();
        for op in ops.iter().filter(|o| o.fu.is_some()) {
            let rt = &machine.fu_type(op.class).expect("class").reservation;
            for s in 0..rt.stages() {
                for l in rt.stage_offsets(s) {
                    usage.insert((
                        op.class.index(),
                        op.fu.expect("mapped"),
                        s,
                        (op.offset + l as u32) % period,
                    ));
                }
            }
        }
        for op in ops.iter_mut().filter(|o| o.fu.is_none()) {
            let fu_type = machine.fu_type(op.class).expect("class");
            let rt = &fu_type.reservation;
            let unit = (0..fu_type.count)
                .find(|&fu| {
                    (0..rt.stages()).all(|s| {
                        rt.stage_offsets(s).iter().all(|&l| {
                            !usage.contains(&(
                                op.class.index(),
                                fu,
                                s,
                                (op.offset + l as u32) % period,
                            ))
                        })
                    })
                })
                .expect("first-fit completion must succeed for uncolored classes");
            op.fu = Some(unit);
            for s in 0..rt.stages() {
                for l in rt.stage_offsets(s) {
                    usage.insert((op.class.index(), unit, s, (op.offset + l as u32) % period));
                }
            }
        }
        check_fixed_assignment(machine, period, &ops).expect("schedule must pass exact checker");
        // Dependences.
        for e in ddg.edges() {
            let d = ddg.node(e.src).latency as i64;
            let lhs = starts[e.dst.index()] as i64 - starts[e.src.index()] as i64;
            assert!(
                e.src == e.dst || lhs >= d - (period as i64) * e.distance as i64,
                "dependence violated"
            );
        }
    }

    fn paper_ddg() -> Ddg {
        // A small FP/Int/LdSt mix with a recurrence, exercising the
        // unclean FP pipeline of `example_pldi95`.
        let mut ddg = Ddg::new();
        let ld = ddg.add_node("ld", OpClass::new(2), 3);
        let f1 = ddg.add_node("f1", OpClass::new(1), 2);
        let f2 = ddg.add_node("f2", OpClass::new(1), 2);
        let add = ddg.add_node("add", OpClass::new(0), 1);
        ddg.add_edge(ld, f1, 0).expect("edge");
        ddg.add_edge(f1, f2, 0).expect("edge");
        ddg.add_edge(f2, add, 0).expect("edge");
        ddg.add_edge(f2, f1, 1).expect("edge");
        ddg
    }

    #[test]
    fn feasible_schedule_passes_exact_checker() {
        let machine = Machine::example_pldi95();
        let ddg = paper_ddg();
        let mut found = None;
        for t in 1..=12 {
            match solve(&ddg, &machine, t).expect("unlimited budget") {
                (CpOutcome::Feasible { starts, units }, _) => {
                    found = Some((t, starts, units));
                    break;
                }
                (CpOutcome::Infeasible, _) => {}
            }
        }
        let (t, starts, units) = found.expect("some period in 1..=12 must be feasible");
        assert_schedule_valid(&machine, t, &ddg, &starts, &units);
    }

    #[test]
    fn refutes_below_resource_bound() {
        // Two non-pipelined d=2 ops on a single unit need T >= 4.
        let machine = Machine::new(vec![FuType {
            name: "NP".into(),
            count: 1,
            latency: 2,
            reservation: ReservationTable::non_pipelined(2),
        }])
        .expect("machine");
        let mut ddg = Ddg::new();
        ddg.add_node("a", OpClass::new(0), 2);
        ddg.add_node("b", OpClass::new(0), 2);
        for t in 1..4 {
            let (outcome, _) = solve(&ddg, &machine, t).expect("unlimited budget");
            assert_eq!(outcome, CpOutcome::Infeasible, "T={t} must refute");
        }
        let (outcome, _) = solve(&ddg, &machine, 4).expect("unlimited budget");
        let CpOutcome::Feasible { starts, units } = outcome else {
            panic!("T=4 must be feasible");
        };
        assert_schedule_valid(&machine, 4, &ddg, &starts, &units);
    }

    #[test]
    fn self_loop_bounds_period() {
        let machine = Machine::example_clean();
        let mut ddg = Ddg::new();
        let n = ddg.add_node("x", OpClass::new(2), 3);
        ddg.add_edge(n, n, 1).expect("edge");
        // Self-loop: 0 >= 3 - T, so T >= 3.
        let (outcome, _) = solve(&ddg, &machine, 2).expect("unlimited budget");
        assert_eq!(outcome, CpOutcome::Infeasible);
        let (outcome, _) = solve(&ddg, &machine, 3).expect("unlimited budget");
        assert!(matches!(outcome, CpOutcome::Feasible { .. }));
    }

    #[test]
    fn colored_members_get_distinct_units_when_colliding() {
        // Two FP ops (count=2, unclean) forced to the same residue: the
        // FP table self-collides at delta 0, so they must split units.
        let machine = Machine::example_pldi95();
        let mut ddg = Ddg::new();
        let a = ddg.add_node("a", OpClass::new(1), 2);
        let b = ddg.add_node("b", OpClass::new(1), 2);
        // t_b - t_a >= 4 - 1*4 = 0 and t_a - t_b >= 4 - 1*4 = 0 at T=4
        // leaves offsets free; pick a case where both land at residue 0
        // via symmetry + propagation is not forced, so just check the
        // returned mapping is checker-valid at the first feasible T.
        ddg.add_edge(a, b, 0).expect("edge");
        for t in 1..=8 {
            if let (CpOutcome::Feasible { starts, units }, _) =
                solve(&ddg, &machine, t).expect("unlimited budget")
            {
                assert!(units[a.index()].is_some() && units[b.index()].is_some());
                assert_schedule_valid(&machine, t, &ddg, &starts, &units);
                return;
            }
        }
        panic!("no feasible period found");
    }

    #[test]
    fn budget_ticks_and_cancellation_stop_the_search() {
        let machine = Machine::example_pldi95();
        let ddg = paper_ddg();
        let tiny = Budget::unlimited().limit_ticks(3);
        let err = solve_at(&ddg, &machine, 6, CpOptions::default(), &tiny)
            .expect_err("3 ticks cannot finish");
        assert_eq!(err, CpError::Exhausted(Exhaustion::Ticks));

        let budget = Budget::unlimited();
        let token = budget.cancel_token();
        token.cancel();
        let err = solve_at(&ddg, &machine, 6, CpOptions::default(), &budget)
            .expect_err("cancelled before start");
        assert_eq!(err, CpError::Exhausted(Exhaustion::Cancelled));
    }

    #[test]
    fn symmetry_pins_node_zero_to_step_zero() {
        let machine = Machine::example_pldi95();
        let ddg = paper_ddg();
        for t in 1..=12 {
            if let (CpOutcome::Feasible { starts, .. }, _) =
                solve(&ddg, &machine, t).expect("unlimited budget")
            {
                assert_eq!(starts[0] % t, 0, "node 0 must sit at pattern step 0");
                return;
            }
        }
        panic!("no feasible period found");
    }

    #[test]
    fn verdicts_and_stats_are_deterministic() {
        let machine = Machine::example_pldi95();
        let ddg = paper_ddg();
        for t in 2..=8 {
            let a = solve(&ddg, &machine, t).expect("unlimited budget");
            let b = solve(&ddg, &machine, t).expect("unlimited budget");
            assert_eq!(a, b, "T={t} must be deterministic");
        }
    }

    #[test]
    fn symmetry_off_agrees_on_feasibility() {
        let machine = Machine::example_pldi95();
        let ddg = paper_ddg();
        let plain = CpOptions {
            symmetry_breaking: false,
            packing_bound: false,
            max_live: None,
        };
        for t in 2..=8 {
            let with = solve(&ddg, &machine, t).expect("unlimited budget").0;
            let without = solve_at(&ddg, &machine, t, plain, &Budget::unlimited())
                .expect("unlimited budget")
                .0;
            assert_eq!(
                matches!(with, CpOutcome::Feasible { .. }),
                matches!(without, CpOutcome::Feasible { .. }),
                "symmetry/packing must be feasibility-preserving at T={t}"
            );
        }
    }

    #[test]
    fn bundle_width_bounds_the_period() {
        use swp_machine::BundleSpec;
        // Width-1 bundle: one issue per cycle, so 2 ops need T >= 2
        // regardless of unit counts.
        let machine = Machine::example_clean()
            .with_bundle(BundleSpec::width(1))
            .expect("bundle");
        let mut ddg = Ddg::new();
        ddg.add_node("a", OpClass::new(0), 1);
        ddg.add_node("b", OpClass::new(0), 1);
        let (outcome, _) = solve(&ddg, &machine, 1).expect("unlimited budget");
        assert_eq!(outcome, CpOutcome::Infeasible, "T=1 overflows the bundle");
        let (outcome, _) = solve(&ddg, &machine, 2).expect("unlimited budget");
        let CpOutcome::Feasible { starts, .. } = outcome else {
            panic!("T=2 must be feasible");
        };
        assert_ne!(starts[0] % 2, starts[1] % 2, "issues must split residues");
        // The pigeonhole pre-check off: the propagator must still refute.
        let plain = CpOptions {
            packing_bound: false,
            ..CpOptions::default()
        };
        let (outcome, _) =
            solve_at(&ddg, &machine, 1, plain, &Budget::unlimited()).expect("unlimited budget");
        assert_eq!(outcome, CpOutcome::Infeasible);
    }

    #[test]
    fn slot_group_cap_bounds_the_period() {
        // example_vliw: width 2, "mem" slot (class 2) capped at 1.
        let machine = Machine::example_vliw();
        let mut ddg = Ddg::new();
        ddg.add_node("ld1", OpClass::new(2), 3);
        ddg.add_node("ld2", OpClass::new(2), 3);
        let (outcome, _) = solve(&ddg, &machine, 1).expect("unlimited budget");
        assert_eq!(outcome, CpOutcome::Infeasible, "two mem ops, one mem slot");
        let (outcome, _) = solve(&ddg, &machine, 2).expect("unlimited budget");
        assert!(matches!(outcome, CpOutcome::Feasible { .. }));
    }

    #[test]
    fn pressure_cap_forces_a_longer_period() {
        // a (latency 3) -> b: the value of `a` is live >= 3 cycles, so
        // at T=2 it overlaps itself (2 instances at a's residue) and a
        // cap of 1 refutes; at T=3 placing b exactly T cycles after a
        // keeps one instance per residue — that needs both ops at the
        // same residue, hence the 2-unit FP class.
        let machine = Machine::example_clean();
        let mut ddg = Ddg::new();
        let a = ddg.add_node("a", OpClass::new(1), 3);
        let b = ddg.add_node("b", OpClass::new(1), 1);
        ddg.add_edge(a, b, 0).expect("edge");
        let capped = CpOptions {
            max_live: Some(1),
            ..CpOptions::default()
        };
        let (outcome, _) =
            solve_at(&ddg, &machine, 2, capped, &Budget::unlimited()).expect("unlimited budget");
        assert_eq!(outcome, CpOutcome::Infeasible, "T=2 needs 2 live instances");
        // Without the cap T=2 is fine — the refutation is pressure-only.
        let (outcome, _) = solve(&ddg, &machine, 2).expect("unlimited budget");
        assert!(matches!(outcome, CpOutcome::Feasible { .. }));
        let (outcome, _) =
            solve_at(&ddg, &machine, 3, capped, &Budget::unlimited()).expect("unlimited budget");
        let CpOutcome::Feasible { starts, .. } = outcome else {
            panic!("T=3 must be feasible under the cap");
        };
        let sched = swp_machine::PipelinedSchedule::new(3, starts, vec![None; 2]);
        sched
            .validate_pressure(&ddg, 1)
            .expect("CP witness must meet the cap it was solved under");
    }

    #[test]
    fn unknown_class_is_an_error() {
        let machine = Machine::example_pldi95();
        let mut ddg = Ddg::new();
        ddg.add_node("z", OpClass::new(9), 1);
        let err = solve(&ddg, &machine, 4).expect_err("class 9 undefined");
        assert_eq!(err, CpError::UnknownClass(OpClass::new(9)));
    }

    #[test]
    fn empty_ddg_is_trivially_feasible() {
        let machine = Machine::example_pldi95();
        let ddg = Ddg::new();
        let (outcome, _) = solve(&ddg, &machine, 1).expect("unlimited budget");
        assert_eq!(
            outcome,
            CpOutcome::Feasible {
                starts: Vec::new(),
                units: Vec::new()
            }
        );
    }
}
