//! A minimal, dependency-free JSON subset for the artifact format.
//!
//! The JSONL artifact holds one *flat* object per line — string, number,
//! boolean, and null values only, no nesting — so a full JSON library is
//! unnecessary (and unavailable offline). This module provides exactly
//! that subset: an escaping writer and a strict single-object parser.
//! Anything outside the subset (nested objects, arrays) is a parse
//! error, which the cache loader treats as a corrupt line to skip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar JSON value. Numbers keep their raw text so integer
/// precision is never laundered through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (unescaped).
    Str(String),
    /// A number, as written.
    Num(String),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Incrementally builds one flat JSON object in insertion order.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    buf: String,
    fields: usize,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter {
            buf: String::from("{"),
            fields: 0,
        }
    }

    fn key(&mut self, key: &str) {
        if self.fields > 0 {
            self.buf.push(',');
        }
        self.fields += 1;
        write_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends an optional unsigned integer field (`null` when absent).
    pub fn opt_u64(&mut self, key: &str, value: Option<u64>) -> &mut Self {
        match value {
            Some(v) => self.u64(key, v),
            None => self.null(key),
        }
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a `null` field.
    pub fn null(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str("null");
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat JSON object into its fields.
///
/// # Errors
///
/// A human-readable description of the first syntax problem — truncated
/// input, a non-scalar value, trailing garbage, a bad escape.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(map)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogates outside the BMP are not produced by our
                        // writer; reject rather than mis-decode.
                        let c = char::from_u32(code).ok_or("\\u escape is a surrogate")?;
                        out.push(c);
                        self.pos = end;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => {
                    // Re-borrow as UTF-8: step back and take the full char.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let s = std::str::from_utf8(&self.bytes[start..])
                            .map_err(|_| "invalid UTF-8 in string")?;
                        let c = s.chars().next().ok_or("empty char")?;
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number bytes")?;
                // Validate now so `as_u64`/`as_f64` can't surprise later.
                raw.parse::<f64>().map_err(|_| "malformed number")?;
                Ok(JsonValue::Num(raw.to_string()))
            }
            Some(b'{' | b'[') => Err("nested values are outside the artifact subset".into()),
            other => Err(format!("unexpected {other:?} at value position")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_round_trip() {
        let mut w = ObjectWriter::new();
        w.str("name", "loop\"x\"\n")
            .u64("n", 42)
            .opt_u64("period", None)
            .opt_u64("slack", Some(3))
            .bool("ok", true);
        let line = w.finish();
        let m = parse_object(&line).expect("round trip");
        assert_eq!(m["name"].as_str(), Some("loop\"x\"\n"));
        assert_eq!(m["n"].as_u64(), Some(42));
        assert!(m["period"].is_null());
        assert_eq!(m["slack"].as_u64(), Some(3));
        assert_eq!(m["ok"].as_bool(), Some(true));
    }

    #[test]
    fn big_integers_keep_precision() {
        let mut w = ObjectWriter::new();
        w.u64("ticks", u64::MAX);
        let m = parse_object(&w.finish()).expect("parse");
        assert_eq!(m["ticks"].as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_truncation_nesting_and_garbage() {
        assert!(parse_object("{\"a\":1").is_err());
        assert!(parse_object("{\"a\":{}}").is_err());
        assert!(parse_object("{\"a\":[1]}").is_err());
        assert!(parse_object("{\"a\":1}x").is_err());
        assert!(parse_object("{\"a\":tru}").is_err());
        assert!(parse_object("not json at all").is_err());
        assert!(parse_object("").is_err());
    }

    #[test]
    fn empty_object_and_unicode_ok() {
        assert!(parse_object("{}").expect("empty").is_empty());
        let mut w = ObjectWriter::new();
        w.str("s", "λοοπ—π");
        let m = parse_object(&w.finish()).expect("unicode");
        assert_eq!(m["s"].as_str(), Some("λοοπ—π"));
    }
}
