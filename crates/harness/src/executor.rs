//! A small hand-rolled work-stealing thread pool for corpus sharding.
//!
//! The corpus is a fixed list of independent jobs known up front, so the
//! pool is deliberately simple: every worker owns a deque seeded with a
//! stripe of the job indices, pops its own work LIFO, and steals FIFO
//! from a sibling when it runs dry. Because jobs never re-enter a deque,
//! a worker that finds every deque empty can simply exit — no condition
//! variables, no spinning.
//!
//! Striped seeding (`worker w` gets jobs `w, w+W, w+2W, …`) spreads the
//! corpus's hard-loop tail across workers instead of handing one worker
//! a contiguous block of expensive loops; stealing FIFO takes the
//! *oldest* job of the victim's stripe, which is the one the victim
//! would reach last.
//!
//! Results are written into per-index slots, so the output order is the
//! job-index order **regardless of completion order** — this is what
//! makes a parallel corpus run's record sequence identical to the
//! sequential one.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `f` over the job indices `0..n` on `workers` threads and
/// returns the results in index order.
///
/// `f` is called as `f(worker, index)`; `worker` identifies the calling
/// shard (stable in `0..workers`) so callers can give each worker its
/// own budget slice. A job may return `None` (e.g. when a cancel token
/// fired and the job drained without running); its slot stays `None`.
///
/// `workers` is clamped to `1..=n` (and to 1 when `n` is 0).
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<Option<T>>
where
    T: Send,
    F: Fn(usize, usize) -> Option<T> + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    // Fast path: one worker needs no machinery at all (and keeps the
    // sequential reference semantics trivially exact).
    if workers == 1 {
        return (0..n).map(|i| f(0, i)).collect();
    }

    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                while let Some(idx) = take_job(deques, w) {
                    let result = f(w, idx);
                    *lock_clean(&slots[idx]) = result;
                }
            });
        }
    });

    slots.into_iter().map(into_inner_clean).collect()
}

/// Pops the next job for worker `w`: own deque from the back (LIFO),
/// then each sibling's from the front (FIFO steal). `None` means the
/// whole pool is drained.
fn take_job(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(job) = lock_clean(&deques[w]).pop_back() {
        return Some(job);
    }
    let workers = deques.len();
    for k in 1..workers {
        let victim = (w + k) % workers;
        if let Some(job) = lock_clean(&deques[victim]).pop_front() {
            return Some(job);
        }
    }
    None
}

/// Locks a mutex, tolerating poisoning: a panicked sibling worker must
/// not cascade into losing every other worker's results.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn into_inner_clean<T>(m: Mutex<T>) -> T {
    match m.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn computes_all_results_in_index_order() {
        for workers in [1, 2, 4, 9, 64] {
            let out = run_indexed(33, workers, |_, i| Some(i * i));
            assert_eq!(out.len(), 33);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, Some(i * i), "workers={workers}");
            }
        }
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        assert!(run_indexed(0, 4, |_, i| Some(i)).is_empty());
        let out = run_indexed(3, 0, |_, i| Some(i));
        assert_eq!(out, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(100, 8, |_, i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
            Some(())
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn worker_ids_stay_in_range() {
        // Which workers end up running jobs is scheduling-dependent (a
        // fast worker may steal a late-spawning sibling's whole stripe);
        // what is guaranteed is the id range and that work happened.
        let seen = Mutex::new(vec![false; 4]);
        run_indexed(64, 4, |w, _| {
            assert!(w < 4);
            lock_clean(&seen)[w] = true;
            Some(())
        });
        assert!(lock_clean(&seen).iter().any(|&b| b));
    }

    #[test]
    fn stealing_rebalances_a_skewed_stripe() {
        // Worker 0's stripe (0, 2, 4, …) is made artificially slow; the
        // other worker must finish its own stripe and steal. We can't
        // assert *who* ran what (that's scheduling), only that everything
        // completes and the slow stripe doesn't deadlock the pool.
        let out = run_indexed(16, 2, |_, i| {
            if i % 2 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Some(i)
        });
        assert_eq!(out.iter().flatten().count(), 16);
    }

    #[test]
    fn none_results_leave_holes() {
        let out = run_indexed(10, 3, |_, i| if i % 3 == 0 { None } else { Some(i) });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, if i % 3 == 0 { None } else { Some(i) });
        }
    }

    #[test]
    fn a_panicking_job_does_not_lose_other_results() {
        // The scope propagates the panic after all threads join; catch it
        // and make sure the machinery stayed sound up to that point.
        let r = std::panic::catch_unwind(|| {
            run_indexed(8, 2, |_, i| {
                if i == 3 {
                    panic!("injected");
                }
                Some(i)
            })
        });
        assert!(r.is_err(), "panic must propagate out of the pool");
    }
}
