//! Sharded parallel corpus execution for the scheduling experiments.
//!
//! The paper's tables are built by running the rate-optimal scheduler
//! over a 1066-loop corpus. Sequentially that is embarrassingly slow and
//! embarrassingly parallel at once: every loop is independent. This
//! crate is the harness that exploits that:
//!
//! * [`executor`] — a hand-rolled work-stealing thread pool (per-worker
//!   deques, no external dependencies) that shards the corpus and
//!   returns results **in corpus order**, so a parallel run is
//!   indistinguishable from a sequential one;
//! * [`run`] — the [`Harness`](run::Harness) orchestrator: per-loop
//!   budgets carved from one global pool (reusing the `swp-milp` budget
//!   and cancellation machinery), cooperative Ctrl-C-style draining, and
//!   cache-first execution;
//! * [`record`] / [`sink`] — the per-loop [`LoopRecord`] with its JSONL
//!   schema, and streaming sinks that write each record to disk the
//!   moment its loop finishes;
//! * [`cache`] — the on-disk result cache: the JSONL artifact read back
//!   keyed by `(DDG, machine, config)` fingerprints, so re-runs skip
//!   already-solved loops and table binaries can rebuild their buckets
//!   from the artifact alone;
//! * [`telemetry`] — per-run aggregation: engine mix, solver effort,
//!   solve-time histogram, and the wall-time vs. summed-solve-time
//!   split that makes parallel speedup measurable;
//! * [`json`] / [`cli`] — the dependency-free JSON subset and flag
//!   parser the above are built on.
//!
//! # Determinism
//!
//! With isolated per-loop budgets (the default), a tick-capped run
//! produces byte-identical record sequences at any worker count — the
//! regression tests compare 1-, 4-, and 8-worker runs line by line.
//! See [`run`] for the budget-mode trade-off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod executor;
pub mod json;
pub mod record;
pub mod run;
pub mod sink;
pub mod telemetry;

pub use cache::ResultCache;
pub use cli::Flags;
pub use record::{CacheKey, LoopRecord, RecordReuse, SuiteOutcome, SuiteRunConfig, SCHEMA_VERSION};
pub use run::{Harness, HarnessConfig, HarnessError, RunReport};
pub use sink::{JsonlSink, NullSink, RunSink, VecSink};
pub use swp_core::ConflictOracleMode;
pub use telemetry::RunSummary;
