//! End-of-run telemetry: aggregate counters and a solve-time histogram.
//!
//! Every corpus run aggregates its [`LoopRecord`]s into a
//! [`RunSummary`]: outcome and engine mix, total solver effort (simplex
//! pivots, branch-and-bound nodes, budget ticks), cache effectiveness,
//! and the split the satellite fix demands — summed per-loop solve time
//! *versus* whole-run wall time, whose ratio is the realized parallel
//! speedup.

use crate::record::{LoopRecord, RecordReuse, SuiteOutcome};
use std::fmt::Write as _;
use std::time::Duration;
use swp_automata::OracleCounters;
use swp_core::SolvedBy;

/// Upper edges of the solve-time histogram buckets.
const BUCKET_EDGES_US: [(u64, &str); 6] = [
    (100, "< 100 µs"),
    (1_000, "< 1 ms"),
    (10_000, "< 10 ms"),
    (100_000, "< 100 ms"),
    (1_000_000, "< 1 s"),
    (10_000_000, "< 10 s"),
];

/// Aggregated statistics over one corpus run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Loops with a record (cancelled runs may have fewer than the corpus).
    pub total: usize,
    /// Loops scheduled at some period.
    pub scheduled: usize,
    /// Loops not scheduled in range.
    pub unscheduled: usize,
    /// Records served from the on-disk cache.
    pub cache_hits: usize,
    /// Records solved fresh in this run.
    pub fresh_solves: usize,
    /// Scheduled loops whose period equals the *counting* `T_lb` (the
    /// paper's Table 4 headline bucket).
    pub at_counting_lb: usize,
    /// Scheduled loops proven rate-optimal under the refined bound.
    pub proven_optimal: usize,
    /// Loops whose final schedule came from the unified ILP.
    pub by_ilp: usize,
    /// Loops whose final schedule came from the CP backend.
    pub by_cp: usize,
    /// Loops whose final schedule came from the IMS certificate.
    pub by_heuristic: usize,
    /// Portfolio races across all loops (0 outside portfolio mode).
    pub races: u64,
    /// Races the CP backend settled first.
    pub race_cp_wins: u64,
    /// Races the ILP settled first.
    pub race_ilp_wins: u64,
    /// Loops with at least one undecided (timed-out) period.
    pub with_timeout: usize,
    /// Total branch-and-bound nodes.
    pub bb_nodes: u64,
    /// Total simplex iterations.
    pub lp_iterations: u64,
    /// Total budget ticks (pivots + B&B nodes + IMS placements).
    pub ticks: u64,
    /// Summed warm-sweep reuse counters (all zeros for a cold run).
    pub reuse: RecordReuse,
    /// Sum of per-loop on-thread solve times (CPU-side effort).
    pub solve_time_total: Duration,
    /// Whole-run wall time (what a user actually waits).
    pub wall_time: Duration,
    /// Solve-time histogram: `(label, count)` per bucket, including the
    /// final overflow bucket.
    pub histogram: Vec<(&'static str, usize)>,
    /// Hazard-automaton oracle activity during this run (all zeros under
    /// the scan oracle): FSA/matrix fast-path queries vs. exact fallback
    /// scans, and automaton memo-registry hits vs. builds. Populated by
    /// the runner from a process-global counter delta, not from records.
    pub oracle: OracleCounters,
}

impl RunSummary {
    /// Aggregates `records`; `wall_time` is measured by the caller
    /// around the whole run (including cache loading and I/O).
    pub fn from_records(records: &[LoopRecord], wall_time: Duration) -> RunSummary {
        let mut s = RunSummary {
            total: records.len(),
            wall_time,
            histogram: BUCKET_EDGES_US
                .iter()
                .map(|&(_, label)| (label, 0))
                .chain([("≥ 10 s", 0)])
                .collect(),
            ..RunSummary::default()
        };
        for r in records {
            match &r.outcome {
                SuiteOutcome::Scheduled { solved_by, .. } => {
                    s.scheduled += 1;
                    match solved_by {
                        SolvedBy::Ilp => s.by_ilp += 1,
                        SolvedBy::Cp => s.by_cp += 1,
                        SolvedBy::Heuristic => s.by_heuristic += 1,
                    }
                    if r.period.is_some_and(|p| p <= r.t_lb_counting) {
                        s.at_counting_lb += 1;
                    }
                    if r.proven && r.period.is_some_and(|p| p == r.t_lb) {
                        s.proven_optimal += 1;
                    }
                }
                SuiteOutcome::Unscheduled => s.unscheduled += 1,
            }
            if r.cached {
                s.cache_hits += 1;
            } else {
                s.fresh_solves += 1;
            }
            if r.any_timeout {
                s.with_timeout += 1;
            }
            s.races += u64::from(r.races);
            s.race_cp_wins += u64::from(r.race_cp_wins);
            s.race_ilp_wins += u64::from(r.race_ilp_wins);
            s.bb_nodes += r.bb_nodes;
            s.lp_iterations += r.lp_iterations;
            s.ticks += r.ticks;
            s.reuse.absorb(&r.reuse);
            s.solve_time_total += r.solve_time;
            let us = r.solve_time.as_micros() as u64;
            let bucket = BUCKET_EDGES_US
                .iter()
                .position(|&(edge, _)| us < edge)
                .unwrap_or(BUCKET_EDGES_US.len());
            s.histogram[bucket].1 += 1;
        }
        s
    }

    /// Corpus throughput against *wall* time.
    pub fn loops_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total as f64 / secs
    }

    /// Realized parallel speedup: summed solve time over wall time.
    /// ~1.0 for a sequential run, approaching the worker count when the
    /// corpus shards well. Meaningless (0) when timing was not recorded.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.solve_time_total.as_secs_f64() / wall
    }

    /// Renders the summary as an ASCII block (engine mix, effort totals,
    /// solve-time histogram with proportional bars).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loops: {} ({} scheduled, {} unscheduled) | cache: {} hits / {} solved",
            self.total, self.scheduled, self.unscheduled, self.cache_hits, self.fresh_solves
        );
        let _ = writeln!(
            out,
            "engines: {} ILP, {} CP, {} heuristic | {} at counting T_lb, {} proven optimal, {} with timeouts",
            self.by_ilp,
            self.by_cp,
            self.by_heuristic,
            self.at_counting_lb,
            self.proven_optimal,
            self.with_timeout
        );
        if self.races > 0 {
            let _ = writeln!(
                out,
                "portfolio: {} races ({} CP wins, {} ILP wins, {} undecided)",
                self.races,
                self.race_cp_wins,
                self.race_ilp_wins,
                self.races - self.race_cp_wins - self.race_ilp_wins
            );
        }
        let _ = writeln!(
            out,
            "effort: {} B&B nodes, {} simplex iterations, {} budget ticks",
            self.bb_nodes, self.lp_iterations, self.ticks
        );
        if self.reuse.any() {
            let _ = writeln!(
                out,
                "reuse: {} basis hits, {} IMS hint hits, {} no-good replays, {} periods skipped, {} replays, {} cone nodes",
                self.reuse.basis_hits,
                self.reuse.ims_hint_hits,
                self.reuse.nogood_replays,
                self.reuse.periods_skipped,
                self.reuse.replays,
                self.reuse.cone_nodes
            );
        }
        let _ = writeln!(
            out,
            "time: {:.2?} wall, {:.2?} summed solve ({:.1} loops/s, speedup ×{:.2})",
            self.wall_time,
            self.solve_time_total,
            self.loops_per_sec(),
            self.speedup()
        );
        if self.oracle.any() {
            let _ = writeln!(
                out,
                "oracle: {} FSA + {} matrix queries, {} fallback scans | automata: {} memo hits / {} builds",
                self.oracle.fsa_queries,
                self.oracle.matrix_queries,
                self.oracle.fallback_scans,
                self.oracle.memo_hits,
                self.oracle.memo_builds
            );
        }
        let max = self.histogram.iter().map(|&(_, c)| c).max().unwrap_or(0);
        if max > 0 {
            let _ = writeln!(out, "solve-time histogram:");
            for &(label, count) in &self.histogram {
                let width = (count * 40).div_ceil(max.max(1));
                let _ = writeln!(
                    out,
                    "  {label:>9} | {:<40} {count}",
                    "#".repeat(if count == 0 { 0 } else { width.max(1) })
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CacheKey;

    fn rec(i: usize, solve_us: u64, cached: bool, scheduled: bool) -> LoopRecord {
        LoopRecord {
            index: i,
            name: format!("loop{i:04}"),
            num_nodes: 5,
            key: CacheKey {
                ddg: i as u64,
                machine: 1,
                config: 2,
            },
            t_lb: 3,
            t_lb_counting: 3,
            period: scheduled.then_some(3),
            outcome: if scheduled {
                SuiteOutcome::Scheduled {
                    slack: 0,
                    solved_by: if i % 2 == 0 {
                        SolvedBy::Ilp
                    } else {
                        SolvedBy::Heuristic
                    },
                }
            } else {
                SuiteOutcome::Unscheduled
            },
            proven: scheduled,
            bb_nodes: 10,
            lp_iterations: 100,
            ticks: 111,
            periods_attempted: 1,
            races: 0,
            race_cp_wins: 0,
            race_ilp_wins: 0,
            any_timeout: false,
            reuse: RecordReuse {
                ims_hint_hits: 1,
                ..RecordReuse::default()
            },
            solve_time: Duration::from_micros(solve_us),
            cached,
        }
    }

    #[test]
    fn summary_counts_everything() {
        let records = vec![
            rec(0, 50, false, true),          // <100µs, ILP
            rec(1, 5_000, true, true),        // <10ms, heuristic, cached
            rec(2, 20_000_000, false, false), // overflow bucket, unscheduled
        ];
        let s = RunSummary::from_records(&records, Duration::from_secs(2));
        assert_eq!(s.total, 3);
        assert_eq!(s.scheduled, 2);
        assert_eq!(s.unscheduled, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.fresh_solves, 2);
        assert_eq!(s.by_ilp, 1);
        assert_eq!(s.by_heuristic, 1);
        assert_eq!(s.at_counting_lb, 2);
        assert_eq!(s.proven_optimal, 2);
        assert_eq!(s.bb_nodes, 30);
        assert_eq!(s.lp_iterations, 300);
        assert_eq!(s.ticks, 333);
        assert_eq!(s.reuse.ims_hint_hits, 3);
        assert!(s.render().contains("reuse: 0 basis hits, 3 IMS hint hits"));
        assert_eq!(s.histogram[0], ("< 100 µs", 1));
        assert_eq!(s.histogram[2], ("< 10 ms", 1));
        assert_eq!(s.histogram[6], ("≥ 10 s", 1));
        assert!((s.loops_per_sec() - 1.5).abs() < 1e-9);
        let rendered = s.render();
        assert!(rendered.contains("3 (2 scheduled, 1 unscheduled)"));
        assert!(rendered.contains("histogram"));
    }

    #[test]
    fn empty_run_renders_without_panicking() {
        let s = RunSummary::from_records(&[], Duration::ZERO);
        assert_eq!(s.loops_per_sec(), 0.0);
        assert_eq!(s.speedup(), 0.0);
        let _ = s.render();
    }
}
