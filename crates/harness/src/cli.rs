//! A tiny flag parser shared by the table binaries.
//!
//! The bins historically took positional arguments (`table4 1066 3
//! ppc604`); the harness adds flags (`--workers 8 --artifact t4.jsonl
//! --resume`). This parser supports both at once: `--name value` (or
//! `--name=value`) pairs, declared boolean flags that take no value, and
//! everything else collected positionally in order.

use std::collections::{HashMap, HashSet};
use std::str::FromStr;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    positional: Vec<String>,
    named: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Flags {
    /// Parses `args` (without the program name). `boolean` names the
    /// flags that take no value; any other `--flag` consumes the next
    /// argument as its value.
    ///
    /// # Errors
    ///
    /// A usage message naming the offending argument — an unknown-style
    /// token (`--flag` with no value), or a repeated flag.
    pub fn parse<I>(args: I, boolean: &[&str]) -> Result<Flags, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut flags = Flags::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    if flags
                        .named
                        .insert(key.to_string(), value.to_string())
                        .is_some()
                    {
                        return Err(format!("flag --{key} given twice"));
                    }
                } else if boolean.contains(&name) {
                    flags.switches.insert(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} expects a value"))?;
                    if flags.named.insert(name.to_string(), value).is_some() {
                        return Err(format!("flag --{name} given twice"));
                    }
                }
            } else {
                flags.positional.push(arg);
            }
        }
        Ok(flags)
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.named.get(name).map(String::as_str)
    }

    /// Parses `--name`'s value, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// A message naming the flag when its value fails to parse.
    pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
        }
    }

    /// Whether the boolean `--name` switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Parses the `i`-th positional argument, falling back to `default`
    /// when absent.
    ///
    /// # Errors
    ///
    /// A message naming the position when its value fails to parse.
    pub fn positional_or<T: FromStr>(&self, i: usize, default: T) -> Result<T, String> {
        match self.positional(i) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("positional argument {i}: cannot parse `{raw}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mixes_positional_named_and_switches() {
        let f = Flags::parse(
            strs(&[
                "64",
                "--workers",
                "4",
                "--resume",
                "3",
                "--artifact=t4.jsonl",
            ]),
            &["resume"],
        )
        .unwrap();
        assert_eq!(f.positional(0), Some("64"));
        assert_eq!(f.positional(1), Some("3"));
        assert_eq!(f.get("workers"), Some("4"));
        assert_eq!(f.get("artifact"), Some("t4.jsonl"));
        assert!(f.has("resume"));
        assert!(!f.has("deterministic"));
        assert_eq!(f.get_or("workers", 1usize).unwrap(), 4);
        assert_eq!(f.get_or("loops", 7usize).unwrap(), 7);
        assert_eq!(f.positional_or(0, 0usize).unwrap(), 64);
        assert_eq!(f.positional_or(9, 5usize).unwrap(), 5);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(Flags::parse(strs(&["--workers"]), &[])
            .unwrap_err()
            .contains("--workers"));
        assert!(Flags::parse(strs(&["--w", "1", "--w", "2"]), &[])
            .unwrap_err()
            .contains("twice"));
        let f = Flags::parse(strs(&["--workers", "many"]), &[]).unwrap();
        assert!(f.get_or("workers", 1usize).unwrap_err().contains("many"));
    }
}
