//! Streaming sinks for per-loop records.
//!
//! A [`RunSink`] receives each [`LoopRecord`] as soon as its loop
//! finishes — in **completion order**, which under parallel execution is
//! not corpus order (each record carries its corpus `index`; the run
//! report's record vector is always re-sorted to corpus order). Sinks
//! let a long corpus run stream progress to disk or a progress meter
//! instead of buffering everything in memory.

use crate::record::LoopRecord;
use crate::telemetry::RunSummary;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Consumes per-loop records as they complete.
pub trait RunSink: Send {
    /// Called once per finished loop, in completion order.
    fn on_record(&mut self, record: &LoopRecord);

    /// Called once after the run with the aggregated summary.
    fn on_summary(&mut self, _summary: &RunSummary) {}
}

/// Discards everything.
#[derive(Debug, Default)]
pub struct NullSink;

impl RunSink for NullSink {
    fn on_record(&mut self, _record: &LoopRecord) {}
}

/// Collects records in memory (completion order).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The records seen so far.
    pub records: Vec<LoopRecord>,
}

impl RunSink for VecSink {
    fn on_record(&mut self, record: &LoopRecord) {
        self.records.push(record.clone());
    }
}

/// Streams records to a JSONL file, one line per record, flushed per
/// record so an interrupted run leaves a resumable artifact (at worst
/// its final line is truncated — which the cache loader skips with a
/// warning rather than failing the resume).
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
    written: usize,
}

impl JsonlSink {
    /// Creates (truncating) the artifact at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
            written: 0,
        })
    }

    /// Opens the artifact at `path` for appending (creating it if
    /// missing) — the resume path.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn append(path: &Path) -> io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?),
            written: 0,
        })
    }

    /// Lines written through this sink (excludes pre-existing lines of
    /// an appended artifact).
    pub fn written(&self) -> usize {
        self.written
    }

    /// Writes one record line immediately.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or flushing.
    pub fn write_record(&mut self, record: &LoopRecord) -> io::Result<()> {
        let line = record.to_json_line();
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.written += 1;
        Ok(())
    }
}

impl RunSink for JsonlSink {
    fn on_record(&mut self, record: &LoopRecord) {
        // Sinks are infallible by contract; a dying disk should not kill
        // a mostly-done corpus run. Complain and carry on.
        if let Err(e) = self.write_record(record) {
            eprintln!(
                "swp-harness: artifact write failed for loop {}: {e}",
                record.index
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheKey, SuiteOutcome};
    use std::time::Duration;

    fn rec(i: usize) -> LoopRecord {
        LoopRecord {
            index: i,
            name: format!("loop{i:04}"),
            num_nodes: 3,
            key: CacheKey {
                ddg: i as u64,
                machine: 1,
                config: 2,
            },
            t_lb: 1,
            t_lb_counting: 1,
            period: None,
            outcome: SuiteOutcome::Unscheduled,
            proven: false,
            bb_nodes: 0,
            lp_iterations: 0,
            ticks: 0,
            periods_attempted: 0,
            races: 0,
            race_cp_wins: 0,
            race_ilp_wins: 0,
            any_timeout: false,
            reuse: Default::default(),
            solve_time: Duration::ZERO,
            cached: false,
        }
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines_and_append_extends() {
        let dir = std::env::temp_dir().join(format!("swp-harness-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.jsonl");

        let mut sink = JsonlSink::create(&path).unwrap();
        sink.on_record(&rec(0));
        sink.on_record(&rec(1));
        assert_eq!(sink.written(), 2);
        drop(sink);

        let mut sink = JsonlSink::append(&path).unwrap();
        sink.on_record(&rec(2));
        drop(sink);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, l) in lines.iter().enumerate() {
            let r = LoopRecord::from_json_line(l).expect("valid line");
            assert_eq!(r.index, i);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vec_sink_collects() {
        let mut s = VecSink::default();
        s.on_record(&rec(5));
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].index, 5);
        NullSink.on_record(&rec(0)); // and the null sink ignores
    }
}
