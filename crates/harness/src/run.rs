//! The corpus-run orchestrator: sharding, budgets, cache, sinks.
//!
//! [`Harness::run`] drives a loop corpus through the rate-optimal
//! scheduler on a work-stealing pool ([`crate::executor`]), consulting
//! the on-disk result cache first ([`crate::cache`]) and streaming every
//! fresh record to the artifact and the caller's sink as it completes.
//! The returned [`RunReport`] carries the records **in corpus order**,
//! so a parallel run is indistinguishable from the sequential one.
//!
//! # Budgets and determinism
//!
//! Each loop is solved under its own [`Budget`]. By default
//! ([`HarnessConfig::global_ticks`] unset) that budget is *isolated*
//! ([`Budget::fork_isolated`]): its tick counter is private to the loop,
//! so a per-loop tick cap ([`SuiteRunConfig::per_loop_ticks`]) trips at
//! exactly the same point no matter how many workers run or how the
//! corpus is sharded — the basis of the determinism guarantee. Setting
//! `global_ticks` instead slices one shared pool across the workers
//! ([`Budget::slice`]); total effort is then bounded globally, but which
//! loop exhausts the pool depends on scheduling, so run-to-run identity
//! is deliberately traded away (the report is flagged accordingly).
//!
//! Cancellation ([`Harness::cancel_token`]) stops the run cooperatively:
//! in-flight loops drain (each solver notices the token within one
//! budget check interval and its record is dropped), queued loops are
//! skipped, and everything already recorded is returned — with the
//! artifact flushed per record, a cancelled run resumes where it left
//! off.

use crate::cache::ResultCache;
use crate::executor;
use crate::record::{CacheKey, LoopRecord, RecordReuse, SuiteOutcome, SuiteRunConfig};
use crate::sink::{JsonlSink, RunSink};
use crate::telemetry::RunSummary;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use swp_core::{RateOptimalScheduler, ScheduleError, SchedulerConfig, SolverStats, WarmState};
use swp_loops::fingerprint::{ddg_fingerprint, machine_fingerprint};
use swp_loops::suite::GeneratedLoop;
use swp_machine::Machine;
use swp_milp::{Budget, CancelToken};

/// Sharding, artifact, and global-budget knobs (the solve-side knobs
/// live in [`SuiteRunConfig`]).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Worker threads. `0` means one per available CPU.
    pub workers: usize,
    /// JSONL artifact path: every fresh record is streamed here.
    pub artifact: Option<PathBuf>,
    /// Load the artifact as a result cache before running and append to
    /// it, so already-solved loops are served without re-solving.
    /// Without `resume`, an existing artifact is truncated.
    pub resume: bool,
    /// Record per-loop solve times. Turning this off zeroes
    /// [`LoopRecord::solve_time`], making records (and artifacts)
    /// byte-identical across runs and worker counts.
    pub record_timing: bool,
    /// Wall-clock budget for the whole run; when it expires, remaining
    /// loops are skipped (drained) and the report is marked interrupted.
    pub global_time_limit: Option<Duration>,
    /// Global tick pool sliced across workers (see the module docs for
    /// the determinism trade-off). `None` (default) gives every loop an
    /// isolated budget.
    pub global_ticks: Option<u64>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            workers: 1,
            artifact: None,
            resume: false,
            record_timing: true,
            global_time_limit: None,
            global_ticks: None,
        }
    }
}

impl HarnessConfig {
    /// A sequential, artifact-less configuration — the `run_suite`
    /// compatibility mode.
    pub fn sequential() -> Self {
        HarnessConfig::default()
    }
}

/// What a corpus run produced.
#[derive(Debug)]
pub struct RunReport {
    /// One record per completed loop, **in corpus order** (loops skipped
    /// by cancellation or global-budget exhaustion are absent).
    pub records: Vec<LoopRecord>,
    /// Whole-run wall time (cache load + solving + artifact I/O) —
    /// deliberately separate from the per-loop
    /// [`solve_time`](LoopRecord::solve_time)s, whose sum measures
    /// CPU-side effort; the ratio of the two is the realized speedup.
    pub wall_time: Duration,
    /// Records served from the cache.
    pub cache_hits: usize,
    /// Records solved in this run.
    pub fresh_solves: usize,
    /// Corrupt artifact lines skipped while loading the cache.
    pub skipped_lines: usize,
    /// Whether the run stopped early (cancel token or global budget).
    pub interrupted: bool,
    /// Aggregated telemetry.
    pub summary: RunSummary,
}

/// Errors a corpus run can hit outside individual solves (per-loop
/// solver failures are recorded, not raised).
#[derive(Debug)]
pub enum HarnessError {
    /// The artifact could not be opened or loaded.
    Artifact {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        error: io::Error,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Artifact { path, error } => {
                write!(f, "artifact {}: {error}", path.display())
            }
        }
    }
}

impl Error for HarnessError {}

/// The sharded corpus runner.
pub struct Harness {
    machine: Machine,
    solve: SuiteRunConfig,
    config: HarnessConfig,
    cancel: CancelToken,
}

impl Harness {
    /// Creates a harness for `machine` under the given configurations.
    pub fn new(machine: Machine, solve: SuiteRunConfig, config: HarnessConfig) -> Harness {
        Harness {
            machine,
            solve,
            config,
            cancel: CancelToken::new(),
        }
    }

    /// A token that stops any in-progress [`run`](Self::run)
    /// cooperatively (Ctrl-C style): fire it from another thread or a
    /// signal handler; workers drain within one budget check interval.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The machine this harness targets.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Runs the corpus, streaming records to `sink` (and to the
    /// configured artifact) as loops complete.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Artifact`] if the artifact cannot be opened or
    /// read. Per-loop solver failures never error the run; they become
    /// [`SuiteOutcome::Unscheduled`] records.
    pub fn run(
        &self,
        loops: &[GeneratedLoop],
        sink: &mut dyn RunSink,
    ) -> Result<RunReport, HarnessError> {
        let started = Instant::now();
        let machine_fp = machine_fingerprint(&self.machine);
        let config_fp = self.solve.fingerprint();

        // The global pool: deadline + optional shared ticks + the
        // harness's cancel token. Rebuilt per run, so the deadline is
        // anchored at run start and the harness is reusable.
        let mut pool = Budget::unlimited().cancelled_by(&self.cancel);
        if let Some(d) = self.config.global_time_limit {
            pool = pool.deadline_in(d);
        }
        if let Some(t) = self.config.global_ticks {
            pool = pool.limit_ticks(t);
        }

        let cache = match (&self.config.artifact, self.config.resume) {
            (Some(path), true) => {
                ResultCache::load(path).map_err(|error| HarnessError::Artifact {
                    path: path.clone(),
                    error,
                })?
            }
            _ => ResultCache::empty(),
        };
        let artifact: Option<Mutex<JsonlSink>> = match &self.config.artifact {
            Some(path) => {
                let sink = if self.config.resume {
                    JsonlSink::append(path)
                } else {
                    JsonlSink::create(path)
                }
                .map_err(|error| HarnessError::Artifact {
                    path: path.clone(),
                    error,
                })?;
                Some(Mutex::new(sink))
            }
            None => None,
        };

        let scheduler = RateOptimalScheduler::new(
            self.machine.clone(),
            SchedulerConfig {
                time_limit_per_t: self.solve.time_limit_per_t,
                max_t_above_lb: self.solve.max_t_above_lb,
                heuristic_incumbent: self.solve.heuristic_incumbent,
                conflict_oracle: self.solve.conflict_oracle,
                engine: self.solve.engine,
                warm_sweep: self.solve.warm,
                data_layout: self.solve.layout,
                max_live: self.solve.max_live,
                ..Default::default()
            },
        );

        let workers = match self.config.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        };
        // Worker shares of the pool: real slices when a global tick pool
        // is configured, otherwise plain handles to the (uncapped) pool.
        let shares: Vec<Budget> = (0..workers.max(1))
            .map(|_| pool.slice(workers as u64))
            .collect();

        let sink = Mutex::new(sink);
        // Oracle telemetry is process-global; delta against a snapshot so
        // the summary reports only this run's queries.
        let oracle_before = swp_automata::stats::snapshot();
        let results = executor::run_indexed(loops.len(), workers, |w, idx| {
            // Drain (skip without a record) once the run-wide budget or
            // the cancel token has tripped.
            if pool.check().is_err() {
                return None;
            }
            let l = &loops[idx];
            let key = CacheKey {
                ddg: ddg_fingerprint(&l.ddg),
                machine: machine_fp,
                config: config_fp,
            };
            if let Some(hit) = cache.lookup(&key) {
                let mut rec = hit.clone();
                rec.index = idx;
                rec.name = l.name.clone();
                rec.cached = true;
                lock(&sink).on_record(&rec);
                return Some(rec);
            }
            let rec = self.solve_one(idx, l, &scheduler, key, &shares[w])?;
            if let Some(artifact) = &artifact {
                lock(artifact).on_record(&rec);
            }
            lock(&sink).on_record(&rec);
            Some(rec)
        });

        let interrupted = results.iter().any(Option::is_none);
        let records: Vec<LoopRecord> = results.into_iter().flatten().collect();
        let wall_time = started.elapsed();
        let mut summary = RunSummary::from_records(&records, wall_time);
        summary.oracle = swp_automata::stats::snapshot().since(&oracle_before);
        lock(&sink).on_summary(&summary);
        Ok(RunReport {
            cache_hits: summary.cache_hits,
            fresh_solves: summary.fresh_solves,
            skipped_lines: cache.skipped_lines(),
            interrupted,
            wall_time,
            summary,
            records,
        })
    }

    /// Solves one loop under its per-loop budget. `None` means the loop
    /// drained on cancellation and must not be recorded.
    fn solve_one(
        &self,
        index: usize,
        l: &GeneratedLoop,
        scheduler: &RateOptimalScheduler,
        key: CacheKey,
        share: &Budget,
    ) -> Option<LoopRecord> {
        let loop_budget = if self.config.global_ticks.is_some() {
            // Shared pool: per-loop allowance drains the worker's share.
            share.restrict(None, self.solve.per_loop_ticks)
        } else {
            // Isolated counter: per-loop ticks are exact and
            // scheduling-independent (the determinism guarantee).
            let b = share.fork_isolated();
            match self.solve.per_loop_ticks {
                Some(t) => b.limit_ticks(t),
                None => b,
            }
        };
        let t_lb_counting = l
            .ddg
            .t_dep()
            .unwrap_or(0)
            .max(self.machine.t_res_counting(&l.ddg).unwrap_or(0));
        let ticks_before = loop_budget.ticks_used();
        let solve_started = Instant::now();
        // One warm state per loop: the basis/hint/no-good carry-over is
        // strictly within this loop's T-sweep, so nothing leaks between
        // DDGs and per-loop records stay scheduling-independent.
        let mut warm = WarmState::new();
        let solved = scheduler.schedule_with_warm(&l.ddg, &loop_budget, &mut warm);
        let solve_time = if self.config.record_timing {
            solve_started.elapsed()
        } else {
            Duration::ZERO
        };
        let ticks = loop_budget.ticks_used().saturating_sub(ticks_before);
        let reuse = RecordReuse::from(&warm.reuse);

        let rec = match solved {
            Ok(r) => {
                let stats = r.solver_stats();
                LoopRecord {
                    index,
                    name: l.name.clone(),
                    num_nodes: l.ddg.num_nodes(),
                    key,
                    t_lb: r.t_lb(),
                    t_lb_counting,
                    period: Some(r.schedule.initiation_interval()),
                    outcome: SuiteOutcome::Scheduled {
                        slack: r.slack_above_lb(),
                        solved_by: r.solved_by(),
                    },
                    proven: r.is_proven_optimal(),
                    bb_nodes: stats.bb_nodes,
                    lp_iterations: stats.lp_iterations,
                    ticks,
                    periods_attempted: stats.periods_attempted,
                    races: stats.races,
                    race_cp_wins: stats.race_cp_wins,
                    race_ilp_wins: stats.race_ilp_wins,
                    any_timeout: stats.any_timeout(),
                    reuse,
                    solve_time,
                    cached: false,
                }
            }
            Err(ScheduleError::Cancelled) => return None,
            Err(e) => {
                let (t_lb, stats) = match &e {
                    ScheduleError::NotFound { t_lb, attempts, .. } => {
                        (*t_lb, SolverStats::from_attempts(attempts))
                    }
                    _ => (0, SolverStats::default()),
                };
                LoopRecord {
                    index,
                    name: l.name.clone(),
                    num_nodes: l.ddg.num_nodes(),
                    key,
                    t_lb,
                    t_lb_counting,
                    period: None,
                    outcome: SuiteOutcome::Unscheduled,
                    proven: false,
                    bb_nodes: stats.bb_nodes,
                    lp_iterations: stats.lp_iterations,
                    ticks,
                    periods_attempted: stats.periods_attempted,
                    races: stats.races,
                    race_cp_wins: stats.race_cp_wins,
                    race_ilp_wins: stats.race_ilp_wins,
                    any_timeout: stats.any_timeout(),
                    reuse,
                    solve_time,
                    cached: false,
                }
            }
        };
        Some(rec)
    }
}

/// Locks a mutex, tolerating poisoning — one panicked worker must not
/// lose every other worker's records.
fn lock<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{NullSink, VecSink};
    use swp_loops::suite::{generate, SuiteConfig};

    fn small_corpus(n: usize) -> Vec<GeneratedLoop> {
        generate(&SuiteConfig {
            num_loops: n,
            ..SuiteConfig::pldi95_default()
        })
    }

    fn fast_solve() -> SuiteRunConfig {
        SuiteRunConfig {
            num_loops: 0, // unused by the harness itself
            time_limit_per_t: Some(Duration::from_millis(500)),
            per_loop_ticks: None,
            max_t_above_lb: 8,
            heuristic_incumbent: true,
            conflict_oracle: Default::default(),
            engine: Default::default(),
            warm: true,
            layout: Default::default(),
            max_live: None,
        }
    }

    #[test]
    fn runs_a_small_corpus_and_orders_records() {
        let loops = small_corpus(8);
        let h = Harness::new(
            Machine::example_pldi95(),
            fast_solve(),
            HarnessConfig::default(),
        );
        let mut sink = VecSink::default();
        let report = h.run(&loops, &mut sink).expect("no artifact, no error");
        assert_eq!(report.records.len(), 8);
        assert!(!report.interrupted);
        assert_eq!(report.fresh_solves, 8);
        assert_eq!(report.cache_hits, 0);
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.name, loops[i].name);
            if let Some(p) = r.period {
                assert!(p >= r.t_lb);
            }
        }
        // The sink saw the same records (possibly in completion order).
        assert_eq!(sink.records.len(), 8);
        let scheduled = report
            .records
            .iter()
            .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { .. }))
            .count();
        assert!(scheduled >= 6, "only {scheduled}/8 scheduled");
        assert_eq!(report.summary.total, 8);
    }

    #[test]
    fn portfolio_engine_records_races() {
        // With the incumbent probe off, every period is settled by a
        // portfolio race; the records must carry the race telemetry and
        // the summary must aggregate it.
        let loops = small_corpus(4);
        let h = Harness::new(
            Machine::example_pldi95(),
            SuiteRunConfig {
                heuristic_incumbent: false,
                engine: swp_core::Engine::Portfolio,
                ..fast_solve()
            },
            HarnessConfig::default(),
        );
        let report = h.run(&loops, &mut NullSink).expect("run");
        assert_eq!(report.records.len(), 4);
        let total_races: u64 = report.records.iter().map(|r| u64::from(r.races)).sum();
        assert!(total_races > 0, "no races recorded");
        assert_eq!(report.summary.races, total_races);
        assert_eq!(
            report.summary.by_ilp + report.summary.by_cp + report.summary.by_heuristic,
            report.summary.scheduled
        );
        for r in &report.records {
            assert!(u64::from(r.race_cp_wins + r.race_ilp_wins) <= u64::from(r.races));
        }
    }

    #[test]
    fn cancellation_drains_cleanly() {
        let loops = small_corpus(16);
        let h = Harness::new(
            Machine::example_pldi95(),
            fast_solve(),
            HarnessConfig::default(),
        );
        // Fire the token before the run: every loop drains, nothing is
        // recorded, and the report says interrupted.
        h.cancel_token().cancel();
        let report = h.run(&loops, &mut NullSink).expect("run");
        assert!(report.interrupted);
        assert!(report.records.is_empty());
    }

    #[test]
    fn global_tick_pool_bounds_total_effort() {
        let loops = small_corpus(12);
        let h = Harness::new(
            Machine::example_pldi95(),
            SuiteRunConfig {
                time_limit_per_t: None,
                ..fast_solve()
            },
            HarnessConfig {
                global_ticks: Some(16),
                ..HarnessConfig::default()
            },
        );
        let report = h.run(&loops, &mut NullSink).expect("run");
        // The tiny pool cannot cover 12 loops: the run is interrupted
        // (drained) partway, but whatever completed is well-formed.
        assert!(report.interrupted, "16 ticks should not finish 12 loops");
        assert!(report.records.len() < 12);
        for r in &report.records {
            assert!(!r.cached);
        }
    }

    #[test]
    fn warm_and_cold_sweeps_make_identical_decisions() {
        // Warm sweeps are the default; decisions (period, outcome,
        // proven) must be exactly those of a cold run, with only the
        // reuse telemetry and effort counters free to differ. Tick caps
        // keep both runs deterministic.
        let loops = small_corpus(16);
        let solve = SuiteRunConfig {
            time_limit_per_t: None,
            per_loop_ticks: Some(50_000),
            ..fast_solve()
        };
        let run = |warm: bool| {
            Harness::new(
                Machine::example_pldi95(),
                SuiteRunConfig {
                    warm,
                    ..solve.clone()
                },
                HarnessConfig::default(),
            )
            .run(&loops, &mut NullSink)
            .expect("run")
        };
        let (w, c) = (run(true), run(false));
        assert_eq!(w.records.len(), c.records.len());
        for (a, b) in w.records.iter().zip(&c.records) {
            assert_eq!(a.period, b.period, "{}", a.name);
            assert_eq!(a.outcome, b.outcome, "{}", a.name);
            assert_eq!(a.proven, b.proven, "{}", a.name);
            assert!(!b.reuse.any(), "cold record reports reuse: {}", b.name);
        }
        // The two configs must never share cache entries.
        assert_ne!(w.records[0].key.config, c.records[0].key.config);
        // Summary totals aggregate the per-record counters exactly.
        let mut total = RecordReuse::default();
        for r in &w.records {
            total.absorb(&r.reuse);
        }
        assert_eq!(w.summary.reuse, total);
    }

    #[test]
    fn worker_zero_means_available_parallelism() {
        let loops = small_corpus(4);
        let h = Harness::new(
            Machine::example_pldi95(),
            fast_solve(),
            HarnessConfig {
                workers: 0,
                ..HarnessConfig::default()
            },
        );
        let report = h.run(&loops, &mut NullSink).expect("run");
        assert_eq!(report.records.len(), 4);
    }
}
