//! The on-disk result cache: a JSONL artifact read back as a key-value
//! store.
//!
//! The artifact written by a run doubles as the cache for the next one:
//! each line is a complete [`LoopRecord`] carrying its own
//! [`CacheKey`] (DDG + machine + config fingerprints), so a re-run
//! simply loads the file, looks up each loop's key, and re-solves only
//! the misses. A loop keyed identically always produced the same
//! outcome (solves are deterministic given the config), so serving the
//! stored record is equivalent to re-solving — that equivalence is
//! enforced by the cache-correctness tests.
//!
//! Robustness: a corrupted, truncated, or foreign line is *skipped with
//! a warning*, never a panic — an artifact whose tail was cut off by a
//! kill mid-write must still resume cleanly.

use crate::record::{CacheKey, LoopRecord};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// An in-memory index of a JSONL artifact, keyed by fingerprint triple.
#[derive(Debug, Default)]
pub struct ResultCache {
    map: HashMap<CacheKey, LoopRecord>,
    skipped_lines: usize,
    loaded_lines: usize,
}

impl ResultCache {
    /// An empty cache (every lookup misses).
    pub fn empty() -> ResultCache {
        ResultCache::default()
    }

    /// Loads an artifact. A missing file yields an empty cache (first
    /// run); unreadable lines are skipped and counted in
    /// [`skipped_lines`](Self::skipped_lines). When the same key appears
    /// on several lines the last one wins.
    ///
    /// Corruption is reported as **one warning per file** on stderr
    /// (first offending line plus a total), not one per line — a
    /// half-overwritten artifact can hold thousands of bad lines and
    /// must not bury the run's real output.
    ///
    /// # Errors
    ///
    /// Only real I/O errors (permission, disk) — never parse problems.
    pub fn load(path: &Path) -> io::Result<ResultCache> {
        Self::load_with_warner(path, &mut |msg| eprintln!("{msg}"))
    }

    /// [`load`](Self::load) with the warning sink made explicit, so
    /// tests (and embedders with their own logging) can observe exactly
    /// what would be printed. `warn` is invoked at most once per file.
    ///
    /// # Errors
    ///
    /// Only real I/O errors (permission, disk) — never parse problems.
    pub fn load_with_warner(path: &Path, warn: &mut dyn FnMut(&str)) -> io::Result<ResultCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(ResultCache::empty()),
            Err(e) => return Err(e),
        };
        let mut cache = ResultCache::empty();
        let mut first_bad: Option<(usize, String)> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match LoopRecord::from_json_line(line) {
                Ok(rec) => {
                    cache.loaded_lines += 1;
                    cache.map.insert(rec.key, rec);
                }
                Err(why) => {
                    cache.skipped_lines += 1;
                    if first_bad.is_none() {
                        first_bad = Some((lineno + 1, why));
                    }
                }
            }
        }
        if let Some((lineno, why)) = first_bad {
            warn(&format!(
                "swp-harness: skipped {} corrupt artifact line(s) in {} \
                 (first at line {lineno}: {why})",
                cache.skipped_lines,
                path.display()
            ));
        }
        Ok(cache)
    }

    /// Looks up a record by its fingerprint triple.
    pub fn lookup(&self, key: &CacheKey) -> Option<&LoopRecord> {
        self.map.get(key)
    }

    /// Inserts (or replaces, matching the loader's last-wins rule) a
    /// record under its own key. This is the live-update path for
    /// embedders that keep the cache hot in memory while appending the
    /// same records to the artifact — the `swpd` daemon serves repeat
    /// fingerprints from here without a disk round trip.
    pub fn insert(&mut self, record: LoopRecord) {
        self.map.insert(record.key, record);
    }

    /// Number of distinct cached records.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lines that failed to parse during [`load`](Self::load).
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Lines successfully loaded (before last-wins dedup).
    pub fn loaded_lines(&self) -> usize {
        self.loaded_lines
    }

    /// All cached records in corpus-index order — the rebuild path:
    /// table bins can reconstruct their buckets from the artifact alone,
    /// without re-solving anything.
    pub fn records_in_corpus_order(&self) -> Vec<&LoopRecord> {
        let mut v: Vec<&LoopRecord> = self.map.values().collect();
        v.sort_by_key(|r| r.index);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SuiteOutcome;
    use std::time::Duration;

    fn rec(i: usize, cfg: u64) -> LoopRecord {
        LoopRecord {
            index: i,
            name: format!("loop{i:04}"),
            num_nodes: 5,
            key: CacheKey {
                ddg: 1000 + i as u64,
                machine: 7,
                config: cfg,
            },
            t_lb: 2,
            t_lb_counting: 2,
            period: Some(2),
            outcome: SuiteOutcome::Scheduled {
                slack: 0,
                solved_by: swp_core::SolvedBy::Ilp,
            },
            proven: true,
            bb_nodes: 3,
            lp_iterations: 50,
            ticks: 60,
            periods_attempted: 1,
            races: 0,
            race_cp_wins: 0,
            race_ilp_wins: 0,
            any_timeout: false,
            reuse: Default::default(),
            solve_time: Duration::from_micros(10),
            cached: false,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("swp-harness-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        let c = ResultCache::load(&tmp("does-not-exist.jsonl")).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.skipped_lines(), 0);
    }

    #[test]
    fn loads_lines_skips_corruption_and_reorders() {
        let path = tmp("mixed.jsonl");
        let good0 = rec(0, 1).to_json_line();
        let good2 = rec(2, 1).to_json_line();
        let good1 = rec(1, 1).to_json_line();
        let truncated = &good0[..good0.len() / 2];
        let body = format!("{good2}\nnot json\n{good0}\n\n{truncated}\n{good1}\n");
        std::fs::write(&path, body).unwrap();

        let c = ResultCache::load(&path).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.skipped_lines(), 2);
        assert_eq!(c.loaded_lines(), 3);
        let order: Vec<usize> = c
            .records_in_corpus_order()
            .iter()
            .map(|r| r.index)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(c.lookup(&rec(1, 1).key).is_some());
        assert!(c.lookup(&rec(1, 999).key).is_none(), "config key mismatch");
    }

    #[test]
    fn many_corrupt_lines_warn_exactly_once_per_file() {
        let path = tmp("very-corrupt.jsonl");
        let good = rec(0, 1).to_json_line();
        let mut body = String::new();
        body.push_str("not json at all\n");
        body.push_str("{\"schema\":\"wrong\"}\n");
        body.push_str(&good[..good.len() / 3]); // truncated mid-write
        body.push('\n');
        body.push_str(&good);
        body.push('\n');
        body.push_str("}{ inverted\n");
        std::fs::write(&path, body).unwrap();

        let mut warnings: Vec<String> = Vec::new();
        let c =
            ResultCache::load_with_warner(&path, &mut |m| warnings.push(m.to_string())).unwrap();
        assert_eq!(c.len(), 1, "the one good line still loads");
        assert_eq!(c.skipped_lines(), 4);
        assert_eq!(
            warnings.len(),
            1,
            "4 corrupt lines must produce exactly one deduplicated warning, got: {warnings:?}"
        );
        assert!(warnings[0].contains("skipped 4 corrupt artifact line(s)"));
        assert!(
            warnings[0].contains("first at line 1"),
            "warning should locate the first bad line: {}",
            warnings[0]
        );
    }

    #[test]
    fn clean_artifact_warns_never() {
        let path = tmp("clean.jsonl");
        std::fs::write(&path, format!("{}\n", rec(0, 1).to_json_line())).unwrap();
        let mut warnings = 0usize;
        let c = ResultCache::load_with_warner(&path, &mut |_| warnings += 1).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(warnings, 0);
    }

    #[test]
    fn last_line_wins_on_duplicate_keys() {
        let path = tmp("dups.jsonl");
        let mut newer = rec(4, 1);
        newer.bb_nodes = 999;
        let body = format!("{}\n{}\n", rec(4, 1).to_json_line(), newer.to_json_line());
        std::fs::write(&path, body).unwrap();
        let c = ResultCache::load(&path).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&newer.key).unwrap().bb_nodes, 999);
    }
}
