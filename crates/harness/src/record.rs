//! Per-loop records, run configuration, and the JSONL artifact schema.
//!
//! One [`LoopRecord`] is produced per corpus loop and serialized as one
//! JSON line (see [`LoopRecord::to_json_line`] for the schema). The
//! triple [`CacheKey`] — DDG, machine, and config fingerprints — keys
//! the on-disk cache: a record is reusable exactly when all three match.
//!
//! # Wall-clock vs. solve time
//!
//! [`LoopRecord::solve_time`] is the *per-loop, on-thread* solve time:
//! the time the owning worker spent inside the scheduler for this loop.
//! The whole-run wall time lives on the run report instead
//! ([`RunReport::wall_time`]). With `W` workers the per-loop times sum
//! to roughly `W ×` the wall time; conflating the two (as the old
//! sequential runner did with its single `elapsed` field) makes parallel
//! speedup unmeasurable and skews the Table 5 time bins.
//!
//! [`RunReport::wall_time`]: crate::run::RunReport::wall_time

use crate::json::{parse_object, ObjectWriter};
use std::time::Duration;
use swp_core::{ConflictOracleMode, DataLayout, Engine, ReuseStats, SolvedBy};
use swp_loops::fingerprint::{from_hex, to_hex, Fnv64};

/// Schema version stamped into every artifact line. v2 added the
/// portfolio-race counters (`races`, `race_cp`, `race_ilp`); v3 added
/// the warm-sweep reuse counters (`reuse_*`).
pub const SCHEMA_VERSION: u64 = 3;

/// Configuration for a corpus run (the solve-side knobs; sharding and
/// artifact knobs live in [`HarnessConfig`]).
///
/// [`HarnessConfig`]: crate::run::HarnessConfig
#[derive(Debug, Clone)]
pub struct SuiteRunConfig {
    /// Number of loops (paper: 1066). Override with fewer for smoke runs.
    pub num_loops: usize,
    /// Per-period ILP wall-clock budget. `None` disables the per-period
    /// deadline — combine with [`per_loop_ticks`](Self::per_loop_ticks)
    /// for fully deterministic, machine-speed-independent runs.
    pub time_limit_per_t: Option<Duration>,
    /// Deterministic per-loop tick cap (simplex pivots + B&B nodes + IMS
    /// placements all count). `None` leaves ticks uncapped.
    pub per_loop_ticks: Option<u64>,
    /// Stop at `T_lb + span`.
    pub max_t_above_lb: u32,
    /// Let iterative modulo scheduling certify feasible periods
    /// (rate-optimality is unaffected; see `SchedulerConfig`).
    pub heuristic_incumbent: bool,
    /// Conflict-query engine: naive reservation-table scans or the
    /// precomputed hazard automaton ([`ConflictOracleMode`]). The two
    /// are decision-equivalent, so records fingerprint differently only
    /// to keep A/B comparisons honest about which engine produced them.
    pub conflict_oracle: ConflictOracleMode,
    /// Exact engine per candidate period: the unified ILP, the CP
    /// backend, or a portfolio race of both ([`Engine`]). All three are
    /// decision-equivalent on proven outcomes; like the oracle, the
    /// fingerprint still distinguishes them so A/B records never mix.
    pub engine: Engine,
    /// Warm-start each loop's `T`-sweep: carry the simplex basis, the
    /// IMS schedule hint, and the CP no-good store from period `T` into
    /// `T+1` (`SchedulerConfig::warm_sweep`). Decision-equivalent to a
    /// cold sweep — warm facts are hints re-validated before use — but
    /// fingerprinted anyway so warm-vs-cold A/B records never mix.
    pub warm: bool,
    /// Reservation-table cell layout for the IMS MRT and the collision
    /// checker (`SchedulerConfig::data_layout`). Decision-identical
    /// across layouts but fingerprinted, like the oracle and engine, so
    /// layout A/B records never mix.
    pub layout: DataLayout,
    /// Register-pressure cap (`SchedulerConfig::max_live`). Changes
    /// which periods are feasible, so it is part of the fingerprint:
    /// capped and uncapped sweeps never share cached records.
    pub max_live: Option<u32>,
}

impl Default for SuiteRunConfig {
    fn default() -> Self {
        SuiteRunConfig {
            num_loops: 1066,
            time_limit_per_t: Some(Duration::from_secs(3)),
            per_loop_ticks: None,
            max_t_above_lb: 8,
            heuristic_incumbent: true,
            conflict_oracle: ConflictOracleMode::default(),
            engine: Engine::default(),
            warm: true,
            layout: DataLayout::default(),
            max_live: None,
        }
    }
}

impl SuiteRunConfig {
    /// Stable fingerprint of every field that can change a loop's
    /// *outcome*. `num_loops` is deliberately excluded: a longer run
    /// over the same corpus prefix must be able to reuse cached records.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(SCHEMA_VERSION);
        h.write_u64(match self.time_limit_per_t {
            Some(d) => d.as_millis() as u64,
            None => u64::MAX,
        });
        h.write_u64(self.per_loop_ticks.unwrap_or(u64::MAX));
        h.write_u64(u64::from(self.max_t_above_lb));
        h.write_u64(u64::from(self.heuristic_incumbent));
        h.write_u64(match self.conflict_oracle {
            ConflictOracleMode::Scan => 0,
            ConflictOracleMode::Automaton => 1,
        });
        h.write_u64(match self.engine {
            Engine::Ilp => 0,
            Engine::Cp => 1,
            Engine::Portfolio => 2,
        });
        h.write_u64(u64::from(self.warm));
        h.write_u64(match self.layout {
            DataLayout::Legacy => 0,
            DataLayout::Flat => 1,
        });
        h.write_u64(self.max_live.map_or(u64::MAX, u64::from));
        h.finish()
    }
}

/// Warm-sweep reuse telemetry carried on each record (schema v3): what
/// the warm-started `T`-sweep actually reused while solving this loop.
/// All zeros under a cold configuration ([`SuiteRunConfig::warm`]
/// off); `replays` and `cone_nodes` are only filled by callers that
/// host incremental sessions (the daemon), never by the corpus sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecordReuse {
    /// Root LPs crash-started from the previous period's simplex basis.
    pub basis_hits: u64,
    /// CP no-good clauses replayed from the carried store.
    pub nogood_replays: u64,
    /// IMS probes settled by validating the carried schedule hint.
    pub ims_hint_hits: u64,
    /// Sweep periods skipped on carried (proven) refutations.
    pub periods_skipped: u64,
    /// Whole solves answered by replaying a cached session result.
    pub replays: u64,
    /// Total size of dependency cones invalidated by session edits.
    pub cone_nodes: u64,
}

impl RecordReuse {
    /// Whether any reuse happened at all.
    pub fn any(&self) -> bool {
        *self != RecordReuse::default()
    }

    /// Adds `other`'s counters into `self` (all fields are additive).
    pub fn absorb(&mut self, other: &RecordReuse) {
        self.basis_hits += other.basis_hits;
        self.nogood_replays += other.nogood_replays;
        self.ims_hint_hits += other.ims_hint_hits;
        self.periods_skipped += other.periods_skipped;
        self.replays += other.replays;
        self.cone_nodes += other.cone_nodes;
    }
}

impl From<&ReuseStats> for RecordReuse {
    fn from(r: &ReuseStats) -> RecordReuse {
        RecordReuse {
            basis_hits: r.basis_hits,
            nogood_replays: r.nogood_replays,
            ims_hint_hits: r.ims_hint_hits,
            periods_skipped: r.periods_skipped,
            replays: r.replays,
            cone_nodes: r.cone_nodes,
        }
    }
}

/// The cache key: a record is reusable iff the loop, the machine, and
/// the outcome-relevant config all fingerprint identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`swp_loops::fingerprint::ddg_fingerprint`] of the loop.
    pub ddg: u64,
    /// [`swp_loops::fingerprint::machine_fingerprint`] of the target.
    pub machine: u64,
    /// [`SuiteRunConfig::fingerprint`] of the solve configuration.
    pub config: u64,
}

/// What happened to one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteOutcome {
    /// Scheduled at `T_lb + slack`.
    Scheduled {
        /// Achieved slack above the (packing-refined) lower bound.
        slack: u32,
        /// Engine that found the schedule at the final period.
        solved_by: SolvedBy,
    },
    /// Every period in range failed or timed out.
    Unscheduled,
}

/// Per-loop record of a corpus run — the JSONL artifact line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// Index of the loop in the corpus (artifact lines may appear out of
    /// completion order; this restores corpus order).
    pub index: usize,
    /// Loop name from the generator.
    pub name: String,
    /// DDG node count.
    pub num_nodes: usize,
    /// Cache key of this record.
    pub key: CacheKey,
    /// `T_lb` of the loop (with the packing-refined `T_res`).
    pub t_lb: u32,
    /// `T_lb` under the paper's counting `T_res` — what the paper's
    /// Table 4 buckets against.
    pub t_lb_counting: u32,
    /// Achieved initiation interval (if scheduled).
    pub period: Option<u32>,
    /// Outcome class.
    pub outcome: SuiteOutcome,
    /// Whether every smaller period was refuted exactly (proven optimal).
    pub proven: bool,
    /// Branch-and-bound nodes over all periods.
    pub bb_nodes: u64,
    /// Simplex iterations over all periods.
    pub lp_iterations: u64,
    /// Budget ticks consumed by this loop's solve (pivots + B&B nodes +
    /// IMS placements). Exact and deterministic when the harness runs
    /// with isolated per-loop budgets (the default).
    pub ticks: u64,
    /// Candidate periods attempted.
    pub periods_attempted: u32,
    /// Portfolio races run (0 outside portfolio mode).
    pub races: u32,
    /// Races the CP backend settled first.
    pub race_cp_wins: u32,
    /// Races the ILP settled first.
    pub race_ilp_wins: u32,
    /// Whether any attempted period timed out undecided.
    pub any_timeout: bool,
    /// Warm-sweep reuse counters (all zeros under a cold config).
    pub reuse: RecordReuse,
    /// Per-loop on-thread solve time (see the module docs; zeroed when
    /// the harness runs with timing recording off).
    pub solve_time: Duration,
    /// Whether this record was served from the on-disk cache rather than
    /// solved in this run. Runtime-only: never serialized, so a cached
    /// record's JSON line is byte-identical to the cold solve's.
    pub cached: bool,
}

impl LoopRecord {
    /// Serializes the record as one artifact line (no trailing newline).
    ///
    /// Schema (`v` = [`SCHEMA_VERSION`]):
    ///
    /// ```json
    /// {"v":3,"idx":7,"name":"loop0007","nodes":9,
    ///  "ddg_fp":"9f…16 hex…","mach_fp":"…","cfg_fp":"…",
    ///  "t_lb":4,"t_lb_counting":4,"status":"scheduled",
    ///  "period":4,"slack":0,"solved_by":"heuristic","proven":true,
    ///  "bb_nodes":0,"lp_iters":0,"ticks":151,"periods":1,
    ///  "races":0,"race_cp":0,"race_ilp":0,"timeout":false,
    ///  "reuse_basis":0,"reuse_nogoods":0,"reuse_hints":1,
    ///  "reuse_skips":0,"reuse_replays":0,"reuse_cone":0,
    ///  "solve_us":423}
    /// ```
    ///
    /// `period`, `slack`, and `solved_by` are `null` for `"unscheduled"`
    /// records; fingerprints are fixed-width lowercase hex.
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.u64("v", SCHEMA_VERSION)
            .u64("idx", self.index as u64)
            .str("name", &self.name)
            .u64("nodes", self.num_nodes as u64)
            .str("ddg_fp", &to_hex(self.key.ddg))
            .str("mach_fp", &to_hex(self.key.machine))
            .str("cfg_fp", &to_hex(self.key.config))
            .u64("t_lb", u64::from(self.t_lb))
            .u64("t_lb_counting", u64::from(self.t_lb_counting));
        match &self.outcome {
            SuiteOutcome::Scheduled { slack, solved_by } => {
                w.str("status", "scheduled")
                    .opt_u64("period", self.period.map(u64::from))
                    .u64("slack", u64::from(*slack))
                    .str(
                        "solved_by",
                        match solved_by {
                            SolvedBy::Ilp => "ilp",
                            SolvedBy::Cp => "cp",
                            SolvedBy::Heuristic => "heuristic",
                        },
                    );
            }
            SuiteOutcome::Unscheduled => {
                w.str("status", "unscheduled")
                    .null("period")
                    .null("slack")
                    .null("solved_by");
            }
        }
        w.bool("proven", self.proven)
            .u64("bb_nodes", self.bb_nodes)
            .u64("lp_iters", self.lp_iterations)
            .u64("ticks", self.ticks)
            .u64("periods", u64::from(self.periods_attempted))
            .u64("races", u64::from(self.races))
            .u64("race_cp", u64::from(self.race_cp_wins))
            .u64("race_ilp", u64::from(self.race_ilp_wins))
            .bool("timeout", self.any_timeout)
            .u64("reuse_basis", self.reuse.basis_hits)
            .u64("reuse_nogoods", self.reuse.nogood_replays)
            .u64("reuse_hints", self.reuse.ims_hint_hits)
            .u64("reuse_skips", self.reuse.periods_skipped)
            .u64("reuse_replays", self.reuse.replays)
            .u64("reuse_cone", self.reuse.cone_nodes)
            .u64("solve_us", self.solve_time.as_micros() as u64);
        w.finish()
    }

    /// Parses one artifact line back into a record (`cached` is `false`).
    ///
    /// # Errors
    ///
    /// A description of what is malformed — bad JSON, a missing or
    /// mistyped field, an unknown status, a schema-version mismatch. The
    /// cache loader downgrades these to a warning and skips the line.
    pub fn from_json_line(line: &str) -> Result<LoopRecord, String> {
        let m = parse_object(line)?;
        let field = |k: &str| m.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("field `{k}` is not an integer"))
        };
        let text = |k: &str| {
            field(k)?
                .as_str()
                .ok_or_else(|| format!("field `{k}` is not a string"))
        };
        let flag = |k: &str| {
            field(k)?
                .as_bool()
                .ok_or_else(|| format!("field `{k}` is not a bool"))
        };
        let fp = |k: &str| {
            from_hex(text(k)?).ok_or_else(|| format!("field `{k}` is not a 16-hex fingerprint"))
        };

        let v = num("v")?;
        if v != SCHEMA_VERSION {
            return Err(format!("schema version {v}, expected {SCHEMA_VERSION}"));
        }
        let status = text("status")?;
        let (outcome, period) = match status {
            "scheduled" => {
                let slack = num("slack")? as u32;
                let solved_by = match text("solved_by")? {
                    "ilp" => SolvedBy::Ilp,
                    "cp" => SolvedBy::Cp,
                    "heuristic" => SolvedBy::Heuristic,
                    other => return Err(format!("unknown engine `{other}`")),
                };
                let period = num("period")? as u32;
                (SuiteOutcome::Scheduled { slack, solved_by }, Some(period))
            }
            "unscheduled" => (SuiteOutcome::Unscheduled, None),
            other => return Err(format!("unknown status `{other}`")),
        };
        Ok(LoopRecord {
            index: num("idx")? as usize,
            name: text("name")?.to_string(),
            num_nodes: num("nodes")? as usize,
            key: CacheKey {
                ddg: fp("ddg_fp")?,
                machine: fp("mach_fp")?,
                config: fp("cfg_fp")?,
            },
            t_lb: num("t_lb")? as u32,
            t_lb_counting: num("t_lb_counting")? as u32,
            period,
            outcome,
            proven: flag("proven")?,
            bb_nodes: num("bb_nodes")?,
            lp_iterations: num("lp_iters")?,
            ticks: num("ticks")?,
            periods_attempted: num("periods")? as u32,
            races: num("races")? as u32,
            race_cp_wins: num("race_cp")? as u32,
            race_ilp_wins: num("race_ilp")? as u32,
            any_timeout: flag("timeout")?,
            reuse: RecordReuse {
                basis_hits: num("reuse_basis")?,
                nogood_replays: num("reuse_nogoods")?,
                ims_hint_hits: num("reuse_hints")?,
                periods_skipped: num("reuse_skips")?,
                replays: num("reuse_replays")?,
                cone_nodes: num("reuse_cone")?,
            },
            solve_time: Duration::from_micros(num("solve_us")?),
            cached: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scheduled: bool) -> LoopRecord {
        LoopRecord {
            index: 7,
            name: "loop0007".into(),
            num_nodes: 9,
            key: CacheKey {
                ddg: 0x1234_5678_9abc_def0,
                machine: 42,
                config: u64::MAX,
            },
            t_lb: 4,
            t_lb_counting: 4,
            period: scheduled.then_some(4),
            outcome: if scheduled {
                SuiteOutcome::Scheduled {
                    slack: 0,
                    solved_by: SolvedBy::Heuristic,
                }
            } else {
                SuiteOutcome::Unscheduled
            },
            proven: scheduled,
            bb_nodes: 12,
            lp_iterations: 340,
            ticks: 151,
            periods_attempted: 1,
            races: 0,
            race_cp_wins: 0,
            race_ilp_wins: 0,
            any_timeout: !scheduled,
            reuse: RecordReuse {
                basis_hits: 2,
                nogood_replays: 1,
                ims_hint_hits: 3,
                periods_skipped: 1,
                replays: 0,
                cone_nodes: 4,
            },
            solve_time: Duration::from_micros(423),
            cached: false,
        }
    }

    #[test]
    fn json_round_trips_both_outcomes() {
        for scheduled in [true, false] {
            let r = sample(scheduled);
            let line = r.to_json_line();
            let back = LoopRecord::from_json_line(&line).expect("round trip");
            assert_eq!(back, r);
            // Serialization is canonical: re-serializing reproduces the line.
            assert_eq!(back.to_json_line(), line);
        }
    }

    #[test]
    fn cached_flag_is_not_serialized() {
        let mut r = sample(true);
        let cold = r.to_json_line();
        r.cached = true;
        assert_eq!(r.to_json_line(), cold);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let line = sample(true).to_json_line().replace("\"v\":3", "\"v\":99");
        assert!(LoopRecord::from_json_line(&line)
            .unwrap_err()
            .contains("schema version"));
    }

    #[test]
    fn truncated_and_mistyped_lines_are_rejected() {
        let line = sample(true).to_json_line();
        assert!(LoopRecord::from_json_line(&line[..line.len() / 2]).is_err());
        let bad = line.replace("\"t_lb\":4", "\"t_lb\":\"four\"");
        assert!(LoopRecord::from_json_line(&bad).is_err());
        let missing = line.replace("\"proven\":true,", "");
        assert!(LoopRecord::from_json_line(&missing)
            .unwrap_err()
            .contains("proven"));
    }

    #[test]
    fn config_fingerprint_tracks_outcome_relevant_fields_only() {
        let base = SuiteRunConfig::default();
        let fp = base.fingerprint();
        assert_eq!(fp, SuiteRunConfig::default().fingerprint());
        // num_loops must NOT change the key (prefix reuse).
        let more = SuiteRunConfig {
            num_loops: 9999,
            ..base.clone()
        };
        assert_eq!(fp, more.fingerprint());
        // Every outcome-relevant knob must.
        let variants = [
            SuiteRunConfig {
                time_limit_per_t: None,
                ..base.clone()
            },
            SuiteRunConfig {
                per_loop_ticks: Some(1000),
                ..base.clone()
            },
            SuiteRunConfig {
                max_t_above_lb: 2,
                ..base.clone()
            },
            SuiteRunConfig {
                heuristic_incumbent: false,
                ..base.clone()
            },
            SuiteRunConfig {
                conflict_oracle: ConflictOracleMode::Automaton,
                ..base.clone()
            },
            SuiteRunConfig {
                engine: Engine::Cp,
                ..base.clone()
            },
            SuiteRunConfig {
                engine: Engine::Portfolio,
                ..base.clone()
            },
            SuiteRunConfig {
                warm: false,
                ..base.clone()
            },
            SuiteRunConfig {
                layout: DataLayout::Legacy,
                ..base.clone()
            },
            SuiteRunConfig {
                max_live: Some(4),
                ..base.clone()
            },
        ];
        for v in variants {
            assert_ne!(fp, v.fingerprint(), "{v:?}");
        }
    }
}
