//! The harness's headline guarantee: a parallel run is bit-identical to
//! the sequential one.
//!
//! The runs here are configured for exact reproducibility — no
//! wall-clock deadlines (`time_limit_per_t: None`), a deterministic
//! per-loop tick cap, and timing recording off so `solve_us` is zero —
//! and then compared **serialized**: the JSONL line sequences of 1-, 4-,
//! and 8-worker runs over the same 64-loop corpus must match byte for
//! byte, and the Table-4 slack buckets derived from them must agree.

use std::collections::BTreeMap;
use std::time::Duration;
use swp_harness::{
    ConflictOracleMode, Harness, HarnessConfig, LoopRecord, NullSink, SuiteOutcome, SuiteRunConfig,
};
use swp_loops::suite::{generate, GeneratedLoop, SuiteConfig};
use swp_machine::Machine;

fn corpus(n: usize) -> Vec<GeneratedLoop> {
    generate(&SuiteConfig {
        num_loops: n,
        ..SuiteConfig::pldi95_default()
    })
}

/// A fully deterministic solve configuration: tick-capped, no deadlines.
fn deterministic_solve() -> SuiteRunConfig {
    SuiteRunConfig {
        num_loops: 64,
        time_limit_per_t: None,
        per_loop_ticks: Some(50_000),
        max_t_above_lb: 8,
        heuristic_incumbent: true,
        conflict_oracle: ConflictOracleMode::Scan,
        engine: Default::default(),
        warm: true,
        layout: Default::default(),
        max_live: None,
    }
}

fn run_with_oracle(
    loops: &[GeneratedLoop],
    workers: usize,
    oracle: ConflictOracleMode,
) -> Vec<LoopRecord> {
    let harness = Harness::new(
        Machine::example_pldi95(),
        SuiteRunConfig {
            conflict_oracle: oracle,
            ..deterministic_solve()
        },
        HarnessConfig {
            workers,
            record_timing: false,
            ..HarnessConfig::default()
        },
    );
    let report = harness
        .run(loops, &mut NullSink)
        .expect("artifact-less run");
    assert!(!report.interrupted);
    report.records
}

fn run_with_workers(loops: &[GeneratedLoop], workers: usize) -> Vec<LoopRecord> {
    run_with_oracle(loops, workers, ConflictOracleMode::Scan)
}

/// Table-4 bucketing: slack above the counting `T_lb` → (count, nodes).
fn table4_buckets(records: &[LoopRecord]) -> BTreeMap<Option<u32>, (usize, usize)> {
    let mut buckets = BTreeMap::new();
    for r in records {
        let slack = match (&r.outcome, r.period) {
            (SuiteOutcome::Scheduled { .. }, Some(p)) => Some(p.saturating_sub(r.t_lb_counting)),
            _ => None,
        };
        let e = buckets.entry(slack).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.num_nodes;
    }
    buckets
}

#[test]
fn worker_count_does_not_change_the_records() {
    let loops = corpus(64);
    let sequential = run_with_workers(&loops, 1);
    assert_eq!(sequential.len(), 64);

    let seq_lines: Vec<String> = sequential.iter().map(LoopRecord::to_json_line).collect();
    let seq_buckets = table4_buckets(&sequential);
    // The corpus must exercise more than one bucket for the bucket
    // comparison to mean anything.
    assert!(seq_buckets.values().map(|(c, _)| c).sum::<usize>() == 64);

    for workers in [4usize, 8] {
        let parallel = run_with_workers(&loops, workers);
        let par_lines: Vec<String> = parallel.iter().map(LoopRecord::to_json_line).collect();
        assert_eq!(
            par_lines, seq_lines,
            "{workers}-worker record sequence differs from sequential"
        );
        assert_eq!(
            table4_buckets(&parallel),
            seq_buckets,
            "{workers}-worker Table-4 buckets differ from sequential"
        );
    }
}

#[test]
fn automaton_oracle_is_deterministic_and_outcome_identical_to_scan() {
    // The hazard-automaton oracle must (a) keep the worker-count
    // bit-identity guarantee, and (b) produce records whose outcomes
    // match the scan oracle's line for line (only the config
    // fingerprint, which names the oracle, may differ).
    let loops = corpus(64);
    let scan = run_with_oracle(&loops, 1, ConflictOracleMode::Scan);
    let seq = run_with_oracle(&loops, 1, ConflictOracleMode::Automaton);
    assert_eq!(seq.len(), 64);

    let lines = |v: &[LoopRecord]| v.iter().map(LoopRecord::to_json_line).collect::<Vec<_>>();
    let seq_lines = lines(&seq);
    for workers in [4usize, 8] {
        let par = run_with_oracle(&loops, workers, ConflictOracleMode::Automaton);
        assert_eq!(
            lines(&par),
            seq_lines,
            "{workers}-worker automaton run differs from sequential"
        );
    }

    for (s, a) in scan.iter().zip(&seq) {
        assert_eq!(s.outcome, a.outcome, "loop {}", s.name);
        assert_eq!(s.period, a.period, "loop {}", s.name);
        assert_eq!(s.t_lb, a.t_lb, "loop {}", s.name);
        assert_eq!(s.proven, a.proven, "loop {}", s.name);
        assert_eq!(s.ticks, a.ticks, "loop {}", s.name);
    }
    assert_eq!(table4_buckets(&scan), table4_buckets(&seq));
}

#[test]
fn repeated_runs_are_identical_too() {
    // Same-worker-count reproducibility — the baseline the cross-count
    // comparison implicitly relies on.
    let loops = corpus(24);
    let a = run_with_workers(&loops, 4);
    let b = run_with_workers(&loops, 4);
    let lines = |v: &[LoopRecord]| v.iter().map(LoopRecord::to_json_line).collect::<Vec<_>>();
    assert_eq!(lines(&a), lines(&b));
}

#[test]
fn per_loop_ticks_are_recorded_and_deterministic() {
    // Tick accounting is per-loop exact under isolated budgets: the
    // per-record tick counts must match across worker counts (this is
    // implied by the byte-identity test but pinned separately so a
    // regression points straight at budget isolation).
    let loops = corpus(16);
    let seq = run_with_workers(&loops, 1);
    let par = run_with_workers(&loops, 8);
    let ticks = |v: &[LoopRecord]| v.iter().map(|r| r.ticks).collect::<Vec<_>>();
    assert_eq!(ticks(&seq), ticks(&par));
    // And some loop actually did work.
    assert!(seq.iter().any(|r| r.ticks > 0));
}

#[test]
fn deterministic_runs_zero_their_solve_times() {
    let loops = corpus(4);
    let recs = run_with_workers(&loops, 2);
    assert!(recs.iter().all(|r| r.solve_time == Duration::ZERO));
}
