//! Cache correctness: a cache hit must be indistinguishable from a cold
//! solve, stale fingerprints must miss, and a damaged artifact must
//! degrade to warnings, never to a panic or a wrong record.

use std::path::{Path, PathBuf};
use std::time::Duration;
use swp_harness::{
    Harness, HarnessConfig, LoopRecord, NullSink, RunReport, SuiteRunConfig, VecSink,
};
use swp_loops::suite::{generate, GeneratedLoop, SuiteConfig};
use swp_machine::Machine;

fn corpus(n: usize) -> Vec<GeneratedLoop> {
    generate(&SuiteConfig {
        num_loops: n,
        ..SuiteConfig::pldi95_default()
    })
}

fn solve_cfg() -> SuiteRunConfig {
    SuiteRunConfig {
        num_loops: 32,
        time_limit_per_t: None,
        per_loop_ticks: Some(50_000),
        max_t_above_lb: 8,
        heuristic_incumbent: true,
        conflict_oracle: Default::default(),
        engine: Default::default(),
        warm: true,
        layout: Default::default(),
        max_live: None,
    }
}

fn harness(solve: SuiteRunConfig, config: HarnessConfig) -> Harness {
    Harness::new(Machine::example_pldi95(), solve, config)
}

/// A scratch artifact path unique to this test process.
fn artifact(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swp-harness-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

fn run_to_artifact(
    loops: &[GeneratedLoop],
    solve: SuiteRunConfig,
    path: &Path,
    resume: bool,
) -> RunReport {
    harness(
        solve,
        HarnessConfig {
            artifact: Some(path.to_path_buf()),
            resume,
            record_timing: false,
            ..HarnessConfig::default()
        },
    )
    .run(loops, &mut NullSink)
    .expect("run")
}

#[test]
fn a_cache_hit_reproduces_the_cold_outcome() {
    let loops = corpus(12);
    let path = artifact("hit.jsonl");
    let cold = run_to_artifact(&loops, solve_cfg(), &path, false);
    assert_eq!(cold.fresh_solves, 12);
    assert_eq!(cold.cache_hits, 0);

    let warm = run_to_artifact(&loops, solve_cfg(), &path, true);
    assert_eq!(warm.cache_hits, 12);
    assert_eq!(warm.fresh_solves, 0);

    // Same outcomes, serialized byte for byte (cached is runtime-only).
    let lines = |r: &RunReport| {
        r.records
            .iter()
            .map(LoopRecord::to_json_line)
            .collect::<Vec<_>>()
    };
    assert_eq!(lines(&cold), lines(&warm));
    assert!(warm.records.iter().all(|r| r.cached));
    assert!(cold.records.iter().all(|r| !r.cached));
}

#[test]
fn a_changed_machine_invalidates_the_cache() {
    let loops = corpus(6);
    let path = artifact("machine.jsonl");
    run_to_artifact(&loops, solve_cfg(), &path, false);

    // Same loops, same config, different machine: every lookup must miss.
    let report = Harness::new(
        Machine::ppc604(),
        solve_cfg(),
        HarnessConfig {
            artifact: Some(path.clone()),
            resume: true,
            record_timing: false,
            ..HarnessConfig::default()
        },
    )
    .run(&loops, &mut NullSink)
    .expect("run");
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.fresh_solves, 6);
}

#[test]
fn a_changed_config_invalidates_the_cache() {
    let loops = corpus(6);
    let path = artifact("config.jsonl");
    run_to_artifact(&loops, solve_cfg(), &path, false);

    let tighter = SuiteRunConfig {
        max_t_above_lb: 2,
        ..solve_cfg()
    };
    let report = run_to_artifact(&loops, tighter, &path, true);
    assert_eq!(
        report.cache_hits, 0,
        "different config fingerprint must miss"
    );
    assert_eq!(report.fresh_solves, 6);
}

#[test]
fn corrupted_artifact_lines_are_skipped_not_fatal() {
    let loops = corpus(8);
    let path = artifact("corrupt.jsonl");
    run_to_artifact(&loops, solve_cfg(), &path, false);

    // Damage the artifact: garbage line, truncated line, empty line.
    let text = std::fs::read_to_string(&path).expect("artifact");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 8);
    let half = lines[5].len() / 2;
    lines[5].truncate(half); // simulates a kill mid-write
    lines.insert(2, "{not even json".to_string());
    lines.insert(0, String::new());
    std::fs::write(&path, lines.join("\n")).expect("rewrite");

    let report = run_to_artifact(&loops, solve_cfg(), &path, true);
    // 7 intact records serve as hits; the truncated one re-solves.
    assert_eq!(report.cache_hits, 7);
    assert_eq!(report.fresh_solves, 1);
    assert_eq!(
        report.skipped_lines, 2,
        "garbage + truncated, not the empty line"
    );
    assert_eq!(report.records.len(), 8);
}

#[test]
fn resume_completes_a_partial_run_without_resolving() {
    // The satellite scenario end-to-end: solve the first 16, then run the
    // full 32 with --resume; the first half must come from the cache (the
    // corpus generator is prefix-stable, which this test also pins).
    let all = corpus(32);
    let first_half = &all[..16];
    let path = artifact("resume.jsonl");
    let partial = run_to_artifact(first_half, solve_cfg(), &path, false);
    assert_eq!(partial.fresh_solves, 16);

    let full = run_to_artifact(&all, solve_cfg(), &path, true);
    assert_eq!(full.cache_hits, 16);
    assert_eq!(full.fresh_solves, 16);
    assert_eq!(full.records.len(), 32);
    for (i, r) in full.records.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.cached, i < 16);
    }

    // The artifact now covers the whole corpus: a third run is all hits.
    let third = run_to_artifact(&all, solve_cfg(), &path, true);
    assert_eq!(third.cache_hits, 32);
    assert_eq!(third.fresh_solves, 0);
}

#[test]
fn without_resume_the_artifact_is_truncated_and_cold() {
    let loops = corpus(5);
    let path = artifact("truncate.jsonl");
    run_to_artifact(&loops, solve_cfg(), &path, false);
    let report = run_to_artifact(&loops, solve_cfg(), &path, false);
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.fresh_solves, 5);
    let text = std::fs::read_to_string(&path).expect("artifact");
    assert_eq!(text.lines().count(), 5, "create mode must truncate");
}

#[test]
fn sinks_see_cached_records_flagged() {
    let loops = corpus(4);
    let path = artifact("sinkflag.jsonl");
    run_to_artifact(&loops, solve_cfg(), &path, false);

    let mut sink = VecSink::default();
    harness(
        solve_cfg(),
        HarnessConfig {
            artifact: Some(path.clone()),
            resume: true,
            record_timing: false,
            ..HarnessConfig::default()
        },
    )
    .run(&loops, &mut sink)
    .expect("run");
    assert_eq!(sink.records.len(), 4);
    assert!(sink.records.iter().all(|r| r.cached));
    assert!(sink.records.iter().all(|r| r.solve_time == Duration::ZERO));
}
