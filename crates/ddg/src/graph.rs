//! The dependence-graph data structure.

use std::error::Error;
use std::fmt;

/// Identifies a function-unit *class* (e.g. "FP", "Load/Store", "Integer").
///
/// The mapping from classes to physical function units, latencies, and
/// reservation tables lives in `swp-machine`; the DDG only records which
/// class each instruction needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct OpClass(usize);

impl OpClass {
    /// Creates a class from its index in the machine description.
    pub const fn new(index: usize) -> Self {
        OpClass(index)
    }

    /// Index of the class in the machine description.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Identifies a node (instruction) of a [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of the node in creation order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from an index previously obtained via
    /// [`NodeId::index`]. The caller must ensure the index belongs to the
    /// graph it will be used with.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

/// Identifies an edge (dependence) of a [`Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Index of the edge in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An instruction in the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Human-readable name (e.g. `"i2"` or `"fmul t3, t1, t2"`).
    pub name: String,
    /// Function-unit class the instruction executes on.
    pub class: OpClass,
    /// Latency `d_i`: cycles before a dependent instruction may start.
    pub latency: u32,
}

/// A dependence `(src, dst)` with iteration distance `m_ij`.
///
/// `dst` of iteration `j + distance` must start at least
/// `latency(src)` cycles after `src` of iteration `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producing instruction.
    pub src: NodeId,
    /// Consuming instruction.
    pub dst: NodeId,
    /// Iteration distance `m_ij` (0 = intra-iteration).
    pub distance: u32,
}

/// Errors raised while building or analyzing a [`Ddg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgError {
    /// An edge referenced a node id not in this graph.
    UnknownNode(NodeId),
    /// A dependence cycle has total distance zero, so no schedule of any
    /// period can satisfy it (it would require an instruction to precede
    /// itself within one iteration).
    ZeroDistanceCycle(Vec<NodeId>),
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::UnknownNode(n) => write!(f, "unknown node id {}", n.0),
            DdgError::ZeroDistanceCycle(c) => write!(
                f,
                "dependence cycle with zero total distance through {} nodes",
                c.len()
            ),
        }
    }
}

impl Error for DdgError {}

/// A data-dependence graph for one loop body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ddg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Ddg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an instruction and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, class: OpClass, latency: u32) -> NodeId {
        self.nodes.push(Node {
            name: name.into(),
            class,
            latency,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a dependence edge.
    ///
    /// # Errors
    ///
    /// [`DdgError::UnknownNode`] if either endpoint is not in this graph.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        distance: u32,
    ) -> Result<EdgeId, DdgError> {
        for n in [src, dst] {
            if n.0 >= self.nodes.len() {
                return Err(DdgError::UnknownNode(n));
            }
        }
        self.edges.push(Edge { src, dst, distance });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Number of instructions.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of dependences.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The instruction behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The dependence behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this graph.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Iterates over `(NodeId, &Node)` in creation order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterates over all dependences.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Successors of `n` as `(dst, distance)` pairs.
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.src == n)
            .map(|e| (e.dst, e.distance))
    }

    /// Nodes of the given class, in creation order.
    pub fn nodes_of_class(&self, class: OpClass) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.class == class)
            .map(|(id, _)| id)
            .collect()
    }

    /// All distinct classes appearing in this graph, ascending.
    pub fn classes(&self) -> Vec<OpClass> {
        let mut v: Vec<OpClass> = self.nodes.iter().map(|n| n.class).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Sum of latencies of all instructions (a crude schedule-length cap).
    pub fn total_latency(&self) -> u32 {
        self.nodes.iter().map(|n| n.latency).sum()
    }

    /// Checks the structural invariants: every cycle carries distance.
    ///
    /// # Errors
    ///
    /// [`DdgError::ZeroDistanceCycle`] if some dependence cycle has total
    /// distance zero — such a loop can never be scheduled.
    pub fn validate(&self) -> Result<(), DdgError> {
        // Restrict to distance-0 edges; any cycle there is a zero-distance
        // cycle. Detect with an iterative DFS.
        let n = self.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            if e.distance == 0 {
                adj[e.src.0].push(e.dst.0);
            }
        }
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            state[start] = 1;
            let mut path = vec![start];
            while let Some(&(v, i)) = stack.last() {
                if i < adj[v].len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let w = adj[v][i];
                    match state[w] {
                        0 => {
                            state[w] = 1;
                            stack.push((w, 0));
                            path.push(w);
                        }
                        1 => {
                            let pos = path.iter().position(|&x| x == w).unwrap_or(0);
                            return Err(DdgError::ZeroDistanceCycle(
                                path[pos..].iter().map(|&x| NodeId(x)).collect(),
                            ));
                        }
                        _ => {}
                    }
                } else {
                    state[v] = 2;
                    stack.pop();
                    path.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (Ddg, Vec<NodeId>) {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(0), 1);
        let b = g.add_node("b", OpClass::new(1), 2);
        let c = g.add_node("c", OpClass::new(0), 3);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 0).unwrap();
        (g, vec![a, b, c])
    }

    #[test]
    fn build_and_query() {
        let (g, ids) = chain3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.node(ids[1]).name, "b");
        assert_eq!(g.node(ids[1]).latency, 2);
        assert_eq!(g.successors(ids[0]).collect::<Vec<_>>(), vec![(ids[1], 0)]);
        assert_eq!(g.total_latency(), 6);
    }

    #[test]
    fn classes_are_deduped_sorted() {
        let (g, _) = chain3();
        assert_eq!(g.classes(), vec![OpClass::new(0), OpClass::new(1)]);
        assert_eq!(g.nodes_of_class(OpClass::new(0)).len(), 2);
    }

    #[test]
    fn edge_to_unknown_node_rejected() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(0), 1);
        let bogus = NodeId(7);
        assert_eq!(
            g.add_edge(a, bogus, 0).unwrap_err(),
            DdgError::UnknownNode(bogus)
        );
    }

    #[test]
    fn zero_distance_cycle_detected() {
        let (mut g, ids) = chain3();
        g.add_edge(ids[2], ids[0], 0).unwrap();
        assert!(matches!(g.validate(), Err(DdgError::ZeroDistanceCycle(_))));
    }

    #[test]
    fn carried_cycle_is_fine() {
        let (mut g, ids) = chain3();
        g.add_edge(ids[2], ids[0], 1).unwrap();
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn self_loop_with_distance_ok_without_not() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(0), 1);
        g.add_edge(a, a, 2).unwrap();
        assert_eq!(g.validate(), Ok(()));
        g.add_edge(a, a, 0).unwrap();
        assert!(g.validate().is_err());
    }
}
