//! Strongly connected components (iterative Tarjan).

use crate::graph::{Ddg, NodeId};

/// Computes the strongly connected components of `g`.
///
/// Components are returned in reverse topological order (Tarjan's order);
/// each component lists node ids in discovery order. Singleton nodes
/// without self-loops form their own components.
///
/// ```
/// use swp_ddg::{sccs, Ddg, OpClass};
/// let mut g = Ddg::new();
/// let a = g.add_node("a", OpClass::new(0), 1);
/// let b = g.add_node("b", OpClass::new(0), 1);
/// g.add_edge(a, b, 0).unwrap();
/// g.add_edge(b, a, 1).unwrap();
/// assert_eq!(sccs(&g).len(), 1);
/// ```
pub fn sccs(g: &Ddg) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut adj = vec![Vec::new(); n];
    for e in g.edges() {
        adj[e.src.index()].push(e.dst.index());
    }

    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        // Iterative Tarjan: (node, next child position).
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&(v, ci)) = call.last() {
            if ci < adj[v].len() {
                call.last_mut().expect("nonempty").1 += 1;
                let w = adj[v][ci];
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        on_stack[w] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Components that contain a dependence cycle: more than one node, or a
/// single node with a self-edge. Only these constrain `T_dep`.
pub fn cyclic_sccs(g: &Ddg) -> Vec<Vec<NodeId>> {
    sccs(g)
        .into_iter()
        .filter(|comp| comp.len() > 1 || g.edges().any(|e| e.src == comp[0] && e.dst == comp[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpClass;

    fn graph() -> (Ddg, Vec<NodeId>) {
        // a -> b -> c -> a (one SCC), d -> e (two singletons)
        let mut g = Ddg::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(format!("n{i}"), OpClass::new(0), 1))
            .collect();
        g.add_edge(ids[0], ids[1], 0).unwrap();
        g.add_edge(ids[1], ids[2], 0).unwrap();
        g.add_edge(ids[2], ids[0], 1).unwrap();
        g.add_edge(ids[3], ids[4], 0).unwrap();
        (g, ids)
    }

    #[test]
    fn finds_components() {
        let (g, ids) = graph();
        let comps = sccs(&g);
        assert_eq!(comps.len(), 3);
        let big = comps.iter().find(|c| c.len() == 3).expect("3-cycle");
        let mut sorted = big.clone();
        sorted.sort();
        assert_eq!(sorted, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn cyclic_filter() {
        let (mut g, ids) = graph();
        let cyc = cyclic_sccs(&g);
        assert_eq!(cyc.len(), 1);
        // A self-loop promotes a singleton to cyclic.
        g.add_edge(ids[3], ids[3], 1).unwrap();
        assert_eq!(cyclic_sccs(&g).len(), 2);
    }

    #[test]
    fn every_node_in_exactly_one_component() {
        let (g, _) = graph();
        let comps = sccs(&g);
        let mut seen = vec![0; g.num_nodes()];
        for c in &comps {
            for n in c {
                seen[n.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn empty_graph_no_components() {
        assert!(sccs(&Ddg::new()).is_empty());
    }
}
