//! Graphviz DOT export (used by the figure-regeneration binaries).

use crate::graph::Ddg;
use std::fmt::Write as _;

impl Ddg {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Nodes are labelled `name (class, latency)`; loop-carried edges are
    /// dashed and labelled with their distance.
    ///
    /// ```
    /// use swp_ddg::{Ddg, OpClass};
    /// let mut g = Ddg::new();
    /// let a = g.add_node("a", OpClass::new(0), 1);
    /// g.add_edge(a, a, 1).unwrap();
    /// assert!(g.to_dot().contains("digraph ddg"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph ddg {\n  rankdir=TB;\n");
        for (id, n) in self.nodes() {
            let _ = writeln!(
                s,
                "  n{} [label=\"{}\\n{} lat={}\"];",
                id.index(),
                n.name,
                n.class,
                n.latency
            );
        }
        for e in self.edges() {
            if e.distance == 0 {
                let _ = writeln!(s, "  n{} -> n{};", e.src.index(), e.dst.index());
            } else {
                let _ = writeln!(
                    s,
                    "  n{} -> n{} [style=dashed, label=\"{}\"];",
                    e.src.index(),
                    e.dst.index(),
                    e.distance
                );
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::graph::{Ddg, OpClass};

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Ddg::new();
        let a = g.add_node("load", OpClass::new(0), 3);
        let b = g.add_node("fmul", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, b, 1).unwrap();
        let dot = g.to_dot();
        assert!(dot.contains("load"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.ends_with("}\n"));
    }
}
