//! The recurrence lower bound `T_dep` and the critical cycle.
//!
//! For a candidate period `T`, every dependence `(i, j)` induces the
//! constraint `t_j − t_i ≥ d_i − T·m_ij`. A feasible assignment of the
//! `t_i` exists iff the constraint graph with edge weights
//! `d_i − T·m_ij` has no positive cycle. `T_dep` is the smallest integer
//! `T ≥ 1` with that property, equal to
//! `max over cycles C of ⌈Σ_C d_i / Σ_C m_ij⌉` (the critical cycle).
//!
//! Detection uses Bellman–Ford on longest paths; `T_dep` itself is found
//! by binary search, since positive cycles are monotone in `T`.

use crate::graph::{Ddg, NodeId};

/// A dependence cycle achieving (or witnessing) the recurrence bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalCycle {
    /// Nodes on the cycle, in order.
    pub nodes: Vec<NodeId>,
    /// Sum of latencies `Σ d_i` around the cycle.
    pub total_latency: u32,
    /// Sum of distances `Σ m_ij` around the cycle.
    pub total_distance: u32,
}

impl CriticalCycle {
    /// The bound `⌈Σ d / Σ m⌉` this cycle imposes on the period.
    pub fn bound(&self) -> u32 {
        self.total_latency.div_ceil(self.total_distance)
    }
}

impl Ddg {
    /// Whether the dependence constraints are satisfiable at period `t`
    /// (ignoring resources): no positive cycle in the constraint graph.
    pub fn feasible_at(&self, t: u32) -> bool {
        self.find_positive_cycle(t).is_none()
    }

    /// The recurrence lower bound `T_dep`.
    ///
    /// Returns `None` if the graph has a zero-distance cycle with positive
    /// latency (no finite period works); `Some(1)` for acyclic graphs.
    pub fn t_dep(&self) -> Option<u32> {
        if self.num_nodes() == 0 {
            return Some(1);
        }
        let hi_cap = self.total_latency().max(1);
        if !self.feasible_at(hi_cap) {
            // Σd over one cycle can never exceed total latency unless some
            // cycle has zero distance.
            return None;
        }
        let (mut lo, mut hi) = (1u32, hi_cap);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.feasible_at(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// Earliest dependence-feasible start times at period `t`: the
    /// longest-path potentials of the constraint graph (edge weights
    /// `d_i − t·m_ij`) from the all-zeros source. Any schedule at period
    /// `t` with non-negative starts satisfies `t_i ≥ starts[i]`, so these
    /// are valid ILP lower bounds. Returns `None` when period `t` is
    /// dependence-infeasible.
    pub fn earliest_starts(&self, t: u32) -> Option<Vec<i64>> {
        if self.find_positive_cycle(t).is_some() {
            return None;
        }
        let n = self.num_nodes();
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for e in self.edges() {
                let w = self.node(e.src).latency as i64 - t as i64 * e.distance as i64;
                if dist[e.src.0] + w > dist[e.dst.0] {
                    dist[e.dst.0] = dist[e.src.0] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Some(dist)
    }

    /// A cycle witnessing that period `t` is infeasible, if any.
    ///
    /// At `t = T_dep − 1` the returned cycle is a critical cycle.
    pub fn find_positive_cycle(&self, t: u32) -> Option<CriticalCycle> {
        let n = self.num_nodes();
        if n == 0 {
            return None;
        }
        // Longest-path Bellman–Ford from a virtual source connected to all
        // nodes with weight 0; relax n rounds, the n-th relaxation marks a
        // positive cycle.
        let mut dist = vec![0i64; n];
        let mut pred = vec![usize::MAX; n];
        let mut changed_node = None;
        for round in 0..n {
            let mut changed = false;
            for e in self.edges() {
                let w = self.node(e.src).latency as i64 - t as i64 * e.distance as i64;
                if dist[e.src.0] + w > dist[e.dst.0] {
                    dist[e.dst.0] = dist[e.src.0] + w;
                    pred[e.dst.0] = e.src.0;
                    changed = true;
                    if round == n - 1 {
                        changed_node = Some(e.dst.0);
                    }
                }
            }
            if !changed {
                return None;
            }
        }
        let start = changed_node?;
        // Walk predecessors n times to land inside the cycle, then extract.
        let mut v = start;
        for _ in 0..n {
            v = pred[v];
        }
        let mut cycle = vec![v];
        let mut u = pred[v];
        while u != v {
            cycle.push(u);
            u = pred[u];
        }
        cycle.reverse();
        // Tally latency/distance around the cycle. For multigraphs pick,
        // for each consecutive pair, the edge maximizing d − t·m (the one
        // Bellman–Ford used).
        let mut total_latency = 0u32;
        let mut total_distance = 0u32;
        for k in 0..cycle.len() {
            let a = NodeId(cycle[k]);
            let b = NodeId(cycle[(k + 1) % cycle.len()]);
            let best = self
                .edges()
                .filter(|e| e.src == a && e.dst == b)
                .max_by_key(|e| self.node(e.src).latency as i64 - t as i64 * e.distance as i64)
                .expect("predecessor chain follows real edges");
            total_latency += self.node(a).latency;
            total_distance += best.distance;
        }
        Some(CriticalCycle {
            nodes: cycle.into_iter().map(NodeId).collect(),
            total_latency,
            total_distance,
        })
    }

    /// The critical cycle: a cycle whose ratio bound equals `T_dep`.
    ///
    /// Returns `None` for acyclic graphs (where `T_dep = 1` trivially) or
    /// graphs whose `T_dep` is undefined.
    pub fn critical_cycle(&self) -> Option<CriticalCycle> {
        let t_dep = self.t_dep()?;
        if t_dep <= 1 {
            // A cycle might still bind at exactly 1; probe at 0 only if
            // there are edges (t = 0 means "would any cycle bind at all").
            return self.find_positive_cycle(0).filter(|c| c.bound() >= 1);
        }
        self.find_positive_cycle(t_dep - 1)
    }

    /// Exhaustively enumerates all simple cycles and returns the maximum
    /// ratio bound. Exponential; intended for cross-checking `t_dep` on
    /// small graphs in tests.
    pub fn t_dep_bruteforce(&self) -> Option<u32> {
        let n = self.num_nodes();
        let mut best: Option<u32> = Some(1);
        // DFS over simple paths from each root (only allow nodes >= root to
        // avoid duplicates).
        for root in 0..n {
            let mut path = vec![root];
            let mut on_path = vec![false; n];
            on_path[root] = true;
            // Stack of edge iterators by index.
            let mut iters = vec![0usize];
            let edges: Vec<_> = self.edges().collect();
            while let Some(&v) = path.last() {
                let i = *iters.last().expect("parallel to path");
                // Find next edge from v.
                let mut advanced = false;
                for (k, e) in edges.iter().enumerate().skip(i) {
                    if e.src.0 != v || e.dst.0 < root {
                        continue;
                    }
                    *iters.last_mut().expect("nonempty") = k + 1;
                    let w = e.dst.0;
                    if w == root {
                        // Found a cycle: tally it.
                        let mut lat = 0u32;
                        let mut dist = e.distance;
                        for idx in 0..path.len() {
                            lat += self.node(NodeId(path[idx])).latency;
                            if idx + 1 < path.len() {
                                // distance of the edge used between
                                // path[idx] and path[idx+1] is not tracked
                                // here; recompute via min over parallel
                                // edges is wrong for max-ratio. For test
                                // graphs we assume simple graphs (no
                                // parallel edges), which holds for all
                                // fixtures.
                                let pe = edges
                                    .iter()
                                    .find(|pe| pe.src.0 == path[idx] && pe.dst.0 == path[idx + 1])
                                    .expect("path edge");
                                dist += pe.distance;
                            }
                        }
                        if dist > 0 {
                            let b = lat.div_ceil(dist);
                            best = Some(best.map_or(b, |x| x.max(b)));
                        } else if lat > 0 {
                            return None; // zero-distance cycle
                        }
                        advanced = true;
                        break;
                    } else if !on_path[w] {
                        path.push(w);
                        on_path[w] = true;
                        iters.push(0);
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    path.pop();
                    on_path[v] = false;
                    iters.pop();
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OpClass;

    fn node(g: &mut Ddg, name: &str, lat: u32) -> NodeId {
        g.add_node(name, OpClass::new(0), lat)
    }

    #[test]
    fn acyclic_t_dep_is_one() {
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 5);
        let b = node(&mut g, "b", 3);
        g.add_edge(a, b, 0).unwrap();
        assert_eq!(g.t_dep(), Some(1));
    }

    #[test]
    fn self_loop_bound() {
        // latency 2, distance 1 -> T_dep = 2 (paper's i2).
        let mut g = Ddg::new();
        let a = node(&mut g, "i2", 2);
        g.add_edge(a, a, 1).unwrap();
        assert_eq!(g.t_dep(), Some(2));
        let c = g.critical_cycle().expect("cycle");
        assert_eq!(c.bound(), 2);
        assert_eq!(c.nodes, vec![a]);
    }

    #[test]
    fn two_node_recurrence_ceiling() {
        // d = 3 + 2 = 5 over distance 2 -> ceil(5/2) = 3.
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 3);
        let b = node(&mut g, "b", 2);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 2).unwrap();
        assert_eq!(g.t_dep(), Some(3));
        let c = g.critical_cycle().expect("cycle");
        assert_eq!(c.total_latency, 5);
        assert_eq!(c.total_distance, 2);
    }

    #[test]
    fn max_over_multiple_cycles() {
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 1);
        let b = node(&mut g, "b", 1);
        let c = node(&mut g, "c", 6);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 1).unwrap(); // bound 2
        g.add_edge(c, c, 2).unwrap(); // bound 3
        assert_eq!(g.t_dep(), Some(3));
    }

    #[test]
    fn zero_distance_cycle_undefined() {
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 1);
        let b = node(&mut g, "b", 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        assert_eq!(g.t_dep(), None);
    }

    #[test]
    fn feasible_at_matches_t_dep() {
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 4);
        g.add_edge(a, a, 2).unwrap(); // bound 2
        assert!(!g.feasible_at(1));
        assert!(g.feasible_at(2));
        assert!(g.feasible_at(10));
    }

    #[test]
    fn bruteforce_agrees_on_fixtures() {
        let mut g = Ddg::new();
        let a = node(&mut g, "a", 2);
        let b = node(&mut g, "b", 3);
        let c = node(&mut g, "c", 1);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, c, 1).unwrap();
        g.add_edge(c, a, 1).unwrap();
        g.add_edge(b, b, 1).unwrap();
        assert_eq!(g.t_dep(), g.t_dep_bruteforce());
        assert_eq!(g.t_dep(), Some(3)); // max(ceil(6/2)=3, ceil(3/1)=3)
    }

    #[test]
    fn empty_graph() {
        let g = Ddg::new();
        assert_eq!(g.t_dep(), Some(1));
        assert!(g.critical_cycle().is_none());
    }
}
