//! Data-dependence graphs (DDGs) for loop scheduling.
//!
//! A DDG describes one loop body: nodes are instructions, edges are
//! dependences `(i, j)` annotated with a *distance* `m_ij` (how many
//! iterations later the dependence lands; 0 = same iteration). Each node
//! carries the latency `d_i` of its result and the function-unit class it
//! executes on.
//!
//! The crate also computes the classic period lower bound from
//! loop-carried dependences,
//! `T_dep = max over cycles C of ⌈Σ_C d_i / Σ_C m_ij⌉`
//! (Reiter 1968), exposed as [`Ddg::t_dep`], together with Tarjan SCCs,
//! cycle enumeration for small graphs, and DOT export.
//!
//! # Example
//!
//! The motivating example of Altman, Govindarajan & Gao (PLDI '95,
//! Figure 1): a self-dependence of distance 1 on a multiply with
//! latency 2 gives `T_dep = 2`.
//!
//! ```
//! use swp_ddg::{Ddg, OpClass};
//!
//! let mut g = Ddg::new();
//! let i2 = g.add_node("i2", OpClass::new(1), 2);
//! g.add_edge(i2, i2, 1).unwrap();
//! assert_eq!(g.t_dep(), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod dot;
mod graph;
mod scc;

pub use bounds::CriticalCycle;
pub use graph::{Ddg, DdgError, Edge, EdgeId, Node, NodeId, OpClass};
pub use scc::{cyclic_sccs, sccs};
