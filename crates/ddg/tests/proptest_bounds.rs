//! Property tests: the binary-search/Bellman–Ford `T_dep` agrees with
//! exhaustive cycle enumeration on random small graphs.

use proptest::prelude::*;
use swp_ddg::{Ddg, OpClass};

/// Builds a random simple graph (no parallel edges) with `n` nodes.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    (2usize..6).prop_flat_map(|n| {
        let edges = prop::collection::btree_set((0..n, 0..n), 0..(n * 2));
        let lats = prop::collection::vec(1u32..6, n);
        let dists = prop::collection::vec(0u32..3, n * n);
        (edges, lats, dists).prop_map(move |(edges, lats, dists)| {
            let mut g = Ddg::new();
            let ids: Vec<_> = lats
                .iter()
                .enumerate()
                .map(|(i, &l)| g.add_node(format!("n{i}"), OpClass::new(i % 3), l))
                .collect();
            for (a, b) in edges {
                let d = dists[a * n + b];
                g.add_edge(ids[a], ids[b], d).expect("valid ids");
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn t_dep_matches_bruteforce(g in arb_ddg()) {
        prop_assert_eq!(g.t_dep(), g.t_dep_bruteforce());
    }

    /// t_dep is the threshold of feasible_at.
    #[test]
    fn t_dep_is_threshold(g in arb_ddg()) {
        if let Some(t) = g.t_dep() {
            prop_assert!(g.feasible_at(t));
            if t > 1 {
                prop_assert!(!g.feasible_at(t - 1));
            }
            prop_assert!(g.feasible_at(t + 7));
        }
    }

    /// validate() rejects exactly the graphs with undefined t_dep...
    /// (zero-distance cycles) on zero-latency-free graphs.
    #[test]
    fn validate_iff_t_dep_defined(g in arb_ddg()) {
        // All latencies are >= 1 by construction, so a zero-distance cycle
        // is simultaneously a validation error and an undefined t_dep.
        prop_assert_eq!(g.validate().is_ok(), g.t_dep().is_some());
    }

    /// A critical cycle, when present, actually achieves T_dep.
    #[test]
    fn critical_cycle_achieves_bound(g in arb_ddg()) {
        if let (Some(t), Some(c)) = (g.t_dep(), g.critical_cycle()) {
            prop_assert!(c.total_distance > 0);
            prop_assert_eq!(c.bound(), t.max(c.bound()));
            // The cycle's bound can never exceed T_dep...
            prop_assert!(c.bound() <= t || t == 1);
        }
    }
}
