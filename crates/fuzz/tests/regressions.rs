//! Table-driven replay of the committed regression corpus.
//!
//! Every file under `tests/regressions/` is a self-contained case —
//! either a shrunk counterexample promoted from a fuzzing campaign
//! (tagged `# kind:`) or a curated adversarial structure. Each is
//! replayed through the full differential runner and must come back
//! clean: once a bug is fixed, its counterexample keeps guarding the
//! fix.

use std::fs;
use std::path::PathBuf;
use swp_fuzz::{
    gen_cases, parse_regression, run_case, write_regression, DiffOptions, GenConfig, MachineFamily,
};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("tests/regressions must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    files
}

/// The corpus's fixed-seed family cases: the first two
/// guaranteed-schedulable cases of a VLIW and a register-pressure
/// campaign, promoted so both machine-model families stay permanently
/// represented in the replayed corpus. Regenerate with
/// `REGRESSION_WRITE=1 cargo test -p swp-fuzz --test regressions`.
fn family_cases() -> Vec<(String, swp_fuzz::FuzzCase)> {
    let mut out = Vec::new();
    for (family, seed) in [
        (MachineFamily::Vliw, 101u64),
        (MachineFamily::RegPressure, 202),
    ] {
        let config = GenConfig {
            seed,
            max_nodes: 6,
            family,
            ..GenConfig::default()
        };
        for case in gen_cases(&config, 40)
            .into_iter()
            .filter(|c| c.guaranteed)
            .take(2)
        {
            out.push((format!("{}-family-{}", family.as_str(), case.name), case));
        }
    }
    out
}

/// Writes the promoted family cases. A no-op unless `REGRESSION_WRITE=1`.
#[test]
fn promote_family_cases() {
    if std::env::var("REGRESSION_WRITE").is_err() {
        return;
    }
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    for (name, case) in family_cases() {
        let path = dir.join(format!("{name}.txt"));
        fs::write(&path, write_regression(&case, None)).expect("write corpus file");
        println!("wrote {}", path.display());
    }
}

#[test]
fn family_cases_are_committed_and_current() {
    for (name, case) in family_cases() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/regressions")
            .join(format!("{name}.txt"));
        let on_disk = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing committed family case ({e})"));
        assert_eq!(
            on_disk,
            write_regression(&case, None),
            "{name}: committed case diverged from the generator; \
             rerun with REGRESSION_WRITE=1"
        );
    }
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        corpus_files().len() >= 4,
        "the committed regression corpus should not shrink silently"
    );
}

#[test]
fn every_regression_replays_clean() {
    for path in corpus_files() {
        let name = path
            .file_stem()
            .expect("file stem")
            .to_string_lossy()
            .into_owned();
        let source = fs::read_to_string(&path).expect("readable corpus file");
        let parsed = parse_regression(&name, &source).unwrap_or_else(|e| panic!("{e}"));
        let report = run_case(&parsed.case, &DiffOptions::default());
        assert!(
            report.passed(),
            "{name}: replay produced violations: {:#?}",
            report.violations
        );
        assert!(
            report.proven_t.is_some(),
            "{name}: corpus cases are expected to reach a proven optimum"
        );
    }
}

#[test]
fn promoted_counterexamples_keep_their_kind_tag() {
    let tagged = corpus_files()
        .iter()
        .filter(|p| {
            let src = fs::read_to_string(p).expect("readable corpus file");
            let name = p.file_stem().expect("stem").to_string_lossy().into_owned();
            parse_regression(&name, &src)
                .unwrap_or_else(|e| panic!("{e}"))
                .kind
                .is_some()
        })
        .count();
    assert!(
        tagged >= 2,
        "promoted (fault-found) counterexamples must carry a `# kind:` header"
    );
}
