//! Seeded-generator property tests for the two scenario families.
//!
//! Same spirit as a proptest suite, but driven by the crate's own
//! deterministic generators (no new dependencies): for every case of a
//! fixed-seed campaign,
//!
//! * **register pressure** — any schedule the driver accepts under a
//!   `max_live` cap passes [`PipelinedSchedule::validate_pressure`] and
//!   its census never exceeds the cap;
//! * **issue bundles** — any schedule the driver accepts on a VLIW
//!   machine replays through the cycle-accurate simulator, which halts
//!   with `BundleExceeded` on any cycle that overflows the issue width
//!   or a slot-group cap.
//!
//! Negative controls prove both oracles have teeth: hand-built
//! overflowing schedules are rejected by the checker, the simulator,
//! and the pressure validator.
//!
//! [`PipelinedSchedule::validate_pressure`]: swp_machine::PipelinedSchedule::validate_pressure

use swp_core::{Budget, Engine, RateOptimalScheduler, SchedulerConfig};
use swp_ddg::{Ddg, OpClass};
use swp_fuzz::{gen_cases, GenConfig, MachineFamily};
use swp_heuristics::IterativeModuloScheduler;
use swp_machine::{
    simulate, BundleSpec, FuType, Machine, PipelinedSchedule, ReservationTable, SimError,
    SlotGroup, UnitPolicy,
};

fn exact(engine: Engine, max_live: Option<u32>) -> SchedulerConfig {
    SchedulerConfig {
        time_limit_per_t: None,
        time_limit_total: None,
        engine,
        max_live,
        ..SchedulerConfig::default()
    }
}

#[test]
fn accepted_schedules_respect_the_pressure_cap() {
    let config = GenConfig {
        seed: 0xCAFE,
        max_nodes: 6,
        family: MachineFamily::RegPressure,
        ..GenConfig::default()
    };
    let mut checked = 0usize;
    for case in gen_cases(&config, 20) {
        let Some(limit) = case.max_live else { continue };
        let budget = Budget::with_tick_limit(500_000);
        if let Ok(r) =
            RateOptimalScheduler::new(case.machine.clone(), exact(Engine::Ilp, Some(limit)))
                .schedule_with(&case.ddg, &budget)
        {
            assert_eq!(
                r.schedule.validate_pressure(&case.ddg, limit),
                Ok(()),
                "{}",
                case.name
            );
            assert!(r.schedule.max_live(&case.ddg) <= limit, "{}", case.name);
            checked += 1;
        }
        let ims = IterativeModuloScheduler::new(case.machine.clone()).with_max_live(Some(limit));
        if let Ok(hr) = ims.schedule_with(&case.ddg, &Budget::with_tick_limit(500_000)) {
            assert_eq!(
                hr.schedule.validate_pressure(&case.ddg, limit),
                Ok(()),
                "{}",
                case.name
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "campaign exercised too few capped schedules ({checked})"
    );
}

#[test]
fn bundle_machines_never_overflow_in_the_simulator() {
    let config = GenConfig {
        seed: 0xBEEF,
        max_nodes: 6,
        family: MachineFamily::Vliw,
        ..GenConfig::default()
    };
    let mut checked = 0usize;
    for case in gen_cases(&config, 20) {
        assert!(
            case.machine.bundle().is_some(),
            "{}: VLIW family must bundle",
            case.name
        );
        let budget = Budget::with_tick_limit(500_000);
        let Ok(r) = RateOptimalScheduler::new(case.machine.clone(), exact(Engine::Ilp, None))
            .schedule_with(&case.ddg, &budget)
        else {
            continue;
        };
        let policy = if r.schedule.is_mapped() {
            UnitPolicy::Fixed
        } else {
            UnitPolicy::Dynamic
        };
        simulate(&case.machine, &case.ddg, &r.schedule, 4, policy).unwrap_or_else(|e| {
            panic!(
                "{}: simulator rejected an accepted schedule: {e}",
                case.name
            )
        });
        checked += 1;
    }
    assert!(
        checked >= 8,
        "campaign exercised too few bundled schedules ({checked})"
    );
}

/// One clean single-cycle class with plenty of units, so only the
/// bundle (or the pressure cap) can object.
fn wide_machine(count: u32, bundle: Option<BundleSpec>) -> Machine {
    let m = Machine::new(vec![FuType {
        name: "C0".into(),
        count,
        latency: 1,
        reservation: ReservationTable::clean(1),
    }])
    .expect("static machine");
    match bundle {
        Some(b) => m.with_bundle(b).expect("static bundle"),
        None => m,
    }
}

#[test]
fn width_overflow_is_rejected_by_checker_and_simulator() {
    let machine = wide_machine(
        4,
        Some(BundleSpec {
            width: 2,
            groups: vec![],
        }),
    );
    let mut ddg = Ddg::new();
    for i in 0..3 {
        ddg.add_node(format!("n{i}"), OpClass::new(0), 1);
    }
    // Three same-cycle issues against width 2.
    let schedule = PipelinedSchedule::new(2, vec![0, 0, 0], vec![None; 3]);
    assert!(
        schedule.validate(&ddg, &machine).is_err(),
        "checker must reject"
    );
    let err = simulate(&machine, &ddg, &schedule, 2, UnitPolicy::Dynamic)
        .expect_err("simulator must reject");
    assert!(
        matches!(err, SimError::BundleExceeded { group: None, .. }),
        "want a width overflow, got {err:?}"
    );
}

#[test]
fn slot_group_overflow_is_rejected_by_checker_and_simulator() {
    let machine = wide_machine(
        4,
        Some(BundleSpec {
            width: 3,
            groups: vec![SlotGroup {
                name: "g".into(),
                cap: 1,
                classes: vec![0],
            }],
        }),
    );
    let mut ddg = Ddg::new();
    ddg.add_node("a", OpClass::new(0), 1);
    ddg.add_node("b", OpClass::new(0), 1);
    // Two same-cycle class-0 issues against a group cap of 1.
    let schedule = PipelinedSchedule::new(2, vec![0, 0], vec![None; 2]);
    assert!(
        schedule.validate(&ddg, &machine).is_err(),
        "checker must reject"
    );
    let err = simulate(&machine, &ddg, &schedule, 2, UnitPolicy::Dynamic)
        .expect_err("simulator must reject");
    assert!(
        matches!(err, SimError::BundleExceeded { group: Some(ref g), .. } if g == "g"),
        "want a slot-group overflow, got {err:?}"
    );
}

#[test]
fn pressure_validator_rejects_an_overflowing_census() {
    let machine = wide_machine(4, None);
    let mut ddg = Ddg::new();
    let a = ddg.add_node("a", OpClass::new(0), 3);
    let b = ddg.add_node("b", OpClass::new(0), 1);
    ddg.add_edge(a, b, 0).unwrap();
    // T = 1 with the consumer 3 cycles out: the value spans three full
    // periods, so three copies are live at once.
    let schedule = PipelinedSchedule::new(1, vec![0, 3], vec![None; 2]);
    assert_eq!(schedule.max_live(&ddg), 3);
    assert!(schedule.validate_pressure(&ddg, 2).is_err());
    assert!(schedule.validate_pressure(&ddg, 3).is_ok());
}
