//! End-to-end acceptance: a deliberately broken engine is caught and
//! the counterexample shrinks to a handful of nodes.
//!
//! The scheduler's test-only fault plan flips the exact checker into
//! rejecting every schedule the engines emit. The differential runner
//! must flag that as a violation, and the integrated shrinker must
//! reduce the failing case to at most 6 nodes while preserving the
//! violation kind — the bar the subsystem is specified against.

use swp_core::FaultPlan;
use swp_fuzz::{
    gen_case, parse_regression, run_case, shrink, write_regression, DiffOptions, GenConfig,
};

fn broken_checker() -> DiffOptions {
    DiffOptions {
        faults: FaultPlan {
            reject_ilp_schedule: true,
            reject_heuristic_schedule: true,
            ..FaultPlan::default()
        },
        metamorphic: false,
        ..DiffOptions::default()
    }
}

#[test]
fn broken_checker_is_caught_and_shrinks_small() {
    let cfg = GenConfig {
        seed: 5,
        ..GenConfig::default()
    };
    let opts = broken_checker();

    // Find a case the fault plan breaks.
    let mut found = None;
    for index in 0..24 {
        let case = gen_case(&cfg, index);
        let report = run_case(&case, &opts);
        if let Some(v) = report.violations.first() {
            found = Some((case, v.kind));
            break;
        }
    }
    let (case, kind) = found.expect("a broken checker must be caught within a few cases");

    // Shrink it, preserving the violation kind.
    let outcome = shrink(&case, &opts, kind);
    assert!(
        outcome.case.ddg.num_nodes() <= 6,
        "shrinker left {} nodes (expected <= 6)",
        outcome.case.ddg.num_nodes()
    );
    let replay = run_case(&outcome.case, &opts);
    assert!(
        replay.violations.iter().any(|v| v.kind == kind),
        "shrunk case no longer reproduces the violation"
    );

    // The minimized case round-trips through the regression format.
    let text = write_regression(&outcome.case, Some(kind));
    let parsed = parse_regression("shrunk", &text).expect("regression text parses");
    assert_eq!(parsed.kind, Some(kind));
    let reparsed = run_case(&parsed.case, &opts);
    assert!(
        reparsed.violations.iter().any(|v| v.kind == kind),
        "parsed regression no longer reproduces the violation"
    );

    // Without the fault plan the same case is clean — the violation was
    // the injected bug, not a real one.
    let clean = run_case(&outcome.case, &DiffOptions::default());
    assert!(clean.passed(), "{:?}", clean.violations);
}
