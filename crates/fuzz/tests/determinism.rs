//! Same-seed campaigns must be byte-identical — across runs and across
//! worker counts.
//!
//! The runner uses tick budgets only (no wall clock) and the artifact
//! record carries no timing, so the full JSONL artifact is a pure
//! function of `(seed, cases, generator knobs)`. This is what lets CI
//! `cmp` two smoke-run artifacts and what makes `--seed` a complete
//! reproduction handle.

use swp_fuzz::{gen_case, run_case, to_json_line, DiffOptions, FuzzCase, GenConfig};
use swp_harness::executor;
use swp_loops::fingerprint::{ddg_fingerprint, machine_fingerprint};

fn campaign(seed: u64, cases: usize, workers: usize) -> Vec<String> {
    let cfg = GenConfig {
        seed,
        ..GenConfig::default()
    };
    let opts = DiffOptions::default();
    // Generate *and* schedule inside the sharded executor, exactly like
    // the `fuzz` binary, so cross-worker interleaving is part of what
    // this test pins down.
    let results: Vec<Option<(FuzzCase, String)>> =
        executor::run_indexed(cases, workers, |_, index| {
            let case = gen_case(&cfg, index);
            let report = run_case(&case, &opts);
            let line = to_json_line(
                &report,
                ddg_fingerprint(&case.ddg),
                machine_fingerprint(&case.machine),
            );
            Some((case, line))
        });
    results
        .into_iter()
        .map(|r| r.expect("campaign never skips").1)
        .collect()
}

#[test]
fn artifact_is_byte_identical_across_workers_and_runs() {
    let a = campaign(5, 12, 1);
    let b = campaign(5, 12, 4);
    let c = campaign(5, 12, 4);
    assert_eq!(a, b, "worker count changed the artifact");
    assert_eq!(b, c, "a repeated run changed the artifact");
    assert_eq!(a.len(), 12);
    for line in &a {
        swp_fuzz::check_json_line(line).expect("artifact line parses");
    }
}

#[test]
fn different_seeds_differ() {
    // Guards against a seed-plumbing regression that would silently
    // make every campaign identical.
    assert_ne!(campaign(5, 4, 1), campaign(6, 4, 1));
}
