//! The per-case JSONL artifact record.
//!
//! One flat JSON object per case, in campaign (index) order, reusing
//! the harness's dependency-free JSON subset. The record deliberately
//! carries **no timing** and no host-dependent field: together with the
//! tick-budgeted runner this makes same-seed campaigns byte-identical
//! across runs, worker counts, and machines — which is itself asserted
//! by the determinism tests and the CI smoke job.

use crate::diff::CaseReport;
use swp_harness::json::{parse_object, ObjectWriter};
use swp_loops::fingerprint::{ddg_fingerprint, machine_fingerprint, to_hex};

/// Schema tag stamped on every record line.
pub const FUZZ_SCHEMA_VERSION: &str = "swp-fuzz-v1";

/// Renders one case report as a JSONL line (no trailing newline).
///
/// `ddg_fp`/`machine_fp` identify the case content so an artifact can
/// be correlated with a regenerated campaign.
pub fn to_json_line(report: &CaseReport, ddg_fp: u64, machine_fp: u64) -> String {
    let mut w = ObjectWriter::new();
    w.str("schema", FUZZ_SCHEMA_VERSION)
        .u64("index", report.index as u64)
        .str("name", &report.name)
        .str("ddg", &to_hex(ddg_fp))
        .str("machine", &to_hex(machine_fp))
        .bool("guaranteed", report.guaranteed)
        .u64("nodes", report.num_nodes as u64)
        .u64("edges", report.num_edges as u64)
        .u64("t_dep", report.t_dep as u64)
        .u64("t_res", report.t_res as u64)
        .opt_u64("proven_t", report.proven_t.map(u64::from))
        .u64("metamorphic", report.metamorphic_checked as u64);
    for o in &report.outcomes {
        w.str(o.config, &o.summary);
    }
    w.u64("violations", report.violations.len() as u64);
    let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind.as_str()).collect();
    w.str("violation_kinds", &kinds.join(","));
    w.finish()
}

/// Convenience: fingerprints straight from the case halves.
pub fn fingerprints(ddg: &swp_ddg::Ddg, machine: &swp_machine::Machine) -> (u64, u64) {
    (ddg_fingerprint(ddg), machine_fingerprint(machine))
}

/// Sanity-parses an artifact line (used by tests and tooling).
///
/// # Errors
///
/// The JSON subset parser's message for malformed lines, or a schema
/// mismatch message.
pub fn check_json_line(line: &str) -> Result<(), String> {
    let obj = parse_object(line)?;
    match obj.get("schema").and_then(|v| v.as_str()) {
        Some(FUZZ_SCHEMA_VERSION) => Ok(()),
        Some(other) => Err(format!("unknown schema `{other}`")),
        None => Err("missing schema field".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{run_case, DiffOptions};
    use crate::gen::{gen_case, GenConfig};

    #[test]
    fn lines_parse_and_are_deterministic() {
        let cfg = GenConfig {
            seed: 21,
            ..GenConfig::default()
        };
        let case = gen_case(&cfg, 0);
        let (dfp, mfp) = fingerprints(&case.ddg, &case.machine);
        let a = to_json_line(&run_case(&case, &DiffOptions::default()), dfp, mfp);
        let b = to_json_line(&run_case(&case, &DiffOptions::default()), dfp, mfp);
        assert_eq!(a, b);
        check_json_line(&a).expect("parses");
        assert!(a.contains("\"schema\":\"swp-fuzz-v1\""));
        check_json_line("{\"schema\":\"bogus\"}").unwrap_err();
    }
}
