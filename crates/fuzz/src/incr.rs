//! The incremental-vs-cold differential mode.
//!
//! For each generated case, a seeded edit script is applied to a warm
//! [`SolveSession`] while a cold solver (warm starting disabled) is run
//! from scratch on the identical instance at every step. The oracle:
//!
//! 1. **Decision identity** — whenever both runs are conclusive (no
//!    budget trips), they agree on the achieved period and the
//!    optimality claim, and a no-schedule verdict on one side is a
//!    no-schedule verdict on the other. Warm reuse may change effort,
//!    never answers.
//! 2. **Re-verification** — every schedule the warm session accepts,
//!    including replayed and hint-seeded ones, passes the exact checker
//!    and the cycle-accurate simulator. A warm-started *proven* verdict
//!    is never taken on faith.
//!
//! The script generator is deterministic per `(seed, case index)`, so
//! same-seed campaigns are replayable, and edits are always applicable
//! (indices drawn from the live shape).

use crate::diff::{check_schedule, Violation, ViolationKind};
use crate::gen::FuzzCase;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swp_core::{Optimality, RateOptimalScheduler, ScheduleError, ScheduleResult, SchedulerConfig};
use swp_incr::{EditOp, SolveSession};
use swp_milp::Budget;

/// Options for the incremental differential runner.
#[derive(Debug, Clone)]
pub struct IncrOptions {
    /// Campaign seed for the edit-script generator (independent of the
    /// case generator's seed so the two can be varied separately).
    pub seed: u64,
    /// Deterministic tick cap per solve (warm and cold alike).
    pub ticks_per_solve: u64,
    /// Edit-script length per case.
    pub edits: usize,
    /// Iterations fed to the cycle-accurate simulator.
    pub sim_iterations: u32,
}

impl Default for IncrOptions {
    fn default() -> Self {
        IncrOptions {
            seed: 0,
            ticks_per_solve: 2_000_000,
            edits: 4,
            sim_iterations: 4,
        }
    }
}

/// What one incremental case produced.
#[derive(Debug, Clone)]
pub struct IncrReport {
    /// Case index within the campaign.
    pub index: usize,
    /// Case name.
    pub name: String,
    /// Steps executed (initial solve + applied edits).
    pub steps: usize,
    /// Steps where both runs were conclusive and were compared.
    pub compared: usize,
    /// Exact-replay answers served by the session.
    pub replays: u64,
    /// Sweep periods skipped via carried refutations.
    pub periods_skipped: u64,
    /// Root LPs crash-started from a carried basis.
    pub basis_hits: u64,
    /// CP no-good clauses replayed.
    pub nogood_replays: u64,
    /// IMS probes seeded from a still-valid previous schedule.
    pub ims_hint_hits: u64,
    /// Oracle violations.
    pub violations: Vec<Violation>,
}

impl IncrReport {
    /// Whether the case passed the incremental oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn splitmix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One always-applicable random edit for the session's current shape.
/// Distances stay ≥ 1 on potentially-backward edges so scripts never
/// manufacture a zero-distance cycle (which would be a degenerate
/// instance, not an incremental-solving test).
fn gen_edit(rng: &mut SmallRng, s: &mut SolveSession) -> Option<EditOp> {
    let n = s.num_nodes();
    for _ in 0..8 {
        match rng.gen_range(0u32..4) {
            0 => {
                return Some(EditOp::AddNode {
                    name: format!("e{}", s.edits_applied()),
                    class: rng.gen_range(0..s.machine().num_classes()),
                    latency: rng.gen_range(1..=3),
                });
            }
            1 if n > 2 => {
                return Some(EditOp::RemoveNode {
                    index: rng.gen_range(0..n),
                });
            }
            2 if n >= 2 => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                if a == b {
                    continue;
                }
                let (src, dst) = (a.min(b), a.max(b));
                return Some(EditOp::AddEdge {
                    src,
                    dst,
                    distance: if rng.gen_bool(0.25) { 1 } else { 0 },
                });
            }
            _ if s.num_edges() > 0 => {
                let edges: Vec<(usize, usize, u32)> = s
                    .ddg()
                    .edges()
                    .map(|e| (e.src.index(), e.dst.index(), e.distance))
                    .collect();
                let (src, dst, distance) = edges[rng.gen_range(0..edges.len())];
                return Some(EditOp::RemoveEdge { src, dst, distance });
            }
            _ => {}
        }
    }
    None
}

/// `(accepted period, proven)` when the run is conclusive; `None` when
/// any budget trip makes a comparison unsound.
fn signature(r: &Result<ScheduleResult, ScheduleError>) -> Option<(Option<u32>, bool)> {
    match r {
        Ok(res) => {
            let timed = res.attempts.iter().any(|a| {
                matches!(
                    a.outcome,
                    swp_core::PeriodOutcome::TimedOut | swp_core::PeriodOutcome::EngineFailed
                )
            });
            if timed {
                None
            } else {
                Some((
                    Some(res.schedule.initiation_interval()),
                    matches!(res.optimality, Optimality::Proven),
                ))
            }
        }
        Err(ScheduleError::NotFound { attempts, .. }) => {
            let timed = attempts.iter().any(|a| {
                matches!(
                    a.outcome,
                    swp_core::PeriodOutcome::TimedOut | swp_core::PeriodOutcome::EngineFailed
                )
            });
            if timed {
                None
            } else {
                Some((None, false))
            }
        }
        // Structural errors (no finite period, unknown class) are
        // instance properties: both sides must report them. They carry
        // no attempt log, so fold them into the no-schedule signature.
        Err(ScheduleError::NoFinitePeriod) => Some((None, false)),
        Err(_) => None,
    }
}

fn describe(op: &EditOp) -> String {
    match op {
        EditOp::AddNode { class, latency, .. } => format!("add-node(c{class},l{latency})"),
        EditOp::RemoveNode { index } => format!("remove-node({index})"),
        EditOp::AddEdge { src, dst, distance } => format!("add-edge({src}->{dst},m{distance})"),
        EditOp::RemoveEdge { src, dst, distance } => {
            format!("remove-edge({src}->{dst},m{distance})")
        }
    }
}

/// Runs the incremental-vs-cold oracle over one case.
pub fn run_incr_case(case: &FuzzCase, opts: &IncrOptions) -> IncrReport {
    let mut rng = SmallRng::seed_from_u64(splitmix(opts.seed ^ 0x1C4E_55A1, case.index as u64));
    let config = SchedulerConfig {
        time_limit_per_t: None,
        time_limit_total: None,
        max_live: case.max_live,
        ..SchedulerConfig::default()
    };
    let cold_config = SchedulerConfig {
        warm_sweep: false,
        ..config.clone()
    };
    let mut session = SolveSession::from_ddg(case.machine.clone(), config, &case.ddg);
    let cold = RateOptimalScheduler::new(case.machine.clone(), cold_config);
    let mut violations: Vec<Violation> = Vec::new();
    let mut compared = 0;
    let mut steps = 0;
    let mut script = String::from("init");

    for step in 0..=opts.edits {
        if step > 0 {
            let Some(op) = gen_edit(&mut rng, &mut session) else {
                break;
            };
            script = describe(&op);
            if session.apply(&op).is_err() {
                // Generator bug, not an engine bug — surface loudly.
                violations.push(Violation {
                    kind: ViolationKind::EngineError,
                    config: "incr".to_string(),
                    details: format!("generated edit {script} rejected at step {step}"),
                });
                break;
            }
        }
        steps += 1;
        let warm_res = session.solve_with(&Budget::with_tick_limit(opts.ticks_per_solve));
        let cold_res = cold.schedule_with(
            session.ddg(),
            &Budget::with_tick_limit(opts.ticks_per_solve),
        );
        // Property 2: warm acceptances re-verify, replayed or not.
        if let Ok(res) = &warm_res {
            check_schedule(
                "incr/warm",
                &res.schedule,
                session.ddg(),
                &case.machine,
                case.max_live,
                opts.sim_iterations,
                &mut violations,
            );
        }
        // Property 1: conclusive decisions are identical.
        match (signature(&warm_res), signature(&cold_res)) {
            (Some(w), Some(c)) => {
                compared += 1;
                if w != c {
                    violations.push(Violation {
                        kind: ViolationKind::IncrementalDiverged,
                        config: "incr".to_string(),
                        details: format!(
                            "step {step} ({script}): warm {w:?} vs cold {c:?} \
                             [{} node(s), {} edge(s)]",
                            session.num_nodes(),
                            session.num_edges()
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    let reuse = session.reuse();
    IncrReport {
        index: case.index,
        name: case.name.clone(),
        steps,
        compared,
        replays: reuse.replays,
        periods_skipped: reuse.periods_skipped,
        basis_hits: reuse.basis_hits,
        nogood_replays: reuse.nogood_replays,
        ims_hint_hits: reuse.ims_hint_hits,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_cases, GenConfig};

    #[test]
    fn incremental_campaign_runs_clean() {
        let cfg = GenConfig {
            seed: 21,
            max_nodes: 6,
            ..GenConfig::default()
        };
        let opts = IncrOptions {
            seed: 21,
            ..IncrOptions::default()
        };
        for case in gen_cases(&cfg, 30) {
            let report = run_incr_case(&case, &opts);
            assert!(report.passed(), "{}: {:?}", case.name, report.violations);
            assert!(report.steps >= 1);
        }
    }

    #[test]
    fn incremental_reports_are_deterministic() {
        let cfg = GenConfig {
            seed: 4,
            ..GenConfig::default()
        };
        let opts = IncrOptions {
            seed: 4,
            ..IncrOptions::default()
        };
        for case in gen_cases(&cfg, 8) {
            let a = run_incr_case(&case, &opts);
            let b = run_incr_case(&case, &opts);
            assert_eq!(a.steps, b.steps);
            assert_eq!(a.compared, b.compared);
            assert_eq!(a.replays, b.replays);
            assert_eq!(a.periods_skipped, b.periods_skipped);
            assert_eq!(a.violations.len(), b.violations.len());
        }
    }

    #[test]
    fn reuse_actually_happens() {
        // Across a campaign the sessions must demonstrate real reuse —
        // otherwise the differential tests a no-op.
        let cfg = GenConfig {
            seed: 9,
            max_nodes: 6,
            ..GenConfig::default()
        };
        let opts = IncrOptions {
            seed: 9,
            ..IncrOptions::default()
        };
        let reports: Vec<IncrReport> = gen_cases(&cfg, 20)
            .iter()
            .map(|c| run_incr_case(c, &opts))
            .collect();
        let reused: u64 = reports
            .iter()
            .map(|r| {
                r.periods_skipped + r.basis_hits + r.ims_hint_hits + r.replays + r.nogood_replays
            })
            .sum();
        assert!(reused > 0, "no warm reuse observed across the campaign");
    }
}
