//! Self-contained regression files for shrunk counterexamples.
//!
//! A regression file carries everything needed to replay a case — the
//! machine (in the `swp-machine` textual format) and the DDG — plus the
//! violation kind it once triggered:
//!
//! ```text
//! # swp-fuzz regression
//! # kind: proven-mismatch
//! machine m {
//!     unit C0 count=1 latency=2 table[X./.X]
//! }
//! ddg {
//!     node n0 class=0 latency=2
//!     node n1 class=0 latency=2
//!     edge 0 -> 1 distance=0
//!     edge 1 -> 0 distance=1
//! }
//! ```
//!
//! The committed corpus under `tests/regressions/` is loaded by a
//! table-driven test that replays every file through the differential
//! runner and requires a clean report — once a bug is fixed, its
//! counterexample keeps guarding the fix.

use crate::diff::ViolationKind;
use crate::gen::FuzzCase;
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_machine::{parse_machine, write_machine};

/// A parsed regression file.
#[derive(Debug, Clone)]
pub struct RegressionCase {
    /// The violation this case once triggered (from the `# kind:` line).
    pub kind: Option<ViolationKind>,
    /// The replayable case.
    pub case: FuzzCase,
}

/// Renders `case` as a self-contained regression file.
pub fn write_regression(case: &FuzzCase, kind: Option<ViolationKind>) -> String {
    let mut out = String::new();
    out.push_str("# swp-fuzz regression\n");
    if let Some(k) = kind {
        out.push_str(&format!("# kind: {}\n", k.as_str()));
    }
    if let Some(ml) = case.max_live {
        out.push_str(&format!("# max_live: {ml}\n"));
    }
    out.push_str(&write_machine("m", &case.machine));
    out.push_str("ddg {\n");
    for (_, n) in case.ddg.nodes() {
        out.push_str(&format!(
            "    node {} class={} latency={}\n",
            n.name.replace(char::is_whitespace, "_"),
            n.class.index(),
            n.latency
        ));
    }
    for e in case.ddg.edges() {
        out.push_str(&format!(
            "    edge {} -> {} distance={}\n",
            e.src.index(),
            e.dst.index(),
            e.distance
        ));
    }
    out.push_str("}\n");
    out
}

/// Parses a regression file written by [`write_regression`].
///
/// # Errors
///
/// A human-readable message naming the offending line.
pub fn parse_regression(name: &str, source: &str) -> Result<RegressionCase, String> {
    let mut kind = None;
    let mut max_live = None;
    let mut machine_text = String::new();
    let mut in_machine = false;
    let mut in_ddg = false;
    let mut ddg = Ddg::new();
    let mut ids: Vec<NodeId> = Vec::new();
    let mut machine = None;

    for (ln, raw) in source.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("# kind:") {
            kind = ViolationKind::parse(rest.trim());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# max_live:") {
            max_live = Some(
                rest.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("{name}:{line_no}: bad max_live `{}`", rest.trim()))?,
            );
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if in_machine {
            machine_text.push_str(raw);
            machine_text.push('\n');
            if line == "}" {
                in_machine = false;
                let (_, m) = parse_machine(&machine_text)
                    .map_err(|e| format!("{name}: machine block: {e}"))?;
                machine = Some(m);
            }
        } else if in_ddg {
            if line == "}" {
                in_ddg = false;
            } else if let Some(rest) = line.strip_prefix("node ") {
                let mut node_name = None;
                let mut class = None;
                let mut latency = None;
                for tok in rest.split_whitespace() {
                    if let Some(v) = tok.strip_prefix("class=") {
                        class = Some(
                            v.parse::<usize>()
                                .map_err(|_| format!("{name}:{line_no}: bad class `{v}`"))?,
                        );
                    } else if let Some(v) = tok.strip_prefix("latency=") {
                        latency = Some(
                            v.parse::<u32>()
                                .map_err(|_| format!("{name}:{line_no}: bad latency `{v}`"))?,
                        );
                    } else if node_name.is_none() {
                        node_name = Some(tok.to_string());
                    } else {
                        return Err(format!("{name}:{line_no}: unexpected token `{tok}`"));
                    }
                }
                let node_name =
                    node_name.ok_or_else(|| format!("{name}:{line_no}: node needs a name"))?;
                let class =
                    class.ok_or_else(|| format!("{name}:{line_no}: node needs `class=`"))?;
                let latency =
                    latency.ok_or_else(|| format!("{name}:{line_no}: node needs `latency=`"))?;
                ids.push(ddg.add_node(node_name, OpClass::new(class), latency));
            } else if let Some(rest) = line.strip_prefix("edge ") {
                let (src_dst, dist) = rest
                    .split_once("distance=")
                    .ok_or_else(|| format!("{name}:{line_no}: edge needs `distance=`"))?;
                let (src, dst) = src_dst
                    .split_once("->")
                    .ok_or_else(|| format!("{name}:{line_no}: edge needs `->`"))?;
                let src: usize = src
                    .trim()
                    .parse()
                    .map_err(|_| format!("{name}:{line_no}: bad edge source"))?;
                let dst: usize = dst
                    .trim()
                    .parse()
                    .map_err(|_| format!("{name}:{line_no}: bad edge target"))?;
                let dist: u32 = dist
                    .trim()
                    .parse()
                    .map_err(|_| format!("{name}:{line_no}: bad distance"))?;
                let (src, dst) = (
                    *ids.get(src)
                        .ok_or_else(|| format!("{name}:{line_no}: node {src} out of range"))?,
                    *ids.get(dst)
                        .ok_or_else(|| format!("{name}:{line_no}: node {dst} out of range"))?,
                );
                ddg.add_edge(src, dst, dist)
                    .map_err(|e| format!("{name}:{line_no}: {e}"))?;
            } else {
                return Err(format!("{name}:{line_no}: unexpected line `{line}`"));
            }
        } else if line.starts_with("machine") {
            in_machine = true;
            machine_text.push_str(raw);
            machine_text.push('\n');
        } else if line == "ddg {" {
            in_ddg = true;
        } else {
            return Err(format!("{name}:{line_no}: unexpected line `{line}`"));
        }
    }

    let machine = machine.ok_or_else(|| format!("{name}: no machine block"))?;
    if ddg.num_nodes() == 0 {
        return Err(format!("{name}: no ddg nodes"));
    }
    ddg.validate()
        .map_err(|e| format!("{name}: invalid ddg: {e}"))?;
    for (_, n) in ddg.nodes() {
        machine
            .fu_type(n.class)
            .map_err(|e| format!("{name}: {e}"))?;
    }
    Ok(RegressionCase {
        kind,
        case: FuzzCase {
            index: 0,
            name: name.to_string(),
            guaranteed: false,
            machine,
            ddg,
            max_live,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_cases, GenConfig};

    #[test]
    fn round_trips_generated_cases() {
        let cfg = GenConfig {
            seed: 77,
            ..GenConfig::default()
        };
        for case in gen_cases(&cfg, 50) {
            let text = write_regression(&case, Some(ViolationKind::ProvenMismatch));
            let parsed =
                parse_regression(&case.name, &text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(parsed.kind, Some(ViolationKind::ProvenMismatch));
            assert_eq!(parsed.case.machine, case.machine);
            assert_eq!(parsed.case.ddg.num_nodes(), case.ddg.num_nodes());
            assert_eq!(parsed.case.ddg.num_edges(), case.ddg.num_edges());
            for ((_, a), (_, b)) in parsed.case.ddg.nodes().zip(case.ddg.nodes()) {
                assert_eq!(a.class, b.class);
                assert_eq!(a.latency, b.latency);
            }
            for (a, b) in parsed.case.ddg.edges().zip(case.ddg.edges()) {
                assert_eq!((a.src, a.dst, a.distance), (b.src, b.dst, b.distance));
            }
        }
    }

    #[test]
    fn round_trips_bundles_and_caps() {
        let cfg = GenConfig {
            seed: 31,
            family: crate::gen::MachineFamily::Vliw,
            ..GenConfig::default()
        };
        for mut case in gen_cases(&cfg, 20) {
            case.max_live = Some(u32::try_from(case.index).unwrap_or(0) + 1);
            let text = write_regression(&case, None);
            let parsed =
                parse_regression(&case.name, &text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(
                parsed.case.machine, case.machine,
                "bundle lost in round trip"
            );
            assert_eq!(parsed.case.max_live, case.max_live);
        }
    }

    #[test]
    fn parse_errors_name_the_line() {
        let bad = "# swp-fuzz regression\nmachine m {\n unit A count=1 latency=1 clean\n}\nddg {\n node n0 class=zero latency=1\n}\n";
        let e = parse_regression("bad", bad).unwrap_err();
        assert!(e.contains("bad:6"), "{e}");
        assert!(parse_regression("empty", "").is_err());
    }

    #[test]
    fn kind_labels_round_trip() {
        for k in [
            ViolationKind::CheckerReject,
            ViolationKind::FalseRefutation,
            ViolationKind::MetamorphicTPlusOne,
        ] {
            assert_eq!(ViolationKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(ViolationKind::parse("no-such-kind"), None);
    }
}
