//! Delta-debugging shrinker for failing cases.
//!
//! Given a case on which the differential runner reports a violation of
//! kind `K`, the shrinker greedily applies reduction moves, keeping a
//! candidate only if it still triggers a violation of the *same kind*
//! (so shrinking cannot silently slip onto a different bug):
//!
//! * drop a node (with its incident edges);
//! * drop an edge;
//! * lower an edge's iteration distance;
//! * lower a node's latency;
//! * simplify a unit's reservation table to a clean pipeline, or erase
//!   single marks;
//! * lower a unit's latency or its copy count;
//! * drop trailing unused unit classes.
//!
//! Every candidate is revalidated (`Ddg::validate`) before testing, so
//! a distance decrement that would create a zero-distance cycle is
//! simply skipped. The loop runs moves to fixpoint; because the runner
//! is deterministic (tick budgets, no wall clock), so is the shrink.

use crate::diff::{run_case, DiffOptions, ViolationKind};
use crate::gen::FuzzCase;
use swp_ddg::{Ddg, NodeId};
use swp_machine::{FuType, Machine, ReservationTable};

/// Result of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized case (still triggers the violation kind).
    pub case: FuzzCase,
    /// Reduction moves that were accepted.
    pub accepted: usize,
    /// Candidates tested in total.
    pub tested: usize,
}

/// Rebuilds the DDG without node `drop` (incident edges removed).
fn without_node(ddg: &Ddg, drop: NodeId) -> Option<Ddg> {
    if ddg.num_nodes() <= 1 {
        return None;
    }
    let mut g = Ddg::new();
    let mut map: Vec<Option<NodeId>> = vec![None; ddg.num_nodes()];
    for (id, n) in ddg.nodes() {
        if id != drop {
            map[id.index()] = Some(g.add_node(n.name.clone(), n.class, n.latency));
        }
    }
    for e in ddg.edges() {
        if let (Some(s), Some(d)) = (map[e.src.index()], map[e.dst.index()]) {
            g.add_edge(s, d, e.distance).ok()?;
        }
    }
    Some(g)
}

/// Rebuilds the DDG with edge number `skip` removed, or with its
/// distance replaced when `new_distance` is given.
fn with_edge_change(ddg: &Ddg, target: usize, new_distance: Option<u32>) -> Option<Ddg> {
    let mut g = Ddg::new();
    let ids: Vec<NodeId> = ddg
        .nodes()
        .map(|(_, n)| g.add_node(n.name.clone(), n.class, n.latency))
        .collect();
    for (i, e) in ddg.edges().enumerate() {
        if i == target {
            match new_distance {
                None => continue,
                Some(d) => g.add_edge(ids[e.src.index()], ids[e.dst.index()], d).ok()?,
            };
        } else {
            g.add_edge(ids[e.src.index()], ids[e.dst.index()], e.distance)
                .ok()?;
        }
    }
    g.validate().ok()?;
    Some(g)
}

/// Rebuilds the DDG with node `target`'s latency replaced.
fn with_latency(ddg: &Ddg, target: NodeId, latency: u32) -> Ddg {
    let mut g = Ddg::new();
    let ids: Vec<NodeId> = ddg
        .nodes()
        .map(|(id, n)| {
            let lat = if id == target { latency } else { n.latency };
            g.add_node(n.name.clone(), n.class, lat)
        })
        .collect();
    for e in ddg.edges() {
        let _ = g.add_edge(ids[e.src.index()], ids[e.dst.index()], e.distance);
    }
    g
}

fn with_type_change(machine: &Machine, target: usize, change: &FuType) -> Option<Machine> {
    let mut types: Vec<FuType> = machine.types().to_vec();
    types[target] = change.clone();
    Machine::new(types).ok()
}

/// Drops trailing classes no node references (index remap unnecessary).
fn truncated_machine(machine: &Machine, ddg: &Ddg) -> Option<Machine> {
    let used = ddg.nodes().map(|(_, n)| n.class.index()).max().unwrap_or(0);
    if used + 1 >= machine.num_classes() {
        return None;
    }
    Machine::new(machine.types()[..=used].to_vec()).ok()
}

/// Erases one reservation-table mark (never the issue slot `(0, 0)`).
fn without_mark(table: &ReservationTable, stage: usize, cycle: usize) -> Option<ReservationTable> {
    if stage == 0 && cycle == 0 {
        return None;
    }
    if !table.mark(stage, cycle) {
        return None;
    }
    let rows: Vec<Vec<bool>> = (0..table.stages())
        .map(|s| {
            (0..table.exec_time() as usize)
                .map(|l| table.mark(s, l) && !(s == stage && l == cycle))
                .collect()
        })
        .collect();
    let refs: Vec<&[bool]> = rows.iter().map(Vec::as_slice).collect();
    ReservationTable::from_rows(&refs)
}

/// Minimizes `case` while it keeps violating `kind`.
///
/// `case` itself must already trigger the violation; the returned case
/// always does.
pub fn shrink(case: &FuzzCase, opts: &DiffOptions, kind: ViolationKind) -> ShrinkOutcome {
    let mut tested = 0usize;
    let mut accepted = 0usize;
    let mut current = case.clone();
    let still_fails = |cand: &FuzzCase, tested: &mut usize| -> bool {
        *tested += 1;
        run_case(cand, opts)
            .violations
            .iter()
            .any(|v| v.kind == kind)
    };

    loop {
        let mut progressed = false;

        // 1. Drop nodes, largest index first (stable renumbering).
        let mut i = current.ddg.num_nodes();
        while i > 0 {
            i -= 1;
            if let Some(g) = without_node(&current.ddg, NodeId::from_index(i)) {
                let cand = FuzzCase {
                    ddg: g,
                    ..current.clone()
                };
                if still_fails(&cand, &mut tested) {
                    current = cand;
                    accepted += 1;
                    progressed = true;
                }
            }
        }

        // 2. Drop edges.
        let mut e = current.ddg.num_edges();
        while e > 0 {
            e -= 1;
            if let Some(g) = with_edge_change(&current.ddg, e, None) {
                let cand = FuzzCase {
                    ddg: g,
                    ..current.clone()
                };
                if still_fails(&cand, &mut tested) {
                    current = cand;
                    accepted += 1;
                    progressed = true;
                }
            }
        }

        // 3. Lower distances (one step at a time, to fixpoint per edge).
        for e in 0..current.ddg.num_edges() {
            loop {
                let dist = current.ddg.edges().nth(e).map(|x| x.distance).unwrap_or(0);
                if dist == 0 {
                    break;
                }
                let Some(g) = with_edge_change(&current.ddg, e, Some(dist - 1)) else {
                    break;
                };
                let cand = FuzzCase {
                    ddg: g,
                    ..current.clone()
                };
                if still_fails(&cand, &mut tested) {
                    current = cand;
                    accepted += 1;
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        // 4. Lower node latencies.
        for n in 0..current.ddg.num_nodes() {
            let id = NodeId::from_index(n);
            loop {
                let lat = current.ddg.node(id).latency;
                if lat <= 1 {
                    break;
                }
                let cand = FuzzCase {
                    ddg: with_latency(&current.ddg, id, lat - 1),
                    ..current.clone()
                };
                if still_fails(&cand, &mut tested) {
                    current = cand;
                    accepted += 1;
                    progressed = true;
                } else {
                    break;
                }
            }
        }

        // 5. Simplify the machine: clean tables, fewer marks, smaller
        //    latencies and counts, fewer classes.
        for c in 0..current.machine.num_classes() {
            let t = current.machine.types()[c].clone();

            if t.reservation != ReservationTable::clean(t.latency) {
                let cand_type = FuType {
                    reservation: ReservationTable::clean(t.latency),
                    ..t.clone()
                };
                if let Some(m) = with_type_change(&current.machine, c, &cand_type) {
                    let cand = FuzzCase {
                        machine: m,
                        ..current.clone()
                    };
                    if still_fails(&cand, &mut tested) {
                        current = cand;
                        accepted += 1;
                        progressed = true;
                    }
                }
            }

            let t = current.machine.types()[c].clone();
            for stage in 0..t.reservation.stages() {
                for cycle in 0..t.reservation.exec_time() as usize {
                    if let Some(table) = without_mark(&t.reservation, stage, cycle) {
                        let cand_type = FuType {
                            reservation: table,
                            ..t.clone()
                        };
                        if let Some(m) = with_type_change(&current.machine, c, &cand_type) {
                            let cand = FuzzCase {
                                machine: m,
                                ..current.clone()
                            };
                            if still_fails(&cand, &mut tested) {
                                current = cand;
                                accepted += 1;
                                progressed = true;
                            }
                        }
                    }
                }
            }

            let t = current.machine.types()[c].clone();
            if t.latency > 1 {
                let cand_type = FuType {
                    latency: t.latency - 1,
                    ..t.clone()
                };
                if let Some(m) = with_type_change(&current.machine, c, &cand_type) {
                    let cand = FuzzCase {
                        machine: m,
                        ..current.clone()
                    };
                    if still_fails(&cand, &mut tested) {
                        current = cand;
                        accepted += 1;
                        progressed = true;
                    }
                }
            }

            let t = current.machine.types()[c].clone();
            if t.count > 1 {
                let cand_type = FuType {
                    count: t.count - 1,
                    ..t.clone()
                };
                if let Some(m) = with_type_change(&current.machine, c, &cand_type) {
                    let cand = FuzzCase {
                        machine: m,
                        ..current.clone()
                    };
                    if still_fails(&cand, &mut tested) {
                        current = cand;
                        accepted += 1;
                        progressed = true;
                    }
                }
            }
        }

        if let Some(m) = truncated_machine(&current.machine, &current.ddg) {
            let cand = FuzzCase {
                machine: m,
                ..current.clone()
            };
            if still_fails(&cand, &mut tested) {
                current = cand;
                accepted += 1;
                progressed = true;
            }
        }

        if !progressed {
            break;
        }
    }

    ShrinkOutcome {
        case: current,
        accepted,
        tested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::DiffOptions;
    use crate::gen::{gen_cases, GenConfig};
    use swp_core::FaultPlan;

    /// With the checker deliberately rejecting every schedule in the
    /// baseline configuration, the runner reports violations; the
    /// shrinker must drive such a counterexample down to a handful of
    /// nodes while preserving the violation kind.
    #[test]
    fn shrinks_fault_injected_counterexample_to_a_few_nodes() {
        let cfg = GenConfig {
            seed: 3,
            ..GenConfig::default()
        };
        let opts = DiffOptions {
            faults: FaultPlan {
                reject_ilp_schedule: true,
                reject_heuristic_schedule: true,
                ..FaultPlan::default()
            },
            metamorphic: false,
            ..DiffOptions::default()
        };
        let failing = gen_cases(&cfg, 25).into_iter().find_map(|case| {
            let report = run_case(&case, &opts);
            report.violations.first().map(|v| (case, v.kind))
        });
        let (case, kind) = failing.expect("fault injection must trip the oracle");
        let out = shrink(&case, &opts, kind);
        assert!(
            out.case.ddg.num_nodes() <= 6,
            "shrunk case still has {} nodes",
            out.case.ddg.num_nodes()
        );
        assert!(run_case(&out.case, &opts)
            .violations
            .iter()
            .any(|v| v.kind == kind));
    }

    #[test]
    fn shrink_is_deterministic() {
        let cfg = GenConfig {
            seed: 3,
            ..GenConfig::default()
        };
        let opts = DiffOptions {
            faults: FaultPlan {
                reject_ilp_schedule: true,
                reject_heuristic_schedule: true,
                ..FaultPlan::default()
            },
            metamorphic: false,
            ..DiffOptions::default()
        };
        let case = gen_cases(&cfg, 25)
            .into_iter()
            .find(|c| !run_case(c, &opts).passed())
            .expect("fault injection must trip the oracle");
        let kind = run_case(&case, &opts).violations[0].kind;
        let a = shrink(&case, &opts, kind);
        let b = shrink(&case, &opts, kind);
        assert_eq!(a.case.ddg, b.case.ddg);
        assert_eq!(a.case.machine, b.case.machine);
        assert_eq!(a.tested, b.tested);
    }
}
