//! Differential fuzzing and metamorphic testing for the scheduling
//! engines.
//!
//! The workspace has three ways to answer "what is the best initiation
//! interval for this loop on this machine, and what schedule achieves
//! it?": the unified ILP (simplex + branch & bound), iterative modulo
//! scheduling, and the automaton-accelerated variants of both. They
//! must agree — on feasibility, on proven optimality, and on hazard-
//! freedom of every schedule they emit. This crate industrializes that
//! cross-check:
//!
//! * [`gen`] — seeded generators for random DDGs and random machines
//!   (unclean pipelines, multi-stage collisions, non-pipelined units),
//!   in guaranteed-schedulable and adversarial modes;
//! * [`diff`] — the differential runner: every engine × conflict-oracle
//!   configuration per case, with the oracle properties (checker +
//!   simulator acceptance, proven-`T` agreement, lower-bound respect,
//!   no false refutations) and the metamorphic relations (relabeling
//!   and unit-renaming invariance, latency-scaling monotonicity,
//!   `T+1` confirmation);
//! * [`shrink`] — a delta-debugging shrinker that minimizes a failing
//!   case while preserving its violation kind;
//! * [`regression`] — self-contained regression files for shrunk
//!   counterexamples, committed under `tests/regressions/` and replayed
//!   by a table-driven test;
//! * [`record`] — the timing-free JSONL artifact record that makes
//!   same-seed campaigns byte-identical.
//!
//! The `fuzz` binary shards a campaign over the `swp-harness`
//! work-stealing executor (`--seed --cases --workers --budget-ms
//! --shrink`); see `TESTING.md` at the repo root for the full test
//! taxonomy this crate slots into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod incr;
pub mod record;
pub mod regression;
pub mod shrink;

pub use diff::{run_case, CaseReport, DiffOptions, Violation, ViolationKind};
pub use gen::{gen_case, gen_cases, FuzzCase, GenConfig, MachineFamily};
pub use incr::{run_incr_case, IncrOptions, IncrReport};
pub use record::{check_json_line, to_json_line, FUZZ_SCHEMA_VERSION};
pub use regression::{parse_regression, write_regression, RegressionCase};
pub use shrink::{shrink, ShrinkOutcome};
