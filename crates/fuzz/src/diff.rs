//! The differential runner: one case, every engine, every oracle
//! property.
//!
//! Each generated `(machine, ddg)` pair is scheduled under every
//! engine × conflict-oracle configuration:
//!
//! * the full driver (ILP + IMS incumbent) under `Scan` and `Automaton`;
//! * the pure-ILP driver (Table 5 mode) under both oracles;
//! * the CP backend (Table 5 mode) under both oracles;
//! * the ILP-vs-CP portfolio racer under both oracles;
//! * iterative modulo scheduling alone, under both oracles.
//!
//! and the results are cross-checked:
//!
//! 1. every accepted schedule passes the exact checker **and** the
//!    cycle-accurate simulator;
//! 2. any two `Optimality::Proven` results agree on `T`;
//! 3. no accepted schedule beats a proven-optimal `T`, and heuristic
//!    `II ≥` proven `T`;
//! 4. no configuration *refutes* (proves infeasible) a period another
//!    configuration certified feasible;
//! 5. accepted periods respect `max(T_dep, T_res)`, and the hazard-
//!    automaton `res_mii` equals the exact `Machine::t_res`;
//! 6. the IMS produces bit-identical schedules under both oracles (a
//!    documented contract of `swp-heuristics`);
//! 7. guaranteed-schedulable cases that run to completion (no budget
//!    trips) must schedule.
//!
//! Metamorphic relations (checked against the baseline configuration):
//!
//! * relabeling instructions and renaming/permuting function-unit
//!   classes leave the outcome invariant;
//! * uniformly scaling all latencies never *decreases* the proven `T`
//!   (any schedule feasible under scaled latencies is feasible under the
//!   originals, so the scaled optimum bounds the original from above);
//! * an IMS schedule obtained at `T+1` after a proven optimum at `T`
//!   must itself verify. (Plain "feasible at `T` ⇒ feasible at `T+1`"
//!   is *false* under structural hazards — modulo feasibility of a
//!   reservation table is not monotone in the period, which is why the
//!   driver skips modulo-infeasible periods — so the runner checks the
//!   sound residue: positive confirmations must verify, and a proven
//!   optimum at `T` with a *refutation* at `T+1` is accepted only when
//!   some class table is modulo-infeasible at `T+1`.)
//!
//! Determinism: every engine runs under a tick-capped, wall-clock-free
//! [`Budget`], so a case's report — including every violation — is a
//! pure function of the case. That is what makes same-seed campaigns
//! byte-identical and shrinking reproducible.

use crate::gen::FuzzCase;
use swp_core::{
    Engine, FaultPlan, Optimality, PeriodAttempt, PeriodOutcome, RateOptimalScheduler,
    ScheduleError, ScheduleResult, SchedulerConfig, SolvedBy,
};
use swp_ddg::{Ddg, OpClass};
use swp_harness::ConflictOracleMode;
use swp_heuristics::{HeuristicError, IterativeModuloScheduler};
use swp_machine::{
    simulate, BundleSpec, DataLayout, FuType, Machine, PipelinedSchedule, SlotGroup, UnitPolicy,
};
use swp_milp::Budget;

/// What went wrong, as a stable label usable for dedup and shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// An accepted schedule failed the exact checker.
    CheckerReject,
    /// An accepted schedule failed the cycle-accurate simulator.
    SimulatorReject,
    /// Two proven-optimal results disagree on `T`.
    ProvenMismatch,
    /// A result beats a proven-optimal `T`.
    BelowProven,
    /// A configuration proved a period infeasible that another
    /// configuration certified feasible.
    FalseRefutation,
    /// An accepted period violates `max(T_dep, T_res)`, or a
    /// budget-exhausted bracket is inconsistent.
    BoundViolated,
    /// Configurations disagree on `T_dep`/`T_res`, or the automaton
    /// `res_mii` disagrees with the exact `t_res`.
    BoundsMismatch,
    /// IMS schedules differ between conflict oracles.
    ImsDiverged,
    /// An engine returned an internal-invariant error
    /// (verification failure, mapping gap, solver breakdown).
    EngineError,
    /// A guaranteed-schedulable case found no schedule without any
    /// budget trip.
    Unschedulable,
    /// Instruction relabeling changed the outcome.
    MetamorphicRelabel,
    /// Function-unit renaming/permutation changed the outcome.
    MetamorphicRenaming,
    /// Uniform latency scaling decreased the proven `T`.
    MetamorphicScaling,
    /// The `T+1` confirmation schedule failed to verify, or `T+1` was
    /// refuted without a modulo-infeasible table to justify it.
    MetamorphicTPlusOne,
    /// A warm incremental session and a cold solver disagreed on a
    /// decision (achieved period, optimality claim, or schedule
    /// acceptance) at some step of an edit script.
    IncrementalDiverged,
    /// The legacy and flat data layouts made different decisions — a
    /// breach of the documented bit-identity contract (same schedules,
    /// same attempt logs, same node/pivot counts).
    LayoutDiverged,
}

impl ViolationKind {
    /// Stable label (used in JSONL records and regression files).
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::CheckerReject => "checker-reject",
            ViolationKind::SimulatorReject => "simulator-reject",
            ViolationKind::ProvenMismatch => "proven-mismatch",
            ViolationKind::BelowProven => "below-proven",
            ViolationKind::FalseRefutation => "false-refutation",
            ViolationKind::BoundViolated => "bound-violated",
            ViolationKind::BoundsMismatch => "bounds-mismatch",
            ViolationKind::ImsDiverged => "ims-diverged",
            ViolationKind::EngineError => "engine-error",
            ViolationKind::Unschedulable => "unschedulable",
            ViolationKind::MetamorphicRelabel => "metamorphic-relabel",
            ViolationKind::MetamorphicRenaming => "metamorphic-renaming",
            ViolationKind::MetamorphicScaling => "metamorphic-scaling",
            ViolationKind::MetamorphicTPlusOne => "metamorphic-t-plus-1",
            ViolationKind::IncrementalDiverged => "incremental-diverged",
            ViolationKind::LayoutDiverged => "layout-diverged",
        }
    }

    /// Parses a label written by [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<ViolationKind> {
        use ViolationKind::*;
        for k in [
            CheckerReject,
            SimulatorReject,
            ProvenMismatch,
            BelowProven,
            FalseRefutation,
            BoundViolated,
            BoundsMismatch,
            ImsDiverged,
            EngineError,
            Unschedulable,
            MetamorphicRelabel,
            MetamorphicRenaming,
            MetamorphicScaling,
            MetamorphicTPlusOne,
            IncrementalDiverged,
            LayoutDiverged,
        ] {
            if k.as_str() == s {
                return Some(k);
            }
        }
        None
    }
}

/// One oracle-property violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property broke.
    pub kind: ViolationKind,
    /// Configuration that broke it.
    pub config: String,
    /// Deterministic human-readable detail.
    pub details: String,
}

/// Options for the runner.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Deterministic tick cap per engine invocation.
    pub ticks_per_config: u64,
    /// Run the metamorphic relations (skipped automatically when faults
    /// are injected — a broken checker fails them trivially).
    pub metamorphic: bool,
    /// Fault plan injected into the *baseline* configuration only; used
    /// to prove the oracle catches a deliberately broken pipeline.
    pub faults: FaultPlan,
    /// Iterations fed to the cycle-accurate simulator.
    pub sim_iterations: u32,
    /// When set, restricts the driver matrix to configurations using
    /// this exact engine, plus the baseline (which every cross-check and
    /// metamorphic relation compares against). `None` runs everything.
    pub engine_filter: Option<Engine>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            ticks_per_config: 2_000_000,
            metamorphic: true,
            faults: FaultPlan::default(),
            sim_iterations: 4,
            engine_filter: None,
        }
    }
}

/// Compact, timing-free outcome of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// Configuration name (`"ilp+ims/scan"`, …).
    pub config: &'static str,
    /// Accepted period, when a schedule was produced.
    pub period: Option<u32>,
    /// Whether the period was proven optimal.
    pub proven: bool,
    /// Whether any period attempt tripped a budget.
    pub timed_out: bool,
    /// Deterministic summary string (goes into the JSONL record).
    pub summary: String,
}

/// Everything the runner learned about one case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Case index within the campaign.
    pub index: usize,
    /// Case name.
    pub name: String,
    /// Whether the case carried the schedulability guarantee.
    pub guaranteed: bool,
    /// Nodes in the DDG.
    pub num_nodes: usize,
    /// Edges in the DDG.
    pub num_edges: usize,
    /// Recurrence bound.
    pub t_dep: u32,
    /// Resource bound (exact, packing-refined).
    pub t_res: u32,
    /// The agreed proven-optimal period, if any configuration proved one.
    pub proven_t: Option<u32>,
    /// Per-configuration outcomes, in configuration order.
    pub outcomes: Vec<ConfigOutcome>,
    /// Metamorphic relations actually evaluated (conclusively).
    pub metamorphic_checked: u32,
    /// Oracle-property violations.
    pub violations: Vec<Violation>,
}

impl CaseReport {
    /// Whether the case passed every property.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The driver matrix:
/// `(name, heuristic_incumbent, oracle, engine, layout)`. Index 0 is
/// the *baseline* every cross-check and metamorphic relation compares
/// against (and the only slot faults are injected into). The CP and
/// portfolio rows run without the IMS incumbent so the exact engines —
/// not a heuristic certificate — settle every period. The two
/// `…/legacy` rows re-run their flat twin under [`DataLayout::Legacy`]
/// and must be *decision-identical* to it (schedule, attempt log, node
/// and pivot counts) — see [`ViolationKind::LayoutDiverged`].
const SCHEDULER_CONFIGS: [(&str, bool, ConflictOracleMode, Engine, DataLayout); 10] = [
    (
        "ilp+ims/scan",
        true,
        ConflictOracleMode::Scan,
        Engine::Ilp,
        DataLayout::Flat,
    ),
    (
        "ilp+ims/auto",
        true,
        ConflictOracleMode::Automaton,
        Engine::Ilp,
        DataLayout::Flat,
    ),
    (
        "ilp+ims/scan/legacy",
        true,
        ConflictOracleMode::Scan,
        Engine::Ilp,
        DataLayout::Legacy,
    ),
    (
        "ilp/scan",
        false,
        ConflictOracleMode::Scan,
        Engine::Ilp,
        DataLayout::Flat,
    ),
    (
        "ilp/auto",
        false,
        ConflictOracleMode::Automaton,
        Engine::Ilp,
        DataLayout::Flat,
    ),
    (
        "ilp/scan/legacy",
        false,
        ConflictOracleMode::Scan,
        Engine::Ilp,
        DataLayout::Legacy,
    ),
    (
        "cp/scan",
        false,
        ConflictOracleMode::Scan,
        Engine::Cp,
        DataLayout::Flat,
    ),
    (
        "cp/auto",
        false,
        ConflictOracleMode::Automaton,
        Engine::Cp,
        DataLayout::Flat,
    ),
    (
        "race/scan",
        false,
        ConflictOracleMode::Scan,
        Engine::Portfolio,
        DataLayout::Flat,
    ),
    (
        "race/auto",
        false,
        ConflictOracleMode::Automaton,
        Engine::Portfolio,
        DataLayout::Flat,
    ),
];

fn scheduler_config(
    heuristic_incumbent: bool,
    oracle: ConflictOracleMode,
    engine: Engine,
    layout: DataLayout,
    faults: FaultPlan,
    max_live: Option<u32>,
) -> SchedulerConfig {
    SchedulerConfig {
        // Wall-clock limits off: ticks are the only budget, so outcomes
        // are machine-speed independent.
        time_limit_per_t: None,
        time_limit_total: None,
        heuristic_incumbent,
        conflict_oracle: oracle,
        engine,
        data_layout: layout,
        faults,
        max_live,
        ..SchedulerConfig::default()
    }
}

/// One driver invocation, reduced to what the oracle needs.
enum DriverOutcome {
    Ok(Box<ScheduleResult>),
    Failed(ScheduleError),
}

fn run_driver(case: &FuzzCase, config: SchedulerConfig, ticks: u64) -> DriverOutcome {
    let budget = Budget::with_tick_limit(ticks);
    match RateOptimalScheduler::new(case.machine.clone(), config).schedule_with(&case.ddg, &budget)
    {
        Ok(r) => DriverOutcome::Ok(Box::new(r)),
        Err(e) => DriverOutcome::Failed(e),
    }
}

fn attempts_timed_out(attempts: &[PeriodAttempt]) -> bool {
    attempts.iter().any(|a| {
        matches!(
            a.outcome,
            PeriodOutcome::TimedOut | PeriodOutcome::EngineFailed
        )
    })
}

/// Periods this attempt log *proved* infeasible.
fn refuted_periods(attempts: &[PeriodAttempt]) -> Vec<u32> {
    attempts
        .iter()
        .filter(|a| {
            matches!(
                a.outcome,
                PeriodOutcome::Infeasible | PeriodOutcome::RejectedAtBuild
            )
        })
        .map(|a| a.period)
        .collect()
}

/// Renders one outcome as a deterministic summary string.
///
/// `winner_agnostic` is set for portfolio configurations: which exact
/// engine wins a race depends on thread timing, so the summary folds
/// both into `"exact"` — the *decision* (period, provenness) is the
/// deterministic part, and it is all the summary may mention.
fn summarize(outcome: &DriverOutcome, winner_agnostic: bool) -> String {
    match outcome {
        DriverOutcome::Ok(r) => {
            let t = r.schedule.initiation_interval();
            let by = match (r.solved_by(), winner_agnostic) {
                (SolvedBy::Heuristic, _) => "ims",
                (SolvedBy::Ilp | SolvedBy::Cp, true) => "exact",
                (SolvedBy::Ilp, false) => "ilp",
                (SolvedBy::Cp, false) => "cp",
            };
            match r.optimality {
                Optimality::Proven => format!("T={t} proven {by}"),
                Optimality::BudgetExhausted { smallest_refuted } => {
                    format!("T={t} budget[{smallest_refuted}..{t}] {by}")
                }
            }
        }
        DriverOutcome::Failed(e) => match e {
            ScheduleError::NotFound { t_lb, t_max, .. } => format!("notfound[{t_lb}..{t_max}]"),
            ScheduleError::Cancelled => "cancelled".to_string(),
            other => format!("error:{other}"),
        },
    }
}

/// Checks one accepted schedule against the exact checker and the
/// cycle-accurate simulator.
pub(crate) fn check_schedule(
    config: &str,
    schedule: &PipelinedSchedule,
    ddg: &Ddg,
    machine: &Machine,
    max_live: Option<u32>,
    sim_iterations: u32,
    violations: &mut Vec<Violation>,
) {
    if let Err(e) = schedule.validate(ddg, machine) {
        violations.push(Violation {
            kind: ViolationKind::CheckerReject,
            config: config.to_string(),
            details: format!("checker rejected accepted schedule: {e}"),
        });
        return;
    }
    if let Some(limit) = max_live {
        if let Err(e) = schedule.validate_pressure(ddg, limit) {
            violations.push(Violation {
                kind: ViolationKind::CheckerReject,
                config: config.to_string(),
                details: format!("accepted schedule breaks the pressure cap: {e}"),
            });
            return;
        }
    }
    let policy = if schedule.is_mapped() {
        UnitPolicy::Fixed
    } else {
        UnitPolicy::Dynamic
    };
    if let Err(e) = simulate(machine, ddg, schedule, sim_iterations, policy) {
        violations.push(Violation {
            kind: ViolationKind::SimulatorReject,
            config: config.to_string(),
            details: format!("simulator rejected accepted schedule: {e}"),
        });
    }
}

/// Runs every configuration over `case` and applies the oracle.
pub fn run_case(case: &FuzzCase, opts: &DiffOptions) -> CaseReport {
    let faulted = opts.faults != FaultPlan::default();
    let mut violations: Vec<Violation> = Vec::new();

    // Property 5b: the automaton resource bound is the exact one.
    let t_res = case.machine.t_res(&case.ddg).unwrap_or(0);
    match swp_automata::res_mii(&case.machine, &case.ddg) {
        Ok(auto_bound) if auto_bound == t_res => {}
        Ok(auto_bound) => violations.push(Violation {
            kind: ViolationKind::BoundsMismatch,
            config: "res_mii".to_string(),
            details: format!("automaton res_mii {auto_bound} != exact t_res {t_res}"),
        }),
        Err(e) => violations.push(Violation {
            kind: ViolationKind::EngineError,
            config: "res_mii".to_string(),
            details: format!("res_mii failed: {e}"),
        }),
    }
    let t_dep = case.ddg.t_dep().unwrap_or(0);
    let t_lb = t_dep.max(t_res);

    // Stage 1: the driver configurations (engine × oracle matrix).
    let mut driver_outcomes: Vec<(usize, DriverOutcome)> = Vec::new();
    let mut outcomes: Vec<ConfigOutcome> = Vec::new();
    for (i, (name, incumbent, oracle, engine, layout)) in SCHEDULER_CONFIGS.iter().enumerate() {
        // The baseline (index 0) always runs: every cross-check and
        // metamorphic relation is anchored to it.
        if i != 0 && opts.engine_filter.is_some_and(|f| f != *engine) {
            continue;
        }
        let faults = if i == 0 {
            opts.faults
        } else {
            FaultPlan::default()
        };
        let outcome = run_driver(
            case,
            scheduler_config(*incumbent, *oracle, *engine, *layout, faults, case.max_live),
            opts.ticks_per_config,
        );
        let (period, proven, timed_out) = match &outcome {
            DriverOutcome::Ok(r) => (
                Some(r.schedule.initiation_interval()),
                r.is_proven_optimal(),
                attempts_timed_out(&r.attempts) || !r.is_proven_optimal(),
            ),
            DriverOutcome::Failed(ScheduleError::NotFound { attempts, .. }) => {
                (None, false, attempts_timed_out(attempts))
            }
            DriverOutcome::Failed(_) => (None, false, true),
        };
        outcomes.push(ConfigOutcome {
            config: name,
            period,
            proven,
            timed_out,
            summary: summarize(&outcome, matches!(engine, Engine::Portfolio)),
        });
        driver_outcomes.push((i, outcome));
    }

    // Property 8: the legacy-layout rows are decision-identical to
    // their flat twins — schedule, optimality, and the full attempt log
    // (periods, verdicts, node and pivot counts). Skipped under fault
    // injection, where the faulted baseline differs by construction.
    if !faulted {
        for (i, outcome) in &driver_outcomes {
            let name = SCHEDULER_CONFIGS[*i].0;
            let Some(twin_name) = name.strip_suffix("/legacy") else {
                continue;
            };
            let Some((_, twin)) = driver_outcomes
                .iter()
                .find(|(j, _)| SCHEDULER_CONFIGS[*j].0 == twin_name)
            else {
                continue;
            };
            let (legacy_sig, flat_sig) = (layout_signature(outcome), layout_signature(twin));
            if legacy_sig != flat_sig {
                violations.push(Violation {
                    kind: ViolationKind::LayoutDiverged,
                    config: name.to_string(),
                    details: format!("legacy {legacy_sig} != flat {flat_sig}"),
                });
            }
        }
    }

    // Property 1: accepted schedules verify. Property 5a: bounds hold.
    for (i, outcome) in &driver_outcomes {
        let name = SCHEDULER_CONFIGS[*i].0;
        // Note: a fault-injected configuration gets no special
        // treatment here — the oracle judging every engine by the same
        // rules is precisely how a deliberately broken checker is
        // caught (it surfaces as `EngineError`/`FalseRefutation`).
        match outcome {
            DriverOutcome::Ok(r) => {
                check_schedule(
                    name,
                    &r.schedule,
                    &case.ddg,
                    &case.machine,
                    case.max_live,
                    opts.sim_iterations,
                    &mut violations,
                );
                let t = r.schedule.initiation_interval();
                if t < t_lb {
                    violations.push(Violation {
                        kind: ViolationKind::BoundViolated,
                        config: name.to_string(),
                        details: format!("accepted T={t} below lower bound {t_lb}"),
                    });
                }
                if r.t_dep != t_dep || r.t_res != t_res {
                    violations.push(Violation {
                        kind: ViolationKind::BoundsMismatch,
                        config: name.to_string(),
                        details: format!(
                            "reported bounds ({}, {}) != computed ({t_dep}, {t_res})",
                            r.t_dep, r.t_res
                        ),
                    });
                }
                if let Optimality::BudgetExhausted { smallest_refuted } = r.optimality {
                    if smallest_refuted > t {
                        violations.push(Violation {
                            kind: ViolationKind::BoundViolated,
                            config: name.to_string(),
                            details: format!("budget bracket [{smallest_refuted}..{t}] is empty"),
                        });
                    }
                }
            }
            DriverOutcome::Failed(e) => match e {
                ScheduleError::NotFound { .. } | ScheduleError::Cancelled => {}
                other => {
                    violations.push(Violation {
                        kind: ViolationKind::EngineError,
                        config: name.to_string(),
                        details: format!("driver error: {other}"),
                    });
                }
            },
        }
    }

    // Property 2: proven results agree on T.
    let proven_ts: Vec<(usize, u32)> = driver_outcomes
        .iter()
        .filter_map(|(i, o)| match o {
            DriverOutcome::Ok(r) if r.is_proven_optimal() => {
                Some((*i, r.schedule.initiation_interval()))
            }
            _ => None,
        })
        .collect();
    let proven_t = proven_ts.iter().map(|&(_, t)| t).min();
    if let Some(t_star) = proven_t {
        for &(i, t) in &proven_ts {
            if t != t_star {
                violations.push(Violation {
                    kind: ViolationKind::ProvenMismatch,
                    config: SCHEDULER_CONFIGS[i].0.to_string(),
                    details: format!("proven T={t} disagrees with proven T={t_star}"),
                });
            }
        }
        // Property 3: nothing beats a proven optimum.
        // Property 4: nobody refuted the proven-feasible period.
        for (i, outcome) in &driver_outcomes {
            let name = SCHEDULER_CONFIGS[*i].0;
            match outcome {
                DriverOutcome::Ok(r) => {
                    let t = r.schedule.initiation_interval();
                    if t < t_star {
                        violations.push(Violation {
                            kind: ViolationKind::BelowProven,
                            config: name.to_string(),
                            details: format!("accepted T={t} beats proven optimum {t_star}"),
                        });
                    }
                    if refuted_periods(&r.attempts).contains(&t_star) && t != t_star {
                        violations.push(Violation {
                            kind: ViolationKind::FalseRefutation,
                            config: name.to_string(),
                            details: format!("refuted period {t_star} proven feasible elsewhere"),
                        });
                    }
                }
                DriverOutcome::Failed(ScheduleError::NotFound { attempts, .. }) => {
                    if refuted_periods(attempts).contains(&t_star) {
                        violations.push(Violation {
                            kind: ViolationKind::FalseRefutation,
                            config: name.to_string(),
                            details: format!("refuted period {t_star} proven feasible elsewhere"),
                        });
                    }
                }
                DriverOutcome::Failed(_) => {}
            }
        }
    }

    // Property 7: guaranteed-schedulable cases schedule (when complete).
    if case.guaranteed && !faulted {
        for (i, outcome) in &driver_outcomes {
            if let DriverOutcome::Failed(ScheduleError::NotFound { attempts, .. }) = outcome {
                if !attempts_timed_out(attempts) {
                    violations.push(Violation {
                        kind: ViolationKind::Unschedulable,
                        config: SCHEDULER_CONFIGS[*i].0.to_string(),
                        details: "guaranteed-schedulable case exhausted the period range"
                            .to_string(),
                    });
                }
            }
        }
    }

    // Stage 2: iterative modulo scheduling alone, under both oracles.
    let mut ims_schedules: Vec<Option<PipelinedSchedule>> = Vec::new();
    for (name, automaton) in [("ims/scan", false), ("ims/auto", true)] {
        let budget = Budget::with_tick_limit(opts.ticks_per_config);
        let ims = IterativeModuloScheduler::new(case.machine.clone())
            .with_automaton(automaton)
            .with_max_live(case.max_live);
        match ims.schedule_with(&case.ddg, &budget) {
            Ok(hr) => {
                let ii = hr.schedule.initiation_interval();
                check_schedule(
                    name,
                    &hr.schedule,
                    &case.ddg,
                    &case.machine,
                    case.max_live,
                    opts.sim_iterations,
                    &mut violations,
                );
                if ii < t_lb {
                    violations.push(Violation {
                        kind: ViolationKind::BoundViolated,
                        config: name.to_string(),
                        details: format!("IMS II={ii} below lower bound {t_lb}"),
                    });
                }
                if let Some(t_star) = proven_t {
                    if ii < t_star {
                        violations.push(Violation {
                            kind: ViolationKind::BelowProven,
                            config: name.to_string(),
                            details: format!("IMS II={ii} beats proven optimum {t_star}"),
                        });
                    }
                }
                outcomes.push(ConfigOutcome {
                    config: name,
                    period: Some(ii),
                    proven: false,
                    timed_out: false,
                    summary: format!("II={ii}"),
                });
                ims_schedules.push(Some(hr.schedule));
            }
            Err(e) => {
                match &e {
                    HeuristicError::NotFound { .. }
                    | HeuristicError::BudgetExhausted
                    | HeuristicError::Cancelled => {}
                    other => violations.push(Violation {
                        kind: ViolationKind::EngineError,
                        config: name.to_string(),
                        details: format!("IMS error: {other}"),
                    }),
                }
                outcomes.push(ConfigOutcome {
                    config: name,
                    period: None,
                    proven: false,
                    timed_out: matches!(
                        e,
                        HeuristicError::BudgetExhausted | HeuristicError::Cancelled
                    ),
                    summary: format!("ims-{e:?}")
                        .to_lowercase()
                        .chars()
                        .filter(|c| !c.is_whitespace())
                        .collect(),
                });
                ims_schedules.push(None);
            }
        }
    }
    // Property 6: the two oracles yield bit-identical IMS schedules.
    if let [Some(scan), Some(auto)] = &ims_schedules[..] {
        if scan != auto {
            violations.push(Violation {
                kind: ViolationKind::ImsDiverged,
                config: "ims".to_string(),
                details: format!(
                    "scan II={} vs automaton II={} (or placements differ)",
                    scan.initiation_interval(),
                    auto.initiation_interval()
                ),
            });
        }
    }

    // Stage 3: metamorphic relations, against the *unfaulted* baseline.
    let mut metamorphic_checked = 0;
    if opts.metamorphic && !faulted {
        let baseline = &driver_outcomes[0].1;
        metamorphic_checked += metamorphic_relabel(case, baseline, opts, &mut violations) as u32;
        metamorphic_checked +=
            metamorphic_permute_classes(case, baseline, opts, &mut violations) as u32;
        metamorphic_checked += metamorphic_scale(case, baseline, opts, &mut violations) as u32;
        metamorphic_checked += metamorphic_t_plus_one(case, baseline, opts, &mut violations) as u32;
    }

    CaseReport {
        index: case.index,
        name: case.name.clone(),
        guaranteed: case.guaranteed,
        num_nodes: case.ddg.num_nodes(),
        num_edges: case.ddg.num_edges(),
        t_dep,
        t_res,
        proven_t,
        outcomes,
        metamorphic_checked,
        violations,
    }
}

/// Exhaustive decision signature of a driver outcome, for the layout
/// bit-identity property: schedule placements, optimality claim, and
/// the per-period attempt log down to branch-and-bound node and simplex
/// pivot counts (everything except wall-clock). Tick budgets make both
/// runs deterministic, so any difference is a real divergence.
fn layout_signature(outcome: &DriverOutcome) -> String {
    let fmt_attempts = |attempts: &[PeriodAttempt]| -> String {
        attempts
            .iter()
            .map(|a| {
                format!(
                    "[T={} {:?} nodes={} pivots={} vars={} constrs={}]",
                    a.period, a.outcome, a.nodes, a.lp_iterations, a.num_vars, a.num_constrs
                )
            })
            .collect()
    };
    match outcome {
        DriverOutcome::Ok(r) => format!(
            "T={} opt={:?} times={:?} units={:?} {}",
            r.schedule.initiation_interval(),
            r.optimality,
            r.schedule.start_times(),
            r.schedule.assignment(),
            fmt_attempts(&r.attempts)
        ),
        DriverOutcome::Failed(ScheduleError::NotFound {
            t_lb,
            t_max,
            attempts,
            ..
        }) => format!("notfound[{t_lb}..{t_max}] {}", fmt_attempts(attempts)),
        DriverOutcome::Failed(e) => format!("error:{e}"),
    }
}

/// `(T, proven)` of a conclusive outcome; `None` when the run tripped a
/// budget anywhere (in which case comparisons would be unsound).
fn conclusive_signature(outcome: &DriverOutcome) -> Option<(Option<u32>, bool)> {
    match outcome {
        DriverOutcome::Ok(r) => {
            if attempts_timed_out(&r.attempts) || !r.is_proven_optimal() {
                None
            } else {
                Some((Some(r.schedule.initiation_interval()), true))
            }
        }
        DriverOutcome::Failed(ScheduleError::NotFound { attempts, .. }) => {
            if attempts_timed_out(attempts) {
                None
            } else {
                Some((None, false))
            }
        }
        DriverOutcome::Failed(_) => None,
    }
}

fn rerun_baseline(case: &FuzzCase, opts: &DiffOptions) -> DriverOutcome {
    run_driver(
        case,
        scheduler_config(
            true,
            ConflictOracleMode::Scan,
            Engine::Ilp,
            DataLayout::Flat,
            FaultPlan::default(),
            case.max_live,
        ),
        opts.ticks_per_config,
    )
}

/// Relabeling instructions must not change the outcome. Returns whether
/// the relation was conclusively evaluated.
fn metamorphic_relabel(
    case: &FuzzCase,
    baseline: &DriverOutcome,
    opts: &DiffOptions,
    violations: &mut Vec<Violation>,
) -> bool {
    let Some(base_sig) = conclusive_signature(baseline) else {
        return false;
    };
    let mut g = Ddg::new();
    let ids: Vec<_> = case
        .ddg
        .nodes()
        .map(|(_, n)| g.add_node(format!("relabeled_{}", n.name), n.class, n.latency))
        .collect();
    for e in case.ddg.edges() {
        g.add_edge(ids[e.src.index()], ids[e.dst.index()], e.distance)
            .expect("same shape");
    }
    let renamed = FuzzCase {
        ddg: g,
        ..case.clone()
    };
    let outcome = rerun_baseline(&renamed, opts);
    let Some(sig) = conclusive_signature(&outcome) else {
        return false;
    };
    if sig != base_sig {
        violations.push(Violation {
            kind: ViolationKind::MetamorphicRelabel,
            config: "ilp+ims/scan".to_string(),
            details: format!(
                "relabeled outcome {} != original {}",
                summarize(&outcome, false),
                summarize(baseline, false)
            ),
        });
    }
    true
}

/// Rotating the class order (renaming every function unit) must not
/// change the outcome.
fn metamorphic_permute_classes(
    case: &FuzzCase,
    baseline: &DriverOutcome,
    opts: &DiffOptions,
    violations: &mut Vec<Violation>,
) -> bool {
    let k = case.machine.num_classes();
    if k < 2 {
        return false;
    }
    let Some(base_sig) = conclusive_signature(baseline) else {
        return false;
    };
    // Class c moves to slot (c + 1) % k; unit names follow their slot.
    let mut types: Vec<FuType> = Vec::with_capacity(k);
    for slot in 0..k {
        let old = (slot + k - 1) % k;
        let mut t = case.machine.types()[old].clone();
        t.name = format!("R{slot}");
        types.push(t);
    }
    let mut machine = Machine::new(types).expect("counts preserved");
    if let Some(b) = case.machine.bundle() {
        // Slot groups name classes by index, so they rotate with them.
        let rotated = BundleSpec {
            width: b.width,
            groups: b
                .groups
                .iter()
                .map(|gr| SlotGroup {
                    name: gr.name.clone(),
                    cap: gr.cap,
                    classes: gr.classes.iter().map(|&c| (c + 1) % k).collect(),
                })
                .collect(),
        };
        machine = machine.with_bundle(rotated).expect("caps preserved");
    }
    let mut g = Ddg::new();
    let ids: Vec<_> = case
        .ddg
        .nodes()
        .map(|(_, n)| {
            g.add_node(
                n.name.clone(),
                OpClass::new((n.class.index() + 1) % k),
                n.latency,
            )
        })
        .collect();
    for e in case.ddg.edges() {
        g.add_edge(ids[e.src.index()], ids[e.dst.index()], e.distance)
            .expect("same shape");
    }
    let permuted = FuzzCase {
        machine,
        ddg: g,
        ..case.clone()
    };
    let outcome = rerun_baseline(&permuted, opts);
    let Some(sig) = conclusive_signature(&outcome) else {
        return false;
    };
    if sig != base_sig {
        violations.push(Violation {
            kind: ViolationKind::MetamorphicRenaming,
            config: "ilp+ims/scan".to_string(),
            details: format!(
                "class-permuted outcome {} != original {}",
                summarize(&outcome, false),
                summarize(baseline, false)
            ),
        });
    }
    true
}

/// Doubling every latency (node and machine; reservation tables
/// untouched) can only tighten dependence constraints, so the proven
/// optimum must not decrease.
fn metamorphic_scale(
    case: &FuzzCase,
    baseline: &DriverOutcome,
    opts: &DiffOptions,
    violations: &mut Vec<Violation>,
) -> bool {
    let DriverOutcome::Ok(base) = baseline else {
        return false;
    };
    if !base.is_proven_optimal() {
        return false;
    }
    let t_orig = base.schedule.initiation_interval();
    let types: Vec<FuType> = case
        .machine
        .types()
        .iter()
        .map(|t| FuType {
            latency: t.latency * 2,
            ..t.clone()
        })
        .collect();
    let mut machine = Machine::new(types).expect("counts preserved");
    if let Some(b) = case.machine.bundle() {
        machine = machine.with_bundle(b.clone()).expect("caps preserved");
    }
    let mut g = Ddg::new();
    let ids: Vec<_> = case
        .ddg
        .nodes()
        .map(|(_, n)| g.add_node(n.name.clone(), n.class, n.latency * 2))
        .collect();
    for e in case.ddg.edges() {
        g.add_edge(ids[e.src.index()], ids[e.dst.index()], e.distance)
            .expect("same shape");
    }
    let scaled = FuzzCase {
        machine,
        ddg: g,
        ..case.clone()
    };
    let outcome = rerun_baseline(&scaled, opts);
    let DriverOutcome::Ok(res) = &outcome else {
        // Scaling can push the optimum past the search cap; that is a
        // legitimate NotFound, not a monotonicity violation.
        return false;
    };
    if !res.is_proven_optimal() {
        return false;
    }
    let t_scaled = res.schedule.initiation_interval();
    if t_scaled < t_orig {
        violations.push(Violation {
            kind: ViolationKind::MetamorphicScaling,
            config: "ilp+ims/scan".to_string(),
            details: format!("latency ×2 decreased proven T: {t_orig} -> {t_scaled}"),
        });
    }
    true
}

/// After a proven optimum at `T`, probe `T+1` with the IMS: a positive
/// answer must verify. A refutation of `T+1` by the baseline's own
/// attempt log is only acceptable when some used class's table is
/// modulo-infeasible at `T+1`.
fn metamorphic_t_plus_one(
    case: &FuzzCase,
    baseline: &DriverOutcome,
    opts: &DiffOptions,
    violations: &mut Vec<Violation>,
) -> bool {
    let DriverOutcome::Ok(base) = baseline else {
        return false;
    };
    if !base.is_proven_optimal() {
        return false;
    }
    let t1 = base.schedule.initiation_interval() + 1;
    let budget = Budget::with_tick_limit(opts.ticks_per_config);
    let ims = IterativeModuloScheduler::new(case.machine.clone()).with_max_live(case.max_live);
    match ims.schedule_at_with(&case.ddg, t1, &budget) {
        Ok(Some(s)) => {
            if s.initiation_interval() != t1 {
                violations.push(Violation {
                    kind: ViolationKind::MetamorphicTPlusOne,
                    config: "ims".to_string(),
                    details: format!("asked for II={t1}, got II={}", s.initiation_interval()),
                });
            } else {
                let before = violations.len();
                check_schedule(
                    "ims@T+1",
                    &s,
                    &case.ddg,
                    &case.machine,
                    case.max_live,
                    opts.sim_iterations,
                    violations,
                );
                // Re-tag verification failures under the metamorphic kind
                // so shrinking targets the right predicate.
                for v in violations.iter_mut().skip(before) {
                    v.kind = ViolationKind::MetamorphicTPlusOne;
                }
            }
            true
        }
        Ok(None) | Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_cases, GenConfig, MachineFamily};

    #[test]
    fn clean_pipeline_runs_clean() {
        // A healthy engine set over a small campaign: zero violations.
        let cfg = GenConfig {
            seed: 11,
            max_nodes: 6,
            ..GenConfig::default()
        };
        let opts = DiffOptions::default();
        for case in gen_cases(&cfg, 40) {
            let report = run_case(&case, &opts);
            assert!(report.passed(), "{}: {:?}", case.name, report.violations);
        }
    }

    #[test]
    fn engine_filter_keeps_baseline_and_matching_rows() {
        let cfg = GenConfig {
            seed: 7,
            max_nodes: 5,
            ..GenConfig::default()
        };
        let opts = DiffOptions {
            engine_filter: Some(Engine::Portfolio),
            ..DiffOptions::default()
        };
        for case in gen_cases(&cfg, 5) {
            let report = run_case(&case, &opts);
            let names: Vec<&str> = report.outcomes.iter().map(|o| o.config).collect();
            assert_eq!(
                names,
                [
                    "ilp+ims/scan",
                    "race/scan",
                    "race/auto",
                    "ims/scan",
                    "ims/auto"
                ],
                "filtered matrix should be baseline + portfolio rows + IMS stages"
            );
            assert!(report.passed(), "{}: {:?}", case.name, report.violations);
        }
    }

    #[test]
    fn vliw_family_runs_clean() {
        let cfg = GenConfig {
            seed: 21,
            max_nodes: 5,
            family: MachineFamily::Vliw,
            ..GenConfig::default()
        };
        // Tight ticks keep this debug-build smoke cheap; budget trips
        // just mark outcomes inconclusive. The full-scale campaign runs
        // in release via `ci/scenario-smoke.sh`.
        let opts = DiffOptions {
            ticks_per_config: 200_000,
            ..DiffOptions::default()
        };
        for case in gen_cases(&cfg, 10) {
            let report = run_case(&case, &opts);
            assert!(report.passed(), "{}: {:?}", case.name, report.violations);
        }
    }

    #[test]
    fn regpressure_family_runs_clean() {
        let cfg = GenConfig {
            seed: 23,
            max_nodes: 5,
            family: MachineFamily::RegPressure,
            ..GenConfig::default()
        };
        let opts = DiffOptions {
            ticks_per_config: 200_000,
            ..DiffOptions::default()
        };
        let mut capped = 0;
        for case in gen_cases(&cfg, 10) {
            capped += usize::from(case.max_live.is_some());
            let report = run_case(&case, &opts);
            assert!(report.passed(), "{}: {:?}", case.name, report.violations);
        }
        assert!(capped > 0, "campaign exercised no pressure caps");
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = GenConfig {
            seed: 5,
            ..GenConfig::default()
        };
        let opts = DiffOptions::default();
        for case in gen_cases(&cfg, 10) {
            let a = run_case(&case, &opts);
            let b = run_case(&case, &opts);
            assert_eq!(a.proven_t, b.proven_t);
            let sa: Vec<&str> = a.outcomes.iter().map(|o| o.summary.as_str()).collect();
            let sb: Vec<&str> = b.outcomes.iter().map(|o| o.summary.as_str()).collect();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn fault_injection_is_caught() {
        // Rejecting every schedule in the baseline config must surface a
        // disagreement on some case of a small campaign.
        let cfg = GenConfig {
            seed: 3,
            ..GenConfig::default()
        };
        let opts = DiffOptions {
            faults: FaultPlan {
                reject_ilp_schedule: true,
                reject_heuristic_schedule: true,
                ..FaultPlan::default()
            },
            ..DiffOptions::default()
        };
        let caught = gen_cases(&cfg, 25)
            .iter()
            .any(|case| !run_case(case, &opts).passed());
        assert!(caught, "broken checker escaped the differential oracle");
    }
}
