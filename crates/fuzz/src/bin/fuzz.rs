//! The differential fuzzing campaign driver.
//!
//! ```text
//! cargo run -p swp-fuzz --release --bin fuzz -- \
//!     --seed 5 --cases 500 --workers 4 [--budget-ms 60000] [--shrink] \
//!     [--artifact fuzz.jsonl] [--out DIR] [--adversarial 0.6] \
//!     [--max-nodes 8] [--ticks 2000000] [--no-metamorphic] \
//!     [--engine ilp|cp|portfolio] \
//!     [--machine-family classic|vliw|regpressure] \
//!     [--inject-fault reject-schedules|fail-ilp|fail-heuristic] \
//!     [--incremental [--edits 4]]
//! ```
//!
//! Cases are sharded over the `swp-harness` work-stealing executor and
//! reported in campaign order, so the JSONL artifact for a completed
//! same-seed run is byte-identical at any worker count. `--budget-ms`
//! is a wall-clock stop for CI smoke runs: cases not started before the
//! deadline are skipped (and counted), already-finished records stay
//! deterministic. `--inject-fault` deliberately breaks the baseline
//! configuration via the scheduler's test-only fault plan, to
//! demonstrate end to end that the oracle catches a broken engine and
//! the shrinker minimizes the counterexample. `--engine` narrows the
//! driver matrix to one exact engine (plus the baseline it is
//! cross-checked against) — CI uses `--engine portfolio` for a cheap
//! race-focused smoke.
//!
//! `--incremental` switches to the incremental-vs-cold differential: a
//! warm [`SolveSession`] per case, a seeded `--edits`-step edit script,
//! and a cold (`warm_sweep: false`) re-solve at every step. Warm reuse
//! must never change a decision, and every warm-accepted schedule is
//! re-verified by the checker and the cycle-accurate simulator.
//!
//! [`SolveSession`]: swp_incr::SolveSession

use std::collections::BTreeMap;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use swp_core::{Engine, FaultPlan};
use swp_fuzz::{
    gen_case, run_case, run_incr_case, shrink, to_json_line, write_regression, CaseReport,
    DiffOptions, FuzzCase, GenConfig, IncrOptions, IncrReport, MachineFamily,
};
use swp_harness::{executor, Flags};
use swp_loops::fingerprint::{ddg_fingerprint, machine_fingerprint};

fn parse_fault(name: &str) -> Result<FaultPlan, String> {
    match name {
        "reject-schedules" => Ok(FaultPlan {
            reject_ilp_schedule: true,
            reject_heuristic_schedule: true,
            ..FaultPlan::default()
        }),
        "reject-ilp" => Ok(FaultPlan {
            reject_ilp_schedule: true,
            ..FaultPlan::default()
        }),
        "reject-heuristic" => Ok(FaultPlan {
            reject_heuristic_schedule: true,
            ..FaultPlan::default()
        }),
        "fail-ilp" => Ok(FaultPlan {
            fail_ilp: true,
            ..FaultPlan::default()
        }),
        "fail-heuristic" => Ok(FaultPlan {
            fail_heuristic_incumbent: true,
            ..FaultPlan::default()
        }),
        other => Err(format!(
            "unknown fault `{other}` (use reject-schedules, reject-ilp, \
             reject-heuristic, fail-ilp, or fail-heuristic)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("fuzz: {e}");
            ExitCode::FAILURE
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run() -> Result<ExitCode, String> {
    let flags = Flags::parse(
        std::env::args().skip(1),
        &["shrink", "no-metamorphic", "incremental"],
    )?;
    let seed: u64 = flags.get_or("seed", 0)?;
    let cases: usize = flags.get_or("cases", 200)?;
    let workers: usize = flags.get_or("workers", 1)?;
    let budget_ms: u64 = flags.get_or("budget-ms", 0)?;
    let adversarial: f64 = flags.get_or("adversarial", 0.6)?;
    let max_nodes: usize = flags.get_or("max-nodes", 8)?;
    let ticks: u64 = flags.get_or("ticks", 2_000_000)?;
    let do_shrink = flags.has("shrink");
    let family = match flags.get("machine-family") {
        None => MachineFamily::Classic,
        Some(s) => MachineFamily::parse(s).ok_or_else(|| {
            format!("unknown machine family `{s}` (use classic, vliw, or regpressure)")
        })?,
    };

    let gen_config = GenConfig {
        seed,
        max_nodes,
        adversarial_fraction: adversarial,
        family,
        ..GenConfig::default()
    };

    if flags.has("incremental") {
        let incr_opts = IncrOptions {
            seed,
            ticks_per_solve: ticks,
            edits: flags.get_or("edits", 4)?,
            ..IncrOptions::default()
        };
        return run_incremental(&flags, &gen_config, &incr_opts, cases, workers, budget_ms);
    }
    let mut opts = DiffOptions {
        ticks_per_config: ticks,
        metamorphic: !flags.has("no-metamorphic"),
        ..DiffOptions::default()
    };
    if let Some(engine) = flags.get("engine") {
        opts.engine_filter = Some(match engine {
            "ilp" => Engine::Ilp,
            "cp" => Engine::Cp,
            "portfolio" => Engine::Portfolio,
            other => {
                return Err(format!(
                    "unknown engine `{other}` (use ilp, cp, or portfolio)"
                ))
            }
        });
    }
    if let Some(fault) = flags.get("inject-fault") {
        opts.faults = parse_fault(fault)?;
        opts.metamorphic = false;
    }

    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
    let started = Instant::now();
    println!(
        "== swp-fuzz: seed {seed}, {cases} cases ({} family), {workers} worker(s), \
         {ticks} ticks/config ==",
        family.as_str()
    );

    let gen_ref = &gen_config;
    let opts_ref = &opts;
    let results: Vec<Option<(FuzzCase, CaseReport)>> =
        executor::run_indexed(cases, workers, move |_worker, index| {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Some(None); // budget spent: skip, but keep the slot
                }
            }
            let case = gen_case(gen_ref, index);
            let report = run_case(&case, opts_ref);
            Some(Some((case, report)))
        })
        .into_iter()
        .map(Option::flatten)
        .collect();

    // Artifact: completed cases, campaign order, timing-free.
    if let Some(path) = flags.get("artifact") {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create artifact {path}: {e}"))?;
        for entry in results.iter().flatten() {
            let (case, report) = entry;
            let line = to_json_line(
                report,
                ddg_fingerprint(&case.ddg),
                machine_fingerprint(&case.machine),
            );
            writeln!(file, "{line}").map_err(|e| format!("artifact write failed: {e}"))?;
        }
    }

    // Telemetry.
    let completed = results.iter().flatten().count();
    let skipped = cases - completed;
    let scheduled = results
        .iter()
        .flatten()
        .filter(|(_, r)| r.proven_t.is_some())
        .count();
    let metamorphic: u64 = results
        .iter()
        .flatten()
        .map(|(_, r)| u64::from(r.metamorphic_checked))
        .sum();
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut failing: Vec<&(FuzzCase, CaseReport)> = Vec::new();
    for entry in results.iter().flatten() {
        if !entry.1.passed() {
            failing.push(entry);
        }
        for v in &entry.1.violations {
            *by_kind.entry(v.kind.as_str()).or_insert(0) += 1;
        }
    }
    let violations: usize = by_kind.values().sum();
    println!(
        "completed {completed}/{cases} case(s) ({skipped} skipped by --budget-ms), \
         {scheduled} with a proven optimum, {metamorphic} metamorphic check(s)"
    );
    println!(
        "violations: {violations} across {} failing case(s) [{:.1}s]",
        failing.len(),
        started.elapsed().as_secs_f64()
    );
    for (kind, n) in &by_kind {
        println!("  {kind}: {n}");
    }

    if failing.is_empty() {
        println!("ok: zero property violations");
        return Ok(ExitCode::SUCCESS);
    }

    // Report (and optionally shrink) one representative per kind.
    let out_dir = flags.get("out").map(std::path::PathBuf::from);
    let mut seen = BTreeMap::new();
    for (case, report) in &failing {
        let v = &report.violations[0];
        if seen.contains_key(v.kind.as_str()) {
            continue;
        }
        seen.insert(v.kind.as_str(), true);
        eprintln!(
            "\ncase {}: {} [{}] {}",
            case.name,
            v.kind.as_str(),
            v.config,
            v.details
        );
        let minimized = if do_shrink {
            let outcome = shrink(case, &opts, v.kind);
            eprintln!(
                "shrunk to {} node(s) / {} edge(s) after {} candidate(s)",
                outcome.case.ddg.num_nodes(),
                outcome.case.ddg.num_edges(),
                outcome.tested
            );
            outcome.case
        } else {
            (*case).clone()
        };
        let text = write_regression(&minimized, Some(v.kind));
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            let file = dir.join(format!("{}-{}.txt", v.kind.as_str(), case.name));
            std::fs::write(&file, &text).map_err(|e| format!("cannot write {file:?}: {e}"))?;
            eprintln!("regression file written to {}", file.display());
        } else {
            eprintln!("--- regression file ---\n{text}-----------------------");
        }
    }
    Ok(ExitCode::FAILURE)
}

/// The incremental-vs-cold campaign: one warm session + seeded edit
/// script per case, a cold re-solve at every step, decisions compared
/// only when both sides finished inside the tick budget.
fn run_incremental(
    flags: &Flags,
    gen_config: &GenConfig,
    opts: &IncrOptions,
    cases: usize,
    workers: usize,
    budget_ms: u64,
) -> Result<ExitCode, String> {
    let deadline = (budget_ms > 0).then(|| Instant::now() + Duration::from_millis(budget_ms));
    let started = Instant::now();
    println!(
        "== swp-fuzz --incremental: seed {}, {cases} cases, {workers} worker(s), \
         {} edit(s)/case, {} ticks/solve ==",
        opts.seed, opts.edits, opts.ticks_per_solve
    );

    let results: Vec<Option<(FuzzCase, IncrReport)>> =
        executor::run_indexed(cases, workers, move |_worker, index| {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Some(None);
                }
            }
            let case = gen_case(gen_config, index);
            let report = run_incr_case(&case, opts);
            Some(Some((case, report)))
        })
        .into_iter()
        .map(Option::flatten)
        .collect();

    let completed = results.iter().flatten().count();
    let skipped = cases - completed;
    let (mut steps, mut compared) = (0usize, 0usize);
    let (mut skips, mut basis, mut hints, mut replays, mut nogoods) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut failing: Vec<&(FuzzCase, IncrReport)> = Vec::new();
    for entry in results.iter().flatten() {
        let r = &entry.1;
        steps += r.steps;
        compared += r.compared;
        skips += r.periods_skipped;
        basis += r.basis_hits;
        hints += r.ims_hint_hits;
        replays += r.replays;
        nogoods += r.nogood_replays;
        if !r.passed() {
            failing.push(entry);
        }
    }
    println!(
        "completed {completed}/{cases} case(s) ({skipped} skipped by --budget-ms), \
         {steps} step(s), {compared} conclusive comparison(s)"
    );
    println!(
        "reuse: {skips} period(s) skipped, {basis} basis hit(s), {hints} hint hit(s), \
         {replays} replay(s), {nogoods} no-good replay(s) [{:.1}s]",
        started.elapsed().as_secs_f64()
    );

    if failing.is_empty() {
        println!("ok: zero incremental divergences");
        return Ok(ExitCode::SUCCESS);
    }

    // Incremental failures depend on the whole edit script, which the
    // structural shrinker cannot preserve — emit the unshrunk case.
    let out_dir = flags.get("out").map(std::path::PathBuf::from);
    for (case, report) in failing.iter().take(3) {
        let v = &report.violations[0];
        eprintln!(
            "\ncase {}: {} [{}] {}",
            case.name,
            v.kind.as_str(),
            v.config,
            v.details
        );
        let text = write_regression(case, Some(v.kind));
        if let Some(dir) = &out_dir {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            let file = dir.join(format!("{}-{}.txt", v.kind.as_str(), case.name));
            std::fs::write(&file, &text).map_err(|e| format!("cannot write {file:?}: {e}"))?;
            eprintln!("regression file written to {}", file.display());
        } else {
            eprintln!("--- regression file ---\n{text}-----------------------");
        }
    }
    eprintln!("{} failing case(s) total", failing.len());
    Ok(ExitCode::FAILURE)
}
