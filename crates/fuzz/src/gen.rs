//! Seeded generators for random scheduling problems.
//!
//! A fuzz case is a `(machine, ddg)` pair. Both halves are drawn from a
//! per-case [`SmallRng`] derived from the campaign seed and the case
//! index by a splitmix64 step, so case `i` of seed `s` is the same
//! problem on every run, at any worker count, on any host.
//!
//! Two modes:
//!
//! * **Guaranteed-schedulable** — every unit type is a clean pipeline
//!   (single issue-slot stage) and the DDG has only forward intra-
//!   iteration edges plus distance-≥1 recurrences. Such a case always
//!   admits a schedule at `T = max(T_lb, n)` (issue the `n` operations
//!   at distinct cycles with inter-iteration offsets absorbing the
//!   dependences), and `n ≤ T_lb + 16` for the sizes generated here, so
//!   an unbudgeted complete search must succeed. The differential
//!   runner treats "no schedule found, no timeouts" as a violation for
//!   these cases.
//! * **Adversarial** — unclean reservation tables with multi-stage
//!   collisions, non-pipelined units, mismatched node/machine
//!   latencies, denser edges, longer carried distances. No
//!   schedulability promise; the oracle checks consistency only.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swp_ddg::{Ddg, NodeId, OpClass};
use swp_heuristics::IterativeModuloScheduler;
use swp_machine::{BundleSpec, FuType, Machine, ReservationTable, SlotGroup};
use swp_milp::Budget;

/// Which machine-model family a campaign draws its cases from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MachineFamily {
    /// Scalar machines described by reservation tables only — the seed
    /// behaviour, and the world of the source paper.
    #[default]
    Classic,
    /// VLIW issue bundles: every machine additionally carries a
    /// per-cycle issue width, and usually a slot-class group with a
    /// tighter cap. Guaranteed-schedulable cases stay guaranteed: the
    /// witness at `T = max(T_lb, n)` issues at most one operation per
    /// cycle, which satisfies any width/cap ≥ 1, and
    /// [`Machine::bundle_bound`] is folded into `T_res` so the sweep
    /// window still covers the witness.
    Vliw,
    /// Register-pressure caps: classic machines plus a `max_live`
    /// bound. Guaranteed cases derive the cap from an actual IMS
    /// schedule (which then *is* the witness); adversarial cases draw
    /// a small arbitrary cap with no schedulability promise.
    RegPressure,
}

impl MachineFamily {
    /// Stable label (CLI flag values, JSONL records).
    pub fn as_str(self) -> &'static str {
        match self {
            MachineFamily::Classic => "classic",
            MachineFamily::Vliw => "vliw",
            MachineFamily::RegPressure => "regpressure",
        }
    }

    /// Parses a label written by [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<MachineFamily> {
        match s {
            "classic" => Some(MachineFamily::Classic),
            "vliw" => Some(MachineFamily::Vliw),
            "regpressure" => Some(MachineFamily::RegPressure),
            _ => None,
        }
    }
}

/// Knobs for the generators. The defaults keep cases small enough that
/// the exact ILP settles every period in milliseconds, which is what
/// makes a 500-case differential campaign practical.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Campaign seed; case `i` derives its own RNG from `(seed, i)`.
    pub seed: u64,
    /// Maximum DDG size (nodes). Minimum is 2.
    pub max_nodes: usize,
    /// Maximum number of function-unit classes. Minimum is 1.
    pub max_classes: usize,
    /// Maximum physical copies per unit type.
    pub max_count: u32,
    /// Maximum dependence latency.
    pub max_latency: u32,
    /// Maximum iteration distance on carried edges.
    pub max_distance: u32,
    /// Fraction of cases generated in adversarial mode (the rest are
    /// guaranteed-schedulable).
    pub adversarial_fraction: f64,
    /// Machine-model family every case of the campaign draws from.
    pub family: MachineFamily,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            max_nodes: 8,
            max_classes: 3,
            max_count: 2,
            max_latency: 4,
            max_distance: 3,
            adversarial_fraction: 0.6,
            family: MachineFamily::Classic,
        }
    }
}

/// One generated scheduling problem.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Case index within the campaign.
    pub index: usize,
    /// Stable name (`"case0042"`).
    pub name: String,
    /// Whether the case carries the schedulability guarantee.
    pub guaranteed: bool,
    /// The target machine.
    pub machine: Machine,
    /// The dependence graph.
    pub ddg: Ddg,
    /// Register-pressure cap the engines must honor, if any.
    pub max_live: Option<u32>,
}

/// splitmix64: decorrelates the per-case seed from the campaign seed so
/// consecutive cases do not share RNG prefixes.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates case `index` of the campaign described by `config`.
pub fn gen_case(config: &GenConfig, index: usize) -> FuzzCase {
    let mut rng = SmallRng::seed_from_u64(mix(config.seed, index as u64));
    let adversarial = rng.gen_bool(config.adversarial_fraction.clamp(0.0, 1.0));
    let mut machine = gen_machine(&mut rng, config, adversarial);
    if config.family == MachineFamily::Vliw {
        machine = attach_bundle(&mut rng, machine);
    }
    let ddg = gen_ddg(&mut rng, config, &machine, adversarial);
    debug_assert_eq!(ddg.validate(), Ok(()));
    let (max_live, guaranteed) = if config.family == MachineFamily::RegPressure {
        gen_max_live(&mut rng, &machine, &ddg, adversarial)
    } else {
        (None, !adversarial)
    };
    FuzzCase {
        index,
        name: format!("case{index:04}"),
        guaranteed,
        machine,
        ddg,
        max_live,
    }
}

/// Attaches a random issue bundle: width 1–3, and usually one slot
/// group over a random class subset with a cap below the width. Caps
/// are always ≥ 1, so a one-op-per-cycle schedule satisfies every
/// bundle this produces — the guaranteed-schedulable argument carries
/// over unchanged.
fn attach_bundle(rng: &mut SmallRng, machine: Machine) -> Machine {
    let width = rng.gen_range(1..=3u32);
    let mut groups = Vec::new();
    if rng.gen_bool(0.6) {
        let k = machine.num_classes();
        let mut classes: Vec<usize> = (0..k).filter(|_| rng.gen_bool(0.5)).collect();
        if classes.is_empty() {
            classes.push(rng.gen_range(0..k));
        }
        groups.push(SlotGroup {
            name: "g0".into(),
            cap: rng.gen_range(1..=width),
            classes,
        });
    }
    machine
        .with_bundle(BundleSpec { width, groups })
        .expect("width and caps are positive")
}

/// Draws the register-pressure cap for a [`MachineFamily::RegPressure`]
/// case, returning `(max_live, guaranteed)`.
///
/// Guaranteed cases take the live census of an actual IMS schedule as
/// the cap: that schedule *is* the feasibility witness, and its II lies
/// inside the driver's default sweep window (`T_lb + 16`) by the same
/// argument that guarantees the classic cases — otherwise the case
/// degrades to an uncapped guaranteed one. Adversarial cases draw a
/// small arbitrary cap with no promise attached.
fn gen_max_live(
    rng: &mut SmallRng,
    machine: &Machine,
    ddg: &Ddg,
    adversarial: bool,
) -> (Option<u32>, bool) {
    if adversarial {
        return (Some(rng.gen_range(1..=4)), false);
    }
    let budget = Budget::with_tick_limit(2_000_000);
    let witness = IterativeModuloScheduler::new(machine.clone())
        .schedule_with(ddg, &budget)
        .ok()
        .filter(|hr| {
            let t_lb = ddg
                .t_dep()
                .unwrap_or(0)
                .max(machine.t_res(ddg).unwrap_or(0));
            hr.schedule.initiation_interval() <= t_lb + 16
        });
    match witness {
        Some(hr) => (Some(hr.schedule.max_live(ddg).max(1)), true),
        None => (None, true),
    }
}

/// Generates the whole campaign in index order.
pub fn gen_cases(config: &GenConfig, cases: usize) -> Vec<FuzzCase> {
    (0..cases).map(|i| gen_case(config, i)).collect()
}

fn gen_machine(rng: &mut SmallRng, config: &GenConfig, adversarial: bool) -> Machine {
    let num_classes = rng.gen_range(1..=config.max_classes.max(1));
    let types = (0..num_classes)
        .map(|c| {
            let count = rng.gen_range(1..=config.max_count.max(1));
            let latency = rng.gen_range(1..=config.max_latency.max(1));
            let reservation = if adversarial {
                match rng.gen_range(0u32..4) {
                    0 => ReservationTable::clean(rng.gen_range(1..=3)),
                    1 => ReservationTable::non_pipelined(rng.gen_range(1..=3)),
                    _ => random_table(rng),
                }
            } else {
                ReservationTable::clean(rng.gen_range(1..=3))
            };
            FuType {
                name: format!("C{c}"),
                count,
                latency,
                reservation,
            }
        })
        .collect();
    Machine::new(types).expect("generated counts are positive")
}

/// A random unclean reservation table: 1–3 stages, 2–4 cycles, an
/// issue-slot mark at `(0, 0)` (required: every operation must occupy
/// something at its issue cycle) and further marks with probability
/// 0.35 — enough to produce forbidden latencies and multi-stage
/// collisions without making most tables modulo-infeasible everywhere.
fn random_table(rng: &mut SmallRng) -> ReservationTable {
    let stages = rng.gen_range(1..=3);
    let cols = rng.gen_range(2..=4usize);
    let rows: Vec<Vec<bool>> = (0..stages)
        .map(|s| {
            (0..cols)
                .map(|l| (s == 0 && l == 0) || rng.gen_bool(0.35))
                .collect()
        })
        .collect();
    let borrowed: Vec<&[bool]> = rows.iter().map(Vec::as_slice).collect();
    ReservationTable::from_rows(&borrowed).unwrap_or_else(|| ReservationTable::clean(1))
}

fn gen_ddg(rng: &mut SmallRng, config: &GenConfig, machine: &Machine, adversarial: bool) -> Ddg {
    let n = rng.gen_range(2..=config.max_nodes.max(2));
    let mut g = Ddg::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let class = OpClass::new(rng.gen_range(0..machine.num_classes()));
        // Node latency usually matches the machine's class latency (the
        // convention real front-ends follow); adversarial cases sometimes
        // disagree, which is legal — dependence checking uses the node.
        let machine_lat = machine.latency(class).expect("class in range");
        let latency = if adversarial && rng.gen_bool(0.3) {
            rng.gen_range(1..=config.max_latency.max(1))
        } else {
            machine_lat
        };
        ids.push(g.add_node(format!("n{i}"), class, latency));
    }

    // Forward dataflow, denser when adversarial.
    for i in 1..n {
        let max_preds = if adversarial { 3 } else { 2 };
        let preds = rng.gen_range(0..=max_preds.min(i));
        let mut used = Vec::new();
        for _ in 0..preds {
            let p = rng.gen_range(0..i);
            if !used.contains(&p) {
                used.push(p);
                let distance = if adversarial && rng.gen_bool(0.2) {
                    rng.gen_range(1..=config.max_distance.max(1))
                } else {
                    0
                };
                g.add_edge(ids[p], ids[i], distance).expect("valid ids");
            }
        }
    }

    // Recurrences: self-loops and backward carried edges, always with
    // distance ≥ 1 so no zero-distance cycle can arise.
    if rng.gen_bool(0.5) {
        let k = rng.gen_range(0..n);
        let dist = rng.gen_range(1..=config.max_distance.max(1));
        g.add_edge(ids[k], ids[k], dist).expect("valid ids");
    }
    if n > 2 && rng.gen_bool(if adversarial { 0.4 } else { 0.2 }) {
        let a = rng.gen_range(1..n);
        let b = rng.gen_range(0..a);
        let dist = rng.gen_range(1..=config.max_distance.max(1));
        g.add_edge(ids[a], ids[b], dist).expect("valid ids");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_index() {
        let cfg = GenConfig {
            seed: 42,
            ..GenConfig::default()
        };
        for i in [0usize, 7, 31] {
            let a = gen_case(&cfg, i);
            let b = gen_case(&cfg, i);
            assert_eq!(a.ddg, b.ddg);
            assert_eq!(a.machine, b.machine);
            assert_eq!(a.guaranteed, b.guaranteed);
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = gen_case(
            &GenConfig {
                seed: 1,
                ..GenConfig::default()
            },
            0,
        );
        let b = gen_case(
            &GenConfig {
                seed: 2,
                ..GenConfig::default()
            },
            0,
        );
        assert!(a.ddg != b.ddg || a.machine != b.machine);
    }

    #[test]
    fn all_cases_well_formed() {
        let cfg = GenConfig {
            seed: 7,
            ..GenConfig::default()
        };
        for case in gen_cases(&cfg, 200) {
            assert_eq!(case.ddg.validate(), Ok(()), "{}", case.name);
            assert!(case.ddg.num_nodes() >= 2);
            assert!(case.machine.num_classes() >= 1);
            for (_, node) in case.ddg.nodes() {
                assert!(case.machine.fu_type(node.class).is_ok());
            }
            if case.guaranteed {
                for t in case.machine.types() {
                    assert!(t.reservation.is_clean(), "{}", case.name);
                }
            }
        }
    }

    #[test]
    fn vliw_family_always_bundles() {
        let cfg = GenConfig {
            seed: 13,
            family: MachineFamily::Vliw,
            ..GenConfig::default()
        };
        let cases = gen_cases(&cfg, 60);
        for case in &cases {
            let b = case.machine.bundle().expect("vliw case without a bundle");
            assert!(b.width >= 1);
            for g in &b.groups {
                assert!(g.cap >= 1 && g.cap <= b.width);
                assert!(g.classes.iter().all(|&c| c < case.machine.num_classes()));
            }
            assert_eq!(case.max_live, None);
            if case.guaranteed {
                assert!(case
                    .machine
                    .types()
                    .iter()
                    .all(|t| t.reservation.is_clean()));
            }
        }
        // Tight slot groups actually appear.
        assert!(cases
            .iter()
            .any(|c| !c.machine.bundle().unwrap().groups.is_empty()));
    }

    #[test]
    fn regpressure_family_draws_caps() {
        let cfg = GenConfig {
            seed: 17,
            family: MachineFamily::RegPressure,
            ..GenConfig::default()
        };
        let cases = gen_cases(&cfg, 60);
        // Every adversarial case gets a small cap; guaranteed cases get a
        // witness-derived one (or degrade to uncapped, still guaranteed).
        for case in &cases {
            assert!(case.machine.bundle().is_none());
            if !case.guaranteed {
                assert!(matches!(case.max_live, Some(1..=4)), "{}", case.name);
            }
        }
        assert!(
            cases.iter().any(|c| c.guaranteed && c.max_live.is_some()),
            "no guaranteed case derived a witness cap"
        );
    }

    #[test]
    fn family_labels_round_trip() {
        for f in [
            MachineFamily::Classic,
            MachineFamily::Vliw,
            MachineFamily::RegPressure,
        ] {
            assert_eq!(MachineFamily::parse(f.as_str()), Some(f));
        }
        assert_eq!(MachineFamily::parse("scalar"), None);
    }

    #[test]
    fn both_modes_appear() {
        let cfg = GenConfig {
            seed: 9,
            adversarial_fraction: 0.5,
            ..GenConfig::default()
        };
        let cases = gen_cases(&cfg, 100);
        assert!(cases.iter().any(|c| c.guaranteed));
        assert!(cases.iter().any(|c| !c.guaranteed));
        // Adversarial cases actually produce unclean pipelines somewhere.
        assert!(cases.iter().filter(|c| !c.guaranteed).any(|c| c
            .machine
            .types()
            .iter()
            .any(|t| !t.reservation.is_clean())));
    }
}
