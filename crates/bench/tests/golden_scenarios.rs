//! Golden cross-engine matrix over the scenario corpus.
//!
//! `tests/scenarios/` holds a committed corpus of VLIW issue-bundle and
//! register-pressure kernels in the `swp-fuzz` regression format — two
//! handcrafted anchors plus fixed-seed generator output from both
//! machine-model families. Every scenario is solved by the ILP and the
//! CP backend under deterministic tick budgets (no wall-clock limits,
//! no heuristic incumbent, so the *exact* engines are the ones pinned),
//! and the resulting `(T, engine, optimality, max_live)` row is
//! compared against a golden table. The portfolio racer must agree on
//! every proven decision, and each accepted schedule is re-verified by
//! the independent checker, the pressure validator, and the
//! cycle-accurate simulator (which rejects any bundle overflow).
//!
//! On intentional changes:
//!
//! ```text
//! SCENARIO_WRITE=1 cargo test -p swp-bench --test golden_scenarios   # corpus
//! GOLDEN_PRINT=1   cargo test -p swp-bench --test golden_scenarios -- --nocapture
//! ```
//!
//! and paste the printed table over the constant below.

use std::fs;
use std::path::PathBuf;

use swp_core::{Budget, Engine, RateOptimalScheduler, ScheduleResult, SchedulerConfig, SolvedBy};
use swp_ddg::{Ddg, OpClass};
use swp_fuzz::{gen_cases, parse_regression, write_regression, FuzzCase, GenConfig, MachineFamily};
use swp_machine::{simulate, Machine, UnitPolicy};

/// Deterministic tick budget per engine invocation; generous for the
/// small guaranteed-schedulable kernels committed here.
const TICKS: u64 = 2_000_000;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/scenarios")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(scenarios_dir())
        .expect("tests/scenarios must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    files
}

/// The PLDI-95 running example's FP loop (load → fmul → fadd⟲ → store).
fn fp_loop() -> Ddg {
    let mut g = Ddg::new();
    let ld = g.add_node("load", OpClass::new(2), 3);
    let m1 = g.add_node("fmul", OpClass::new(1), 2);
    let a1 = g.add_node("fadd", OpClass::new(1), 2);
    let st = g.add_node("store", OpClass::new(2), 3);
    g.add_edge(ld, m1, 0).unwrap();
    g.add_edge(m1, a1, 0).unwrap();
    g.add_edge(a1, st, 0).unwrap();
    g.add_edge(a1, a1, 1).unwrap();
    g
}

/// A long-latency FP producer feeding a consumer: more than one value
/// is live per residue unless the cap stretches the period.
fn pressure_chain() -> Ddg {
    let mut g = Ddg::new();
    let a = g.add_node("a", OpClass::new(1), 3);
    let b = g.add_node("b", OpClass::new(1), 1);
    g.add_edge(a, b, 0).unwrap();
    g
}

/// The committed corpus, regenerated with `SCENARIO_WRITE=1`: two
/// handcrafted anchors plus the first three guaranteed-schedulable
/// cases of a fixed-seed campaign per machine-model family.
fn build_corpus() -> Vec<(String, FuzzCase)> {
    let mut corpus = vec![
        (
            "vliw-fp-loop".to_string(),
            FuzzCase {
                index: 0,
                name: "vliw-fp-loop".to_string(),
                guaranteed: true,
                machine: Machine::example_vliw(),
                ddg: fp_loop(),
                max_live: None,
            },
        ),
        (
            "pressure-fp-chain".to_string(),
            FuzzCase {
                index: 0,
                name: "pressure-fp-chain".to_string(),
                guaranteed: true,
                machine: Machine::example_clean(),
                ddg: pressure_chain(),
                max_live: Some(1),
            },
        ),
    ];
    for (family, seed) in [
        (MachineFamily::Vliw, 101u64),
        (MachineFamily::RegPressure, 202),
    ] {
        let config = GenConfig {
            seed,
            max_nodes: 6,
            family,
            ..GenConfig::default()
        };
        let picked: Vec<FuzzCase> = gen_cases(&config, 40)
            .into_iter()
            .filter(|c| c.guaranteed)
            .take(3)
            .collect();
        assert_eq!(picked.len(), 3, "campaign seed {seed} must yield 3 cases");
        for case in picked {
            corpus.push((format!("{}-s{seed}-{}", family.as_str(), case.name), case));
        }
    }
    corpus
}

/// Writes the corpus files. A no-op unless `SCENARIO_WRITE=1`.
#[test]
fn regenerate_corpus() {
    if std::env::var("SCENARIO_WRITE").is_err() {
        return;
    }
    let dir = scenarios_dir();
    fs::create_dir_all(&dir).expect("create tests/scenarios");
    for (name, case) in build_corpus() {
        let path = dir.join(format!("{name}.txt"));
        fs::write(&path, write_regression(&case, None)).expect("write scenario file");
        println!("wrote {}", path.display());
    }
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        corpus_files().len() >= 8,
        "the committed scenario corpus should not shrink silently"
    );
}

#[test]
fn committed_corpus_matches_generator() {
    // The committed files must be exactly what `SCENARIO_WRITE=1` would
    // regenerate — no hand-edited drift.
    for (name, case) in build_corpus() {
        let path = scenarios_dir().join(format!("{name}.txt"));
        let on_disk = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: missing committed scenario ({e})"));
        assert_eq!(
            on_disk,
            write_regression(&case, None),
            "{name}: committed scenario diverged from the generator; \
             rerun with SCENARIO_WRITE=1"
        );
    }
}

fn exact_config(engine: Engine, max_live: Option<u32>) -> SchedulerConfig {
    SchedulerConfig {
        // Tick budgets only: outcomes are machine-speed independent.
        time_limit_per_t: None,
        time_limit_total: None,
        // No heuristic incumbent, so the pinned `by=` column names the
        // exact engine that settled the period.
        heuristic_incumbent: false,
        engine,
        max_live,
        ..SchedulerConfig::default()
    }
}

fn solve(case: &FuzzCase, engine: Engine) -> ScheduleResult {
    let budget = Budget::with_tick_limit(TICKS);
    RateOptimalScheduler::new(case.machine.clone(), exact_config(engine, case.max_live))
        .schedule_with(&case.ddg, &budget)
        .unwrap_or_else(|e| panic!("{}: engine {engine:?} failed: {e}", case.name))
}

fn engine_cell(r: &ScheduleResult) -> String {
    let by = match r.solved_by() {
        SolvedBy::Ilp => "ilp",
        SolvedBy::Cp => "cp",
        SolvedBy::Heuristic => "ims",
    };
    format!(
        "T={} proven={} by={}",
        r.schedule.initiation_interval(),
        r.is_proven_optimal(),
        by
    )
}

/// Re-verifies one accepted schedule with every independent oracle.
fn verify(name: &str, case: &FuzzCase, r: &ScheduleResult) {
    r.schedule
        .validate(&case.ddg, &case.machine)
        .unwrap_or_else(|e| panic!("{name}: checker rejected accepted schedule: {e}"));
    if let Some(limit) = case.max_live {
        r.schedule
            .validate_pressure(&case.ddg, limit)
            .unwrap_or_else(|e| panic!("{name}: pressure cap broken: {e}"));
        assert!(
            r.schedule.max_live(&case.ddg) <= limit,
            "{name}: census exceeds the cap"
        );
    }
    // The simulator independently enforces bundle width and slot-group
    // caps: any overflow is a hard `BundleExceeded` error.
    let policy = if r.schedule.is_mapped() {
        UnitPolicy::Fixed
    } else {
        UnitPolicy::Dynamic
    };
    simulate(&case.machine, &case.ddg, &r.schedule, 4, policy)
        .unwrap_or_else(|e| panic!("{name}: simulator rejected accepted schedule: {e}"));
}

const GOLDEN_SCENARIOS: &str = "\
pressure-fp-chain nodes=2 t_lb=1 max_live=1 ilp[T=3 proven=true by=ilp] cp[T=3 proven=true by=cp]
regpressure-s202-case0000 nodes=2 t_lb=2 max_live=2 ilp[T=2 proven=true by=ilp] cp[T=2 proven=true by=cp]
regpressure-s202-case0002 nodes=2 t_lb=2 max_live=1 ilp[T=2 proven=true by=ilp] cp[T=2 proven=true by=cp]
regpressure-s202-case0003 nodes=4 t_lb=3 max_live=4 ilp[T=3 proven=true by=ilp] cp[T=3 proven=true by=cp]
vliw-fp-loop nodes=4 t_lb=2 max_live=- ilp[T=2 proven=true by=ilp] cp[T=2 proven=true by=cp]
vliw-s101-case0006 nodes=4 t_lb=6 max_live=- ilp[T=6 proven=true by=ilp] cp[T=6 proven=true by=cp]
vliw-s101-case0008 nodes=3 t_lb=3 max_live=- ilp[T=3 proven=true by=ilp] cp[T=3 proven=true by=cp]
vliw-s101-case0009 nodes=6 t_lb=4 max_live=- ilp[T=4 proven=true by=ilp] cp[T=4 proven=true by=cp]
";

#[test]
fn golden_scenario_matrix() {
    let mut rows = Vec::new();
    for path in corpus_files() {
        let name = path
            .file_stem()
            .expect("file stem")
            .to_string_lossy()
            .into_owned();
        let source = fs::read_to_string(&path).expect("readable scenario file");
        let case = parse_regression(&name, &source)
            .unwrap_or_else(|e| panic!("{e}"))
            .case;

        let ilp = solve(&case, Engine::Ilp);
        let cp = solve(&case, Engine::Cp);
        let race = solve(&case, Engine::Portfolio);
        for r in [&ilp, &cp, &race] {
            verify(&name, &case, r);
        }

        // Cross-engine agreement: a proven period is THE period.
        assert_eq!(ilp.is_proven_optimal(), cp.is_proven_optimal(), "{name}");
        if ilp.is_proven_optimal() {
            assert_eq!(
                ilp.schedule.initiation_interval(),
                cp.schedule.initiation_interval(),
                "{name}: exact engines disagree on the proven period"
            );
        }
        if race.is_proven_optimal() && ilp.is_proven_optimal() {
            assert_eq!(
                race.schedule.initiation_interval(),
                ilp.schedule.initiation_interval(),
                "{name}: portfolio disagrees with the exact engines"
            );
        }

        let max_live = case
            .max_live
            .map_or_else(|| "-".to_string(), |m| m.to_string());
        rows.push(format!(
            "{name} nodes={} t_lb={} max_live={max_live} ilp[{}] cp[{}]",
            case.ddg.num_nodes(),
            ilp.t_lb(),
            engine_cell(&ilp),
            engine_cell(&cp),
        ));
    }
    let table = format!("{}\n", rows.join("\n"));
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("--- golden scenario matrix ---\n{table}");
        return;
    }
    assert_eq!(
        table, GOLDEN_SCENARIOS,
        "scenario matrix drifted; rerun with GOLDEN_PRINT=1 and review"
    );
}
