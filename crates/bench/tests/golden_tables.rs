//! Golden snapshots for the Table 4 / Table 5 pipelines.
//!
//! Each test runs a prefix of the fixed-seed synthetic corpus (the
//! generator consumes one sequential RNG, so a 16-loop run is exactly
//! the head of the full 1066-loop corpus) under a fully deterministic
//! run configuration — tick budgets only, no wall clock — and compares
//! `(T_lb, T, solving engine, optimality)` per loop against a pinned
//! table. Any drift in the scheduler, the bounds, the corpus generator,
//! or the engine-selection logic fails tier-1 loudly instead of
//! silently shifting the paper tables.
//!
//! To regenerate after an *intentional* change: run with
//! `GOLDEN_PRINT=1 cargo test -p swp-bench --test golden_tables -- --nocapture`
//! and paste the printed block over the stale constant.

use swp_bench::suite_run::{run_suite, SuiteOutcome, SuiteRunConfig};
use swp_harness::LoopRecord;
use swp_loops::suite::SuiteConfig;
use swp_machine::Machine;

fn deterministic(num_loops: usize, heuristic_incumbent: bool) -> SuiteRunConfig {
    SuiteRunConfig {
        num_loops,
        time_limit_per_t: None,
        // Small enough that a budget-bound loop stays cheap in debug
        // builds, big enough that most prefix loops solve to proven
        // optimality; budget-exhausted outcomes are pinned like any
        // other (ticks are deterministic, wall clock is not consulted).
        per_loop_ticks: Some(60_000),
        heuristic_incumbent,
        ..Default::default()
    }
}

fn render(records: &[LoopRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let (outcome, by) = match &r.outcome {
            SuiteOutcome::Scheduled { solved_by, .. } => ("scheduled", format!("{solved_by:?}")),
            other => ("other", format!("{other:?}")),
        };
        out.push_str(&format!(
            "{} nodes={} t_lb={} period={} {} by={} proven={}\n",
            r.name,
            r.num_nodes,
            r.t_lb,
            r.period.map_or_else(|| "-".to_string(), |p| p.to_string()),
            outcome,
            by,
            r.proven,
        ));
    }
    out
}

fn check(label: &str, golden: &str, records: &[LoopRecord]) {
    let actual = render(records);
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("=== {label} ===\n{actual}=== end {label} ===");
        return;
    }
    assert_eq!(
        actual.trim(),
        golden.trim(),
        "{label}: corpus outcomes drifted from the pinned snapshot \
         (regenerate with GOLDEN_PRINT=1 if the change is intentional)"
    );
}

/// Table 4 pipeline: PLDI'95 example machine, default engine stack
/// (heuristic incumbent on).
const GOLDEN_TABLE4: &str = "\
loop0000 nodes=8 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0001 nodes=5 t_lb=3 period=3 scheduled by=Heuristic proven=true
loop0002 nodes=4 t_lb=2 period=2 scheduled by=Heuristic proven=true
loop0003 nodes=9 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0004 nodes=5 t_lb=2 period=2 scheduled by=Heuristic proven=true
loop0005 nodes=17 t_lb=8 period=8 scheduled by=Heuristic proven=true
loop0006 nodes=6 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0007 nodes=7 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0008 nodes=6 t_lb=3 period=3 scheduled by=Heuristic proven=true
loop0009 nodes=15 t_lb=7 period=7 scheduled by=Heuristic proven=true
loop0010 nodes=4 t_lb=3 period=3 scheduled by=Heuristic proven=true
loop0011 nodes=18 t_lb=7 period=7 scheduled by=Heuristic proven=true
loop0012 nodes=4 t_lb=3 period=3 scheduled by=Heuristic proven=true
loop0013 nodes=9 t_lb=5 period=5 scheduled by=Heuristic proven=true
loop0014 nodes=7 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0015 nodes=4 t_lb=2 period=2 scheduled by=Heuristic proven=true
";

#[test]
fn table4_corpus_prefix_is_pinned() {
    let records = run_suite(
        &Machine::example_pldi95(),
        &SuiteConfig::pldi95_default(),
        &deterministic(16, true),
    );
    check("table4", GOLDEN_TABLE4, &records);
}

/// Table 5 pipeline: same corpus, ILP-only engine stack (heuristic
/// incumbent off), as the table-5 comparison runs it.
const GOLDEN_TABLE5: &str = "\
loop0000 nodes=8 t_lb=4 period=4 scheduled by=Ilp proven=true
loop0001 nodes=5 t_lb=3 period=3 scheduled by=Ilp proven=true
loop0002 nodes=4 t_lb=2 period=2 scheduled by=Ilp proven=true
loop0003 nodes=9 t_lb=4 period=4 scheduled by=Ilp proven=true
loop0004 nodes=5 t_lb=2 period=2 scheduled by=Ilp proven=true
loop0005 nodes=17 t_lb=8 period=8 scheduled by=Heuristic proven=false
loop0006 nodes=6 t_lb=4 period=4 scheduled by=Ilp proven=true
loop0007 nodes=7 t_lb=4 period=4 scheduled by=Ilp proven=true
loop0008 nodes=6 t_lb=3 period=3 scheduled by=Ilp proven=true
loop0009 nodes=15 t_lb=7 period=7 scheduled by=Heuristic proven=false
loop0010 nodes=4 t_lb=3 period=3 scheduled by=Ilp proven=true
loop0011 nodes=18 t_lb=7 period=7 scheduled by=Heuristic proven=false
loop0012 nodes=4 t_lb=3 period=3 scheduled by=Ilp proven=true
loop0013 nodes=9 t_lb=5 period=5 scheduled by=Ilp proven=true
loop0014 nodes=7 t_lb=4 period=4 scheduled by=Ilp proven=true
loop0015 nodes=4 t_lb=2 period=2 scheduled by=Ilp proven=true
";

#[test]
fn table5_corpus_prefix_is_pinned() {
    let records = run_suite(
        &Machine::example_pldi95(),
        &SuiteConfig::pldi95_default(),
        &deterministic(16, false),
    );
    check("table5", GOLDEN_TABLE5, &records);
}

/// The PPC604 flavour of the corpus on the PPC604 machine model.
const GOLDEN_PPC604: &str = "\
loop0000 nodes=8 t_lb=6 period=6 scheduled by=Heuristic proven=true
loop0001 nodes=5 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0002 nodes=4 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0003 nodes=9 t_lb=8 period=8 scheduled by=Ilp proven=true
loop0004 nodes=5 t_lb=4 period=4 scheduled by=Heuristic proven=true
loop0005 nodes=17 t_lb=16 period=16 scheduled by=Heuristic proven=true
loop0006 nodes=6 t_lb=18 period=18 scheduled by=Heuristic proven=true
loop0007 nodes=14 t_lb=14 period=14 scheduled by=Heuristic proven=true
";

#[test]
fn ppc604_corpus_prefix_is_pinned() {
    let records = run_suite(
        &Machine::ppc604(),
        &SuiteConfig::ppc604(),
        &deterministic(8, true),
    );
    check("ppc604", GOLDEN_PPC604, &records);
}

#[test]
fn table4_and_table5_agree_on_proven_periods() {
    // Cross-pipeline consistency: wherever both configurations prove
    // optimality they must prove the same period — the incumbent only
    // changes *how* the optimum is found.
    let a = run_suite(
        &Machine::example_pldi95(),
        &SuiteConfig::pldi95_default(),
        &deterministic(12, true),
    );
    let b = run_suite(
        &Machine::example_pldi95(),
        &SuiteConfig::pldi95_default(),
        &deterministic(12, false),
    );
    for (x, y) in a.iter().zip(&b) {
        if x.proven && y.proven {
            assert_eq!(
                x.period, y.period,
                "{}: proven periods disagree between table-4 and table-5 configs",
                x.name
            );
        }
    }
}
