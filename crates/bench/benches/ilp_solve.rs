//! ILP solve time vs. loop size (the scaling behind Tables 4/5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swp_core::{MappingMode, Objective, RateOptimalScheduler, SchedulerConfig};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

fn pure_ilp_config() -> SchedulerConfig {
    SchedulerConfig {
        heuristic_incumbent: false,
        time_limit_per_t: Some(std::time::Duration::from_secs(5)),
        ..Default::default()
    }
}

fn bench_by_size(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let corpus = generate(&SuiteConfig {
        num_loops: 400,
        ..SuiteConfig::pldi95_default()
    });
    let mut group = c.benchmark_group("ilp_schedule_by_size");
    group.sample_size(10);
    for &target in &[4usize, 6, 8, 10] {
        // A representative loop of each size that the pure ILP solves fast.
        let sched = RateOptimalScheduler::new(machine.clone(), pure_ilp_config());
        let Some(l) = corpus.iter().find(|l| {
            l.ddg.num_nodes() == target
                && sched
                    .schedule(&l.ddg)
                    .map(|r| r.total_elapsed() < std::time::Duration::from_millis(300))
                    .unwrap_or(false)
        }) else {
            continue;
        };
        group.bench_with_input(BenchmarkId::new("nodes", target), &l.ddg, |b, ddg| {
            let sched = RateOptimalScheduler::new(machine.clone(), pure_ilp_config());
            b.iter(|| sched.schedule(std::hint::black_box(ddg)).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_formulation_build(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let ddg = swp_loops::kernels::motivating_example();
    c.bench_function("formulation_build_T4", |b| {
        b.iter(|| {
            swp_core::formulation::build(
                std::hint::black_box(&ddg),
                &machine,
                4,
                swp_core::formulation::FormulationOptions {
                    mapping: MappingMode::UnifiedColoring,
                    objective: Objective::Feasible,
                    ..swp_core::formulation::FormulationOptions::standard()
                },
            )
            .expect("builds")
        });
    });
}

criterion_group!(benches, bench_by_size, bench_formulation_build);
criterion_main!(benches);
