//! Ablations of the design choices DESIGN.md calls out: symmetry
//! breaking, the heuristic incumbent, and capacity-only vs. unified
//! coloring formulations.

use criterion::{criterion_group, criterion_main, Criterion};
use swp_core::{MappingMode, RateOptimalScheduler, SchedulerConfig};
use swp_loops::kernels;
use swp_machine::Machine;

fn cfg(mapping: MappingMode, symmetry: bool, incumbent: bool) -> SchedulerConfig {
    SchedulerConfig {
        mapping,
        symmetry_breaking: symmetry,
        heuristic_incumbent: incumbent,
        time_limit_per_t: Some(std::time::Duration::from_secs(10)),
        ..Default::default()
    }
}

/// The packing-bound ablation runs on a kernel whose counting T_lb is a
/// pigeonhole-infeasible period: with the bound the driver rejects it
/// instantly; without, branch-and-bound must refute it.
fn bench_packing_bound(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let ddg = kernels::all(&machine, swp_loops::ClassConvention::example())
        .into_iter()
        .find(|k| k.name == "stencil3")
        .expect("kernel exists")
        .ddg;
    let mut group = c.benchmark_group("ablation_packing_bound_stencil3");
    group.sample_size(10);
    for (name, packing) in [("with-packing", true), ("without-packing", false)] {
        let config = SchedulerConfig {
            packing_bound: packing,
            heuristic_incumbent: true,
            // Without the packing bound, refuting the pigeonhole period
            // T = 5 exceeds any sane budget; the 2 s cap makes the cost
            // visible (time out, then certify T = 6) without stalling
            // the bench.
            time_limit_per_t: Some(std::time::Duration::from_secs(2)),
            ..Default::default()
        };
        group.bench_function(name, |b| {
            let s = RateOptimalScheduler::new(machine.clone(), config.clone());
            b.iter(|| s.schedule(std::hint::black_box(&ddg)).expect("feasible"));
        });
    }
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let ddg = kernels::motivating_example();
    let mut group = c.benchmark_group("ablations_motivating_example");
    group.sample_size(10);

    let variants: [(&str, SchedulerConfig); 5] = [
        (
            "unified+symmetry",
            cfg(MappingMode::UnifiedColoring, true, false),
        ),
        (
            "unified-no-symmetry",
            cfg(MappingMode::UnifiedColoring, false, false),
        ),
        (
            "unified+incumbent",
            cfg(MappingMode::UnifiedColoring, true, true),
        ),
        ("capacity-only", cfg(MappingMode::CapacityOnly, true, false)),
        (
            "capacity-no-symmetry",
            cfg(MappingMode::CapacityOnly, false, false),
        ),
    ];
    for (name, config) in variants {
        group.bench_function(name, |b| {
            let s = RateOptimalScheduler::new(machine.clone(), config.clone());
            b.iter(|| s.schedule(std::hint::black_box(&ddg)).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations, bench_packing_bound);
criterion_main!(benches);
