//! Solver-substrate micro-benchmarks: f64 simplex, branch-and-bound,
//! and the exact rational path on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use swp_milp::exact::{solve_lp_exact, ExactLp};
use swp_milp::simplex::{solve_lp, LpProblem};
use swp_milp::{Model, Sense};

/// A dense random-ish LP with `n` columns and `n` rows (deterministic).
fn lp(n: usize) -> LpProblem {
    let coef = |i: usize, j: usize| (((i * 31 + j * 17) % 13) as f64) - 4.0;
    LpProblem {
        obj: (0..n).map(|j| ((j % 7) as f64) - 3.0).collect(),
        rows: (0..n)
            .map(|i| {
                let terms: Vec<(usize, f64)> = (0..n)
                    .map(|j| (j, coef(i, j)))
                    .filter(|&(_, c)| c != 0.0)
                    .collect();
                (terms, Sense::Le, 25.0 + (i % 5) as f64)
            })
            .collect(),
        lo: vec![0.0; n],
        hi: vec![10.0; n],
    }
}

fn bench_simplex(c: &mut Criterion) {
    for &n in &[10usize, 30, 60] {
        let p = lp(n);
        c.bench_function(&format!("simplex_f64_{n}x{n}"), |b| {
            b.iter(|| solve_lp(std::hint::black_box(&p)));
        });
    }
    let p = lp(10);
    let e = ExactLp::from_f64_problem(&p);
    c.bench_function("simplex_exact_10x10", |b| {
        b.iter(|| solve_lp_exact(std::hint::black_box(&e)));
    });
}

fn bench_bnb(c: &mut Criterion) {
    // 0-1 knapsack-ish model with 18 binaries.
    let mut m = Model::new();
    let xs: Vec<_> = (0..18).map(|i| m.add_binary(format!("x{i}"))).collect();
    m.maximize(
        xs.iter()
            .enumerate()
            .map(|(i, &x)| (x, ((i * 7) % 11 + 1) as f64))
            .collect::<Vec<_>>(),
    );
    m.add_constr(
        xs.iter()
            .enumerate()
            .map(|(i, &x)| (x, ((i * 5) % 9 + 1) as f64))
            .collect::<Vec<_>>(),
        Sense::Le,
        30.0,
    );
    c.bench_function("bnb_knapsack_18bin", |b| {
        b.iter(|| std::hint::black_box(&m).solve().expect("feasible"));
    });
}

criterion_group!(benches, bench_simplex, bench_bnb);
criterion_main!(benches);
