//! Structural-conflict query engines head to head: the naive
//! reservation-table cell scan, the pairwise modulo collision matrix,
//! and the hazard-FSA table lookup, at `T ∈ {2, 4, 8, 16}`.
//!
//! All three answer the same question — "do two ops of this class on the
//! same unit collide at issue distance `delta` (mod `T`)?" — so each
//! bench sums the same verdict stream and the totals must agree.

use criterion::{criterion_group, criterion_main, Criterion};
use swp_automata::HazardAutomaton;
use swp_ddg::OpClass;
use swp_machine::{Machine, ReservationTable};

const PERIODS: [u32; 4] = [2, 4, 8, 16];
const QUERIES: u32 = 4096;

/// The checker's exact scan, inlined: overlap of any stage's offset
/// multiset with itself at distance `delta` (mod `period`).
fn naive_collides(rt: &ReservationTable, period: u32, delta: u32) -> bool {
    for s in 0..rt.stages() {
        for l1 in rt.stage_offsets(s) {
            for l2 in rt.stage_offsets(s) {
                let d = (l1 as i64 - l2 as i64).rem_euclid(i64::from(period)) as u32;
                if d == delta {
                    return true;
                }
            }
        }
    }
    false
}

fn bench_conflict_query(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let fp = OpClass::new(1);
    let rt = machine.fu_type(fp).expect("FP class").reservation.clone();

    for period in PERIODS {
        let automaton = HazardAutomaton::for_machine(&machine, period);
        let fsa = automaton.fsa(fp).expect("FP FSA");
        assert!(fsa.is_complete(), "FP FSA must build fully at T={period}");

        // Equivalence sanity before timing anything.
        for delta in 0..period {
            let naive = naive_collides(&rt, period, delta);
            assert_eq!(
                automaton.matrix().collides(fp, fp, delta),
                Some(naive),
                "matrix disagrees with naive at T={period}, delta={delta}"
            );
        }

        c.bench_function(format!("naive_scan_t{period}"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for q in 0..QUERIES {
                    let delta = std::hint::black_box(q % period);
                    hits += u32::from(naive_collides(&rt, period, delta));
                }
                hits
            });
        });
        c.bench_function(format!("collision_matrix_t{period}"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for q in 0..QUERIES {
                    let delta = std::hint::black_box(q % period);
                    hits += u32::from(automaton.matrix().collides(fp, fp, delta) == Some(true));
                }
                hits
            });
        });
        c.bench_function(format!("hazard_fsa_t{period}"), |b| {
            // One op placed at residue 0: `can_issue(state, delta)` is
            // then exactly the pairwise collision verdict, negated.
            let state = fsa.issue(swp_automata::HazardFsa::START, 0);
            b.iter(|| {
                let mut hits = 0u32;
                for q in 0..QUERIES {
                    let delta = std::hint::black_box(q % period);
                    hits += u32::from(!fsa.can_issue(state, delta));
                }
                hits
            });
        });
    }
}

criterion_group!(benches, bench_conflict_query);
criterion_main!(benches);
