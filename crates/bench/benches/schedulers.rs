//! ILP vs. heuristic schedulers on the kernel library: wall-clock per
//! engine (quality comparison lives in the `heuristic_vs_ilp` example
//! and EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swp_core::{RateOptimalScheduler, SchedulerConfig};
use swp_heuristics::{IterativeModuloScheduler, ListModuloScheduler};
use swp_loops::{kernels, ClassConvention};
use swp_machine::Machine;

fn bench_engines(c: &mut Criterion) {
    let machine = Machine::example_pldi95();
    let conv = ClassConvention::example();
    let picks = ["daxpy", "ddot", "livermore5", "stencil3"];
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    for k in kernels::all(&machine, conv) {
        if !picks.contains(&k.name.as_str()) {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("ilp", &k.name), &k.ddg, |b, ddg| {
            let s = RateOptimalScheduler::new(
                machine.clone(),
                SchedulerConfig {
                    heuristic_incumbent: false,
                    ..Default::default()
                },
            );
            b.iter(|| s.schedule(std::hint::black_box(ddg)).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("ims", &k.name), &k.ddg, |b, ddg| {
            let s = IterativeModuloScheduler::new(machine.clone());
            b.iter(|| s.schedule(std::hint::black_box(ddg)).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("list", &k.name), &k.ddg, |b, ddg| {
            let s = ListModuloScheduler::new(machine.clone());
            b.iter(|| s.schedule(std::hint::black_box(ddg)).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
