//! Harness throughput: loops/sec over a 128-loop corpus at 1 vs. N
//! workers.
//!
//! The solves are tick-capped (no wall-clock deadlines) so each
//! iteration does the same amount of work regardless of machine speed;
//! the measured difference between worker counts is then the sharding
//! overhead and the realized parallelism of the work-stealing pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swp_harness::{Harness, HarnessConfig, NullSink, SuiteRunConfig};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

fn bench_workers(c: &mut Criterion) {
    let corpus = generate(&SuiteConfig {
        num_loops: 128,
        ..SuiteConfig::pldi95_default()
    });
    let solve = SuiteRunConfig {
        num_loops: corpus.len(),
        time_limit_per_t: None,
        per_loop_ticks: Some(20_000),
        ..Default::default()
    };
    let mut group = c.benchmark_group("harness_corpus_128");
    group.sample_size(10);
    let n = std::thread::available_parallelism()
        .map_or(4, usize::from)
        .max(2);
    for &workers in &[1usize, n] {
        let harness = Harness::new(
            Machine::example_pldi95(),
            solve.clone(),
            HarnessConfig {
                workers,
                ..HarnessConfig::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let report = harness
                        .run(std::hint::black_box(corpus), &mut NullSink)
                        .expect("artifact-less run");
                    assert_eq!(report.records.len(), corpus.len());
                    report.summary.loops_per_sec()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workers);
criterion_main!(benches);
