//! Lower-bound machinery: `T_dep` (minimum-ratio cycle) and `T_res`.

use criterion::{criterion_group, criterion_main, Criterion};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

fn bench_bounds(c: &mut Criterion) {
    let corpus = generate(&SuiteConfig {
        num_loops: 200,
        ..SuiteConfig::pldi95_default()
    });
    let machine = Machine::example_pldi95();
    c.bench_function("t_dep_200_loops", |b| {
        b.iter(|| {
            corpus
                .iter()
                .filter_map(|l| std::hint::black_box(&l.ddg).t_dep())
                .map(u64::from)
                .sum::<u64>()
        });
    });
    c.bench_function("t_res_200_loops", |b| {
        b.iter(|| {
            corpus
                .iter()
                .filter_map(|l| machine.t_res(std::hint::black_box(&l.ddg)).ok())
                .map(u64::from)
                .sum::<u64>()
        });
    });
    c.bench_function("critical_cycle_200_loops", |b| {
        b.iter(|| {
            corpus
                .iter()
                .filter_map(|l| std::hint::black_box(&l.ddg).critical_cycle())
                .count()
        });
    });
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
