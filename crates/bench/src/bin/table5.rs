//! Table 5 (reconstructed) — ILP effort over the corpus: how many loops
//! settle within which time budget, engine mix, and branch-and-bound
//! effort. The paper's "10/30" note records its own per-loop solver
//! budgets; here the distribution is regenerated on the synthetic corpus
//! with the pure ILP (heuristic certificates off).
//!
//! The time bins use the harness's per-loop **solve time** (on-thread
//! CPU-side effort), not wall time, so they are meaningful at any worker
//! count.
//!
//! Run: `cargo run -p swp-bench --release --bin table5 -- [num_loops] [per-T seconds]`
//! Harness flags: `--workers N`, `--artifact PATH`, `--resume`,
//! `--conflict-oracle scan|automaton`, `--engine ilp|cp|portfolio`,
//! `--cold` (as in `table4`).

use std::process::ExitCode;
use std::time::Duration;
use swp_bench::{parse_conflict_oracle, parse_engine, render_table, SuiteOutcome, SuiteRunConfig};
use swp_core::SolvedBy;
use swp_harness::{Flags, Harness, HarnessConfig, NullSink};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &["resume", "cold"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("table5: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = (|| -> Result<_, String> {
        let num_loops: usize = flags.positional_or(0, 200)?;
        let secs: u64 = flags.positional_or(1, 3)?;
        let workers: usize = flags.get_or("workers", 1)?;
        Ok((num_loops, secs, workers))
    })();
    let (num_loops, secs, workers) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("table5: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== Table 5: ILP solve effort ({num_loops} loops, pure ILP, {secs}s per period, {workers} workers) ==\n"
    );
    let parsed = (|| Ok::<_, String>((parse_conflict_oracle(&flags)?, parse_engine(&flags)?)))();
    let (conflict_oracle, engine) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("table5: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = SuiteRunConfig {
        num_loops,
        time_limit_per_t: Some(Duration::from_secs(secs)),
        heuristic_incumbent: false,
        conflict_oracle,
        engine,
        warm: !flags.has("cold"),
        ..Default::default()
    };
    let config = HarnessConfig {
        workers,
        artifact: flags.get("artifact").map(Into::into),
        resume: flags.has("resume"),
        ..HarnessConfig::default()
    };
    let loops = generate(&SuiteConfig {
        num_loops,
        ..SuiteConfig::pldi95_default()
    });
    let harness = Harness::new(Machine::example_pldi95(), run, config);
    let report = match harness.run(&loops, &mut NullSink) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table5: {e}");
            return ExitCode::FAILURE;
        }
    };
    let recs = &report.records;

    let budgets_ms = [10u128, 100, 1000, 10_000, 60_000];
    let scheduled: Vec<_> = recs
        .iter()
        .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { .. }))
        .collect();
    let rows: Vec<Vec<String>> = budgets_ms
        .iter()
        .map(|&b| {
            let within = scheduled
                .iter()
                .filter(|r| r.solve_time.as_millis() <= b)
                .count();
            vec![
                format!("<= {} ms", b),
                within.to_string(),
                format!("{:.1}%", 100.0 * within as f64 / recs.len().max(1) as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["solve-time budget", "loops solved", "of corpus"], &rows)
    );

    let ilp_solved = scheduled
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                SuiteOutcome::Scheduled {
                    solved_by: SolvedBy::Ilp,
                    ..
                }
            )
        })
        .count();
    let timeouts = recs.iter().filter(|r| r.any_timeout).count();
    let total_nodes: u64 = recs.iter().map(|r| r.bb_nodes).sum();
    let mean_nodes = total_nodes as f64 / scheduled.len().max(1) as f64;
    println!("scheduled           : {}/{}", scheduled.len(), recs.len());
    println!("solved by the ILP   : {ilp_solved} (heuristic certificates disabled)");
    println!("loops with a timeout: {timeouts}");
    println!("mean B&B nodes/loop : {mean_nodes:.0}");
    let mut times: Vec<u128> = scheduled.iter().map(|r| r.solve_time.as_millis()).collect();
    times.sort_unstable();
    if !times.is_empty() {
        println!(
            "solve time p50/p90/max: {} / {} / {} ms",
            times[times.len() / 2],
            times[times.len() * 9 / 10],
            times.last().expect("nonempty"),
        );
    }
    println!("\n{}", report.summary.render());
    if report.interrupted {
        eprintln!("table5: run interrupted before the whole corpus was covered");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
