//! Table 5 (reconstructed) — ILP effort over the corpus: how many loops
//! settle within which time budget, engine mix, and branch-and-bound
//! effort. The paper's "10/30" note records its own per-loop solver
//! budgets; here the distribution is regenerated on the synthetic corpus
//! with the pure ILP (heuristic certificates off).
//!
//! Run: `cargo run -p swp-bench --release --bin table5 [num_loops] [per-T seconds]`

use std::time::Duration;
use swp_bench::{render_table, run_suite, SuiteOutcome, SuiteRunConfig};
use swp_core::SolvedBy;
use swp_loops::suite::SuiteConfig;
use swp_machine::Machine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_loops: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("== Table 5: ILP solve effort ({num_loops} loops, pure ILP, {secs}s per period) ==\n");
    let run = SuiteRunConfig {
        num_loops,
        time_limit_per_t: Duration::from_secs(secs),
        heuristic_incumbent: false,
        ..Default::default()
    };
    let recs = run_suite(
        &Machine::example_pldi95(),
        &SuiteConfig::pldi95_default(),
        &run,
    );

    let budgets_ms = [10u128, 100, 1000, 10_000, 60_000];
    let scheduled: Vec<_> = recs
        .iter()
        .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { .. }))
        .collect();
    let rows: Vec<Vec<String>> = budgets_ms
        .iter()
        .map(|&b| {
            let within = scheduled
                .iter()
                .filter(|r| r.elapsed.as_millis() <= b)
                .count();
            vec![
                format!("<= {} ms", b),
                within.to_string(),
                format!("{:.1}%", 100.0 * within as f64 / recs.len() as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["total budget", "loops solved", "of corpus"], &rows)
    );

    let ilp_solved = scheduled
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                SuiteOutcome::Scheduled {
                    solved_by: SolvedBy::Ilp,
                    ..
                }
            )
        })
        .count();
    let timeouts = recs.iter().filter(|r| r.any_timeout).count();
    let total_nodes: u64 = recs.iter().map(|r| r.bb_nodes).sum();
    let mean_nodes = total_nodes as f64 / scheduled.len().max(1) as f64;
    println!("scheduled           : {}/{}", scheduled.len(), recs.len());
    println!("solved by the ILP   : {ilp_solved} (heuristic certificates disabled)");
    println!("loops with a timeout: {timeouts}");
    println!("mean B&B nodes/loop : {mean_nodes:.0}");
    let mut times: Vec<u128> = scheduled.iter().map(|r| r.elapsed.as_millis()).collect();
    times.sort_unstable();
    if !times.is_empty() {
        println!(
            "solve time p50/p90/max: {} / {} / {} ms",
            times[times.len() / 2],
            times[times.len() * 9 / 10],
            times.last().expect("nonempty"),
        );
    }
}
