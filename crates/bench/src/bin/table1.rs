//! Table 1 — the motivating gap: a rate-optimal schedule found under
//! run-time unit choice (capacity-only ILP, the pre-paper state of the
//! art [6, 9]) that admits **no** fixed function-unit assignment.
//!
//! Run: `cargo run -p swp-bench --release --bin table1`

use swp_bench::flat_gantt;
use swp_core::coloring::OverlapGraph;
use swp_core::{MappingMode, RateOptimalScheduler, SchedulerConfig};
use swp_ddg::OpClass;
use swp_loops::kernels;
use swp_machine::{check_capacity_only, Machine};

fn main() {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    println!("== Table 1: Schedule A — run-time unit choice vs. fixed assignment ==\n");
    println!(
        "Loop: the paper's Figure 1 example ({} ops).  T_dep = {}, T_res = {}.",
        ddg.num_nodes(),
        ddg.t_dep().expect("finite"),
        machine.t_res(&ddg).expect("classes known"),
    );

    let cfg = SchedulerConfig {
        mapping: MappingMode::CapacityOnly,
        ..Default::default()
    };
    let r = RateOptimalScheduler::new(machine.clone(), cfg)
        .schedule(&ddg)
        .expect("capacity-only ILP schedules");
    let t = r.schedule.initiation_interval();
    println!("\nCapacity-only ILP (eq. (5) resources, units chosen at run time): T = {t}");
    println!("start times t_i = {:?}", r.schedule.start_times());
    println!("\nFlat schedule, 3 iterations (Schedule-A style):");
    println!("{}", flat_gantt(&r.schedule, 3));

    let ops = r.schedule.placed_ops(&ddg);
    println!(
        "Per-class capacity check (run-time choice): {:?}",
        check_capacity_only(&machine, t, &ops).map(|_| "OK")
    );

    let graph = OverlapGraph::build(&machine, t, &ops);
    match graph.color() {
        Some(colors) => println!("Exact circular-arc coloring unexpectedly succeeded: {colors:?}"),
        None => {
            println!("\nExact circular-arc coloring: NO fixed assignment exists at T = {t}.");
            if let Some(demand) = graph.min_units() {
                let fp = demand.get(&OpClass::new(1)).copied().unwrap_or(0);
                println!(
                    "This placement needs {fp} FP units; the machine has {}.",
                    machine.fu_type(OpClass::new(1)).expect("fp").count
                );
            } else {
                println!("(an operation even collides with its own next instance)");
            }
        }
    }
    println!(
        "\n=> The paper's point: resource feasibility under run-time unit choice does not\n\
         imply a valid mapping. Table 2 shows the unified formulation closing the gap."
    );
}
