//! Table 2 — Schedule B: the unified scheduling + mapping ILP finds a
//! `T = 4` schedule of the motivating example *with* a valid fixed
//! function-unit assignment (the paper's `t = [0,1,3,5,7,11]` class of
//! solutions).
//!
//! Run: `cargo run -p swp-bench --release --bin table2`

use swp_bench::{flat_gantt, kernel_gantt};
use swp_core::{MappingMode, RateOptimalScheduler, SchedulerConfig};
use swp_loops::kernels;
use swp_machine::{Machine, PipelinedSchedule};

fn main() {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    println!("== Table 2: Schedule B — unified scheduling and mapping ==\n");

    let cfg = SchedulerConfig {
        mapping: MappingMode::UnifiedColoring,
        heuristic_incumbent: false, // show the pure ILP result
        ..Default::default()
    };
    let r = RateOptimalScheduler::new(machine.clone(), cfg)
        .schedule(&ddg)
        .expect("unified ILP schedules");
    let t = r.schedule.initiation_interval();
    println!(
        "Unified ILP: first feasible period T = {t} (T_lb = {}).",
        r.t_lb()
    );
    for a in &r.attempts {
        println!(
            "  T = {}: {:?} ({} B&B nodes, {:?})",
            a.period, a.outcome, a.nodes, a.elapsed
        );
    }
    println!("\nstart times t_i = {:?}", r.schedule.start_times());
    println!(
        "unit assignment = {:?}",
        r.schedule
            .assignment()
            .iter()
            .map(|a| a.expect("mapped"))
            .collect::<Vec<_>>()
    );
    assert!(r.schedule.validate(&ddg, &machine).is_ok());

    println!("\nRepetitive pattern (one period, issue slots per physical unit):");
    println!("{}", kernel_gantt(&r.schedule, &ddg, &machine));
    println!("Flat schedule, 3 iterations (Table-2 shape: prolog, pattern, epilog):");
    println!("{}", flat_gantt(&r.schedule, 3));

    // The paper's own Schedule B for reference.
    println!("The paper's Schedule B (t = [0,1,3,5,7,11]) validated here too:");
    let paper = PipelinedSchedule::new(4, vec![0, 1, 3, 5, 7, 11], vec![None; 6]);
    println!(
        "  dependences + capacity: {:?}",
        paper.validate(&ddg, &machine).map(|_| "OK")
    );
    let ops = paper.placed_ops(&ddg);
    let graph = swp_core::coloring::OverlapGraph::build(&machine, 4, &ops);
    println!(
        "  fixed assignment via circular-arc coloring: {:?}",
        graph.color().map(|c| format!("units {c:?}"))
    );
}
