//! Figure 1 — the motivating example's DDG, its critical cycle, and the
//! period lower bounds.
//!
//! Run: `cargo run -p swp-bench --release --bin fig1`

use swp_bench::render_table;
use swp_loops::kernels;
use swp_machine::Machine;

fn main() {
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    println!("== Figure 1: motivating-example DDG ==\n");
    let rows: Vec<Vec<String>> = ddg
        .nodes()
        .map(|(id, n)| {
            let fu = machine.fu_type(n.class).expect("known class");
            vec![
                format!("i{}", id.index()),
                n.name.clone(),
                fu.name.clone(),
                n.latency.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["node", "operation", "unit class", "latency"], &rows)
    );
    println!("dependences (src -> dst, distance):");
    for e in ddg.edges() {
        println!(
            "  i{} -> i{}  (distance {})",
            e.src.index(),
            e.dst.index(),
            e.distance
        );
    }
    let t_dep = ddg.t_dep().expect("finite");
    let t_res = machine.t_res(&ddg).expect("classes known");
    println!("\nT_dep = {t_dep}");
    if let Some(c) = ddg.critical_cycle() {
        println!(
            "critical cycle: {:?} (Σd = {}, Σm = {}, bound = {})",
            c.nodes
                .iter()
                .map(|n| format!("i{}", n.index()))
                .collect::<Vec<_>>(),
            c.total_latency,
            c.total_distance,
            c.bound(),
        );
    }
    println!("T_res = {t_res}");
    println!("T_lb  = {}", t_dep.max(t_res));
    println!("\nGraphviz DOT:\n{}", ddg.to_dot());
}
