//! Hazard-automaton A/B benchmark → `BENCH_automata.json`.
//!
//! Two measurements, one artifact:
//!
//! 1. **Micro**: per-query cost of the three conflict engines — naive
//!    reservation-table scan, collision-matrix bit test, hazard-FSA
//!    lookup — on the PLDI'95 FP class at `T ∈ {2, 4, 8, 16}`, with the
//!    FSA-over-naive speedup per period.
//! 2. **Harness A/B**: the corpus harness run twice over the same loops
//!    (default 256) under identical deterministic tick budgets, once per
//!    [`ConflictOracleMode`], recording wall time, outcome identity, and
//!    the automaton's oracle telemetry.
//!
//! Run: `cargo run -p swp-bench --release --bin bench_automata -- [num_loops] [--out PATH]`

use std::process::ExitCode;
use swp_automata::{stats, HazardAutomaton, HazardFsa};
use swp_bench::ab;
use swp_ddg::OpClass;
use swp_harness::{
    ConflictOracleMode, Flags, Harness, HarnessConfig, LoopRecord, NullSink, SuiteRunConfig,
};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::{Machine, ReservationTable};

const PERIODS: [u32; 4] = [2, 4, 8, 16];
/// Queries per timed repetition (amortizes the `Instant` overhead).
const BATCH: u32 = 4096;
/// Timed repetitions per engine; the minimum is reported.
const REPS: usize = 32;
/// Full harness A/B repetitions per oracle mode; minimum wall is
/// reported (the runs are outcome-deterministic, so reps only tighten
/// the timing, never the comparison).
const AB_REPS: usize = 3;

/// The checker's exact scan, inlined (same loop the pre-automaton
/// checker runs per op pair).
fn naive_collides(rt: &ReservationTable, period: u32, delta: u32) -> bool {
    for s in 0..rt.stages() {
        for l1 in rt.stage_offsets(s) {
            for l2 in rt.stage_offsets(s) {
                let d = (l1 as i64 - l2 as i64).rem_euclid(i64::from(period)) as u32;
                if d == delta {
                    return true;
                }
            }
        }
    }
    false
}

/// Minimum-of-`REPS` per-query nanoseconds for `f` over a batch.
fn time_per_query<F: FnMut(u32) -> bool>(f: F) -> f64 {
    ab::time_per_query(BATCH, REPS, f)
}

struct MicroRow {
    period: u32,
    naive_ns: f64,
    matrix_ns: f64,
    fsa_ns: f64,
}

fn micro(machine: &Machine) -> Vec<MicroRow> {
    let fp = OpClass::new(1);
    let rt = machine.fu_type(fp).expect("FP class").reservation.clone();
    PERIODS
        .iter()
        .map(|&period| {
            let automaton = HazardAutomaton::for_machine(machine, period);
            let fsa = automaton.fsa(fp).expect("FP FSA");
            let state = fsa.issue(HazardFsa::START, 0);
            for delta in 0..period {
                assert_eq!(
                    automaton.matrix().collides(fp, fp, delta),
                    Some(naive_collides(&rt, period, delta)),
                    "engines disagree at T={period}, delta={delta}"
                );
            }
            MicroRow {
                period,
                naive_ns: time_per_query(|q| naive_collides(&rt, period, q % period)),
                matrix_ns: time_per_query(|q| {
                    automaton.matrix().collides(fp, fp, q % period) == Some(true)
                }),
                fsa_ns: time_per_query(|q| !fsa.can_issue(state, q % period)),
            }
        })
        .collect()
}

struct AbRun {
    wall_us: u64,
    solve_us: u64,
    lines: Vec<String>,
    oracle: swp_automata::OracleCounters,
}

fn run_ab(machine: &Machine, num_loops: usize, oracle: ConflictOracleMode) -> AbRun {
    let loops = generate(&SuiteConfig {
        num_loops,
        ..SuiteConfig::pldi95_default()
    });
    let harness = Harness::new(
        machine.clone(),
        SuiteRunConfig {
            num_loops,
            time_limit_per_t: None,
            per_loop_ticks: Some(50_000),
            max_t_above_lb: 8,
            heuristic_incumbent: true,
            conflict_oracle: oracle,
            engine: Default::default(),
            warm: true,
            layout: Default::default(),
            max_live: None,
        },
        HarnessConfig {
            workers: 1,
            record_timing: true,
            ..HarnessConfig::default()
        },
    );
    let before = stats::snapshot();
    let report = harness.run(&loops, &mut NullSink).expect("artifact-less");
    assert!(!report.interrupted, "A/B run must cover every loop");
    AbRun {
        wall_us: report.wall_time.as_micros() as u64,
        solve_us: report.summary.solve_time_total.as_micros() as u64,
        lines: report
            .records
            .iter()
            .map(LoopRecord::to_json_line)
            .collect(),
        oracle: stats::snapshot().since(&before),
    }
}

/// Outcome fields only: `cfg_fp` legitimately differs (the oracle mode
/// is part of the config fingerprint so A/B artifacts never share a
/// cache), and `solve_us` is wall-clock timing — nondeterministic
/// between any two runs regardless of oracle. Everything else,
/// including the deterministic effort counters (`ticks`, `bb_nodes`,
/// `lp_iters`), must match byte-for-byte.
fn strip_noncomparable(lines: &[String]) -> Vec<String> {
    ab::strip_fields(lines, &["cfg_fp", "solve_us"])
}

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &[]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_automata: {e}");
            return ExitCode::FAILURE;
        }
    };
    let num_loops: usize = match flags.positional_or(0, 256) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bench_automata: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = flags
        .get("out")
        .unwrap_or("BENCH_automata.json")
        .to_string();
    let machine = Machine::example_pldi95();

    eprintln!("== micro: conflict-query engines (FP class, {BATCH} queries × {REPS} reps) ==");
    let rows = micro(&machine);
    for r in &rows {
        eprintln!(
            "T={:<2}  naive {:>7.1} ns  matrix {:>6.1} ns  fsa {:>6.1} ns  (fsa speedup ×{:.1})",
            r.period,
            r.naive_ns,
            r.matrix_ns,
            r.fsa_ns,
            r.naive_ns / r.fsa_ns
        );
    }

    eprintln!(
        "== harness A/B: {num_loops} loops, deterministic ticks, 1 worker, min of {AB_REPS} reps =="
    );
    // Interleave the reps so slow machine-wide drift hits both modes
    // equally; keep the minimum-wall rep of each.
    let modes = [ConflictOracleMode::Scan, ConflictOracleMode::Automaton];
    let mut runs = ab::interleave_min(
        AB_REPS,
        modes.len(),
        |arm| run_ab(&machine, num_loops, modes[arm]),
        |best, next| {
            if next.wall_us < best.wall_us {
                *best = next;
            }
        },
    );
    let auto = runs.pop().expect("two arms");
    let scan = runs.pop().expect("two arms");
    let (scan_cmp, auto_cmp) = (
        strip_noncomparable(&scan.lines),
        strip_noncomparable(&auto.lines),
    );
    let identical = scan_cmp == auto_cmp;
    for (s, a) in scan_cmp
        .iter()
        .zip(&auto_cmp)
        .filter(|(s, a)| s != a)
        .take(3)
    {
        eprintln!("diverged:\n  scan:      {s}\n  automaton: {a}");
    }
    eprintln!(
        "scan: {} µs wall ({} µs solve) | automaton: {} µs wall ({} µs solve) | outcomes identical: {identical}",
        scan.wall_us, scan.solve_us, auto.wall_us, auto.solve_us
    );
    eprintln!(
        "automaton oracle: {} FSA + {} matrix queries, {} fallback scans, {} memo hits / {} builds",
        auto.oracle.fsa_queries,
        auto.oracle.matrix_queries,
        auto.oracle.fallback_scans,
        auto.oracle.memo_hits,
        auto.oracle.memo_builds
    );

    let mut json = String::from("{\n  \"machine\": \"example_pldi95\",\n  \"micro\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"t\": {}, \"naive_ns\": {:.2}, \"matrix_ns\": {:.2}, \"fsa_ns\": {:.2}, \"fsa_speedup_vs_naive\": {:.2}}}{}\n",
            r.period,
            r.naive_ns,
            r.matrix_ns,
            r.fsa_ns,
            r.naive_ns / r.fsa_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"harness_ab\": {{\"loops\": {num_loops}, \"workers\": 1, \"per_loop_ticks\": 50000,\n    \"scan_wall_us\": {}, \"scan_solve_us\": {}, \"automaton_wall_us\": {}, \"automaton_solve_us\": {},\n    \"outcomes_identical\": {identical},\n    \"oracle\": {{\"fsa_queries\": {}, \"matrix_queries\": {}, \"fallback_scans\": {}, \"memo_hits\": {}, \"memo_builds\": {}}}}}\n",
        scan.wall_us,
        scan.solve_us,
        auto.wall_us,
        auto.solve_us,
        auto.oracle.fsa_queries,
        auto.oracle.matrix_queries,
        auto.oracle.fallback_scans,
        auto.oracle.memo_hits,
        auto.oracle.memo_builds
    ));
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_automata: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if !identical {
        eprintln!("bench_automata: scan and automaton outcomes DIVERGED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
