//! Exact-engine A/B benchmark: ILP vs CP vs portfolio → `BENCH_cpsat.json`.
//!
//! The harness runs the same PLDI'95 corpus three times — once per
//! [`Engine`] — with the IMS incumbent *off*, so the exact engines
//! settle every period themselves (with the heuristic on, most loops
//! close on an IMS certificate and the comparison measures nothing).
//! Methodology follows `bench_automata`: one worker, deterministic tick
//! budgets, interleaved repetitions with the per-loop **minimum** solve
//! time kept (`AB_REPS` reps), decision identity asserted across
//! engines.
//!
//! The artifact records, per loop, the min solve time under each engine
//! and the portfolio's ratio against `min(ILP, CP)` — the acceptance
//! gate is that the portfolio never loses to the *faster* engine by
//! more than the race overhead (a ≤ 1.1× ratio once a fixed per-race
//! thread-spawn allowance is granted; sub-millisecond loops are
//! dominated by that constant, which the analysis in EXPERIMENTS.md
//! quantifies).
//!
//! Run: `cargo run -p swp-bench --release --bin bench_cpsat -- [num_loops] [--out PATH] [--ticks N]`

use std::process::ExitCode;
use swp_bench::ab;
use swp_core::Engine;
use swp_harness::{Flags, Harness, HarnessConfig, LoopRecord, NullSink, SuiteRunConfig};
use swp_loops::suite::{generate, GeneratedLoop, SuiteConfig};
use swp_machine::Machine;

/// Interleaved repetitions per engine; per-loop minimum is kept.
const AB_REPS: usize = 3;
/// Fixed per-loop allowance for race overhead (thread spawn + channel
/// polling across the sweep's periods), granted before the 1.1× ratio
/// test. Portfolio mode pays this constant even when both engines are
/// instant, so on microsecond-scale loops the raw ratio is meaningless.
const RACE_OVERHEAD_US: u64 = 400;

struct EngineRun {
    wall_us: u64,
    records: Vec<LoopRecord>,
    /// Per-loop minimum solve time across reps, in µs.
    per_loop_us: Vec<u64>,
}

fn run_engine(machine: &Machine, loops: &[GeneratedLoop], engine: Engine, ticks: u64) -> EngineRun {
    let harness = Harness::new(
        machine.clone(),
        SuiteRunConfig {
            num_loops: loops.len(),
            time_limit_per_t: None,
            per_loop_ticks: Some(ticks),
            max_t_above_lb: 8,
            heuristic_incumbent: false,
            conflict_oracle: Default::default(),
            engine,
            warm: true,
            layout: Default::default(),
            max_live: None,
        },
        HarnessConfig {
            workers: 1,
            record_timing: true,
            ..HarnessConfig::default()
        },
    );
    let report = harness.run(loops, &mut NullSink).expect("artifact-less");
    assert!(!report.interrupted, "A/B run must cover every loop");
    let per_loop_us = report
        .records
        .iter()
        .map(|r| r.solve_time.as_micros() as u64)
        .collect();
    EngineRun {
        wall_us: report.wall_time.as_micros() as u64,
        records: report.records,
        per_loop_us,
    }
}

/// The decision an engine reached on one loop — everything that must be
/// engine-independent (timing and race telemetry are not compared).
fn decision(r: &LoopRecord) -> (Option<u32>, bool, bool) {
    (r.period, r.proven, r.any_timeout)
}

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &[]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_cpsat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let num_loops: usize = match flags.positional_or(0, 128) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bench_cpsat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ticks: u64 = match flags.get_or("ticks", 500_000) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bench_cpsat: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = flags.get("out").unwrap_or("BENCH_cpsat.json").to_string();
    let machine = Machine::example_pldi95();
    let loops = generate(&SuiteConfig {
        num_loops,
        ..SuiteConfig::pldi95_default()
    });

    eprintln!(
        "== exact-engine A/B: {num_loops} loops, {ticks} ticks/loop, heuristic off, \
         1 worker, per-loop min of {AB_REPS} reps =="
    );
    let engines = [Engine::Ilp, Engine::Cp, Engine::Portfolio];
    // Interleaved so machine-wide drift hits every engine equally; the
    // merge keeps the min wall and element-wise min per-loop times.
    let mut runs = ab::interleave_min(
        AB_REPS,
        engines.len(),
        |arm| run_engine(&machine, &loops, engines[arm], ticks),
        |b, run| {
            b.wall_us = b.wall_us.min(run.wall_us);
            for (m, v) in b.per_loop_us.iter_mut().zip(&run.per_loop_us) {
                *m = (*m).min(*v);
            }
        },
    );
    let port = runs.pop().expect("three arms");
    let cp = runs.pop().expect("three arms");
    let ilp = runs.pop().expect("three arms");

    // Decision identity: every engine is decision-equivalent, so with
    // the same tick budget the (period, proven, timeout) triple must
    // agree wherever no engine tripped its budget. Budget-tripped loops
    // may legitimately differ (the engines spend ticks differently).
    let mut mismatches = 0usize;
    let mut budget_limited = 0usize;
    for i in 0..num_loops {
        let d = [
            decision(&ilp.records[i]),
            decision(&cp.records[i]),
            decision(&port.records[i]),
        ];
        if d.iter().any(|&(_, _, timeout)| timeout) {
            budget_limited += 1;
            continue;
        }
        if d[1] != d[0] || d[2] != d[0] {
            mismatches += 1;
            if mismatches <= 3 {
                eprintln!(
                    "decision mismatch on {}: ilp {:?} cp {:?} portfolio {:?}",
                    ilp.records[i].name, d[0], d[1], d[2]
                );
            }
        }
    }

    // Per-loop comparison on the minimums.
    let mut cp_faster = 0usize;
    let mut within_ratio = 0usize;
    let mut within_overhead = 0usize;
    let mut worst_ratio = 0.0f64;
    let mut per_loop = String::new();
    for i in 0..num_loops {
        let (i_us, c_us, p_us) = (ilp.per_loop_us[i], cp.per_loop_us[i], port.per_loop_us[i]);
        let floor = i_us.min(c_us);
        if c_us < i_us {
            cp_faster += 1;
        }
        let ratio = p_us as f64 / floor.max(1) as f64;
        worst_ratio = worst_ratio.max(ratio);
        if ratio <= 1.1 {
            within_ratio += 1;
        }
        if p_us <= floor + floor / 10 + RACE_OVERHEAD_US {
            within_overhead += 1;
        }
        per_loop.push_str(&format!(
            "    {{\"loop\": {i}, \"period\": {}, \"ilp_us\": {i_us}, \"cp_us\": {c_us}, \
             \"portfolio_us\": {p_us}, \"ratio_vs_best\": {ratio:.2}}}{}\n",
            ilp.records[i].period.map_or(-1i64, i64::from),
            if i + 1 < num_loops { "," } else { "" }
        ));
    }
    let races: u64 = port.records.iter().map(|r| u64::from(r.races)).sum();
    let cp_wins: u64 = port.records.iter().map(|r| u64::from(r.race_cp_wins)).sum();
    let ilp_wins: u64 = port
        .records
        .iter()
        .map(|r| u64::from(r.race_ilp_wins))
        .sum();

    eprintln!(
        "wall: ilp {} µs | cp {} µs | portfolio {} µs",
        ilp.wall_us, cp.wall_us, port.wall_us
    );
    eprintln!(
        "per-loop: CP faster on {cp_faster}/{num_loops}, portfolio ≤1.1× best on \
         {within_ratio}/{num_loops} raw, {within_overhead}/{num_loops} with a \
         {RACE_OVERHEAD_US} µs race-overhead allowance (worst ratio ×{worst_ratio:.2})"
    );
    eprintln!(
        "portfolio races: {races} ({cp_wins} CP wins, {ilp_wins} ILP wins) | \
         decisions: {mismatches} mismatches, {budget_limited} budget-limited loops"
    );

    let json = format!(
        "{{\n  \"machine\": \"example_pldi95\",\n  \"loops\": {num_loops},\n  \
         \"per_loop_ticks\": {ticks},\n  \"reps\": {AB_REPS},\n  \
         \"heuristic_incumbent\": false,\n  \
         \"wall_us\": {{\"ilp\": {}, \"cp\": {}, \"portfolio\": {}}},\n  \
         \"races\": {{\"total\": {races}, \"cp_wins\": {cp_wins}, \"ilp_wins\": {ilp_wins}}},\n  \
         \"per_loop_summary\": {{\"cp_faster_than_ilp\": {cp_faster}, \
         \"portfolio_within_1_1x\": {within_ratio}, \
         \"portfolio_within_1_1x_plus_{RACE_OVERHEAD_US}us\": {within_overhead}, \
         \"worst_portfolio_ratio\": {worst_ratio:.2}, \
         \"decision_mismatches\": {mismatches}, \"budget_limited\": {budget_limited}}},\n  \
         \"per_loop\": [\n{per_loop}  ]\n}}\n",
        ilp.wall_us, cp.wall_us, port.wall_us
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_cpsat: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if mismatches > 0 {
        eprintln!("bench_cpsat: engines DISAGREED on fully-settled loops");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
