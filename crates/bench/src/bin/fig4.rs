//! Figure 4 — the circular-arc view of the mapping problem: each FP
//! operation's stage usage is a set of arcs mod `T`; overlapping arcs
//! must go to different physical units; the mapping is an arc coloring.
//!
//! Run: `cargo run -p swp-bench --release --bin fig4`

use swp_core::coloring::OverlapGraph;
use swp_core::{RateOptimalScheduler, SchedulerConfig};
use swp_ddg::OpClass;
use swp_loops::kernels;
use swp_machine::Machine;

fn main() {
    println!("== Figure 4: circular arcs and the coloring ==\n");
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();
    let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&ddg)
        .expect("schedulable");
    let t = r.schedule.initiation_interval();
    let fp = OpClass::new(1);
    let rt = &machine.fu_type(fp).expect("fp").reservation;

    println!("T = {t}. FP operations and their circular arcs (stage: residues):");
    for (id, n) in ddg.nodes() {
        if n.class != fp {
            continue;
        }
        print!("  i{} (offset {}):", id.index(), r.schedule.offset(id));
        for s in 0..rt.stages() {
            let res: Vec<u32> = rt
                .stage_offsets(s)
                .iter()
                .map(|&l| (r.schedule.offset(id) + l as u32) % t)
                .collect();
            print!("  stage{}@{res:?}", s + 1);
        }
        println!();
    }

    let ops = r.schedule.placed_ops(&ddg);
    let graph = OverlapGraph::build(&machine, t, &ops);
    println!("\nOverlap edges (same class, shared stage/residue cell):");
    for i in 0..graph.num_ops() {
        for &j in graph.neighbors(i) {
            if j > i {
                println!("  i{i} -- i{j}");
            }
        }
    }
    match graph.color() {
        Some(colors) => {
            println!("\nExact circular-arc coloring (unit per op):");
            for (id, n) in ddg.nodes() {
                if n.class == fp {
                    println!("  i{} -> FP[{}]", id.index(), colors[id.index()]);
                }
            }
            println!(
                "\nThe ILP reached the same conclusion internally via eqs. (12)-(14):\n\
                 assignment = {:?}",
                r.schedule.assignment()
            );
        }
        None => println!("no coloring exists (should not happen for an ILP schedule)"),
    }
    if let Some(demand) = graph.min_units() {
        println!("\nminimum units per class for this placement: {demand:?}");
    }
}
