//! Table 4 — scheduling performance over the 1066-loop corpus: how many
//! loops achieve `T = T_lb`, `T_lb + k`, with the mean DDG size per
//! bucket (the paper reports 735 loops at `T_lb` with mean 6 nodes, and
//! a small large-loop tail at `T_lb+2` / `T_lb+4` with means 16–17).
//!
//! Run: `cargo run -p swp-bench --release --bin table4 [num_loops] [per-T seconds] [machine]`
//! where `machine` is `example` (default) or `ppc604`.

use std::time::Duration;
use swp_bench::{render_table, run_suite, SuiteOutcome, SuiteRunConfig};
use swp_loops::suite::SuiteConfig;
use swp_machine::Machine;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let num_loops: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1066);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let which = args.get(3).map(String::as_str).unwrap_or("example");
    let (machine, corpus) = match which {
        "ppc604" => (Machine::ppc604(), SuiteConfig::ppc604()),
        _ => (Machine::example_pldi95(), SuiteConfig::pldi95_default()),
    };
    let run = SuiteRunConfig {
        num_loops,
        time_limit_per_t: Duration::from_secs(secs),
        ..Default::default()
    };
    println!(
        "== Table 4: scheduling performance ({num_loops} loops, {secs}s per period, {which} machine) ==\n"
    );
    let started = std::time::Instant::now();
    let recs = run_suite(&machine, &corpus, &run);
    let elapsed = started.elapsed();

    // Bucket by slack above the paper's counting T_lb (what the paper's
    // Table 4 measures). Our refined packing bound proves most of the
    // nonzero buckets rate-optimal anyway; that is reported separately.
    let mut buckets: std::collections::BTreeMap<u32, (usize, usize)> =
        std::collections::BTreeMap::new();
    let mut unscheduled = (0usize, 0usize);
    for r in &recs {
        match (&r.outcome, r.period) {
            (SuiteOutcome::Scheduled { .. }, Some(p)) => {
                let slack = p.saturating_sub(r.t_lb_counting);
                let e = buckets.entry(slack).or_insert((0, 0));
                e.0 += 1;
                e.1 += r.num_nodes;
            }
            _ => {
                unscheduled.0 += 1;
                unscheduled.1 += r.num_nodes;
            }
        }
    }
    let mut rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(slack, (count, nodes))| {
            vec![
                count.to_string(),
                if *slack == 0 {
                    "T = T_lb".into()
                } else {
                    format!("T = T_lb + {slack}")
                },
                format!("{:.0}", *nodes as f64 / *count as f64),
            ]
        })
        .collect();
    if unscheduled.0 > 0 {
        rows.push(vec![
            unscheduled.0.to_string(),
            "not scheduled in range".into(),
            format!("{:.0}", unscheduled.1 as f64 / unscheduled.0 as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Number of Loops",
                "Initiation Interval",
                "Mean # Nodes in DDG"
            ],
            &rows,
        )
    );
    let scheduled: usize = buckets.values().map(|(c, _)| c).sum();
    let at_lb = buckets.get(&0).map(|(c, _)| *c).unwrap_or(0);
    let proven = recs
        .iter()
        .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { slack: 0, .. }))
        .count();
    println!(
        "scheduled {scheduled}/{} loops; {at_lb} ({:.0}%) at the counting T_lb;\n\
         {proven} ({:.0}%) provably rate-optimal under the packing-refined bound; total {elapsed:?}",
        recs.len(),
        100.0 * at_lb as f64 / scheduled.max(1) as f64,
        100.0 * proven as f64 / scheduled.max(1) as f64,
    );
    println!(
        "\nPaper's shape for comparison: 735 loops at T = T_lb (mean 6 nodes);\n\
         20 at T_lb+2 (mean 16); 11 at T_lb+4 (mean 17) — most loops rate-optimal\n\
         at the bound, larger DDGs dominating the slack tail."
    );
}
