//! Table 4 — scheduling performance over the 1066-loop corpus: how many
//! loops achieve `T = T_lb`, `T_lb + k`, with the mean DDG size per
//! bucket (the paper reports 735 loops at `T_lb` with mean 6 nodes, and
//! a small large-loop tail at `T_lb+2` / `T_lb+4` with means 16–17).
//!
//! Run: `cargo run -p swp-bench --release --bin table4 -- [num_loops] [per-T seconds] [machine]`
//! where `machine` is `example` (default) or `ppc604`. Harness flags:
//!
//! * `--workers N` — shard the corpus over `N` threads (`0` = all CPUs;
//!   the bucket counts are identical at any worker count);
//! * `--artifact PATH` — stream per-loop JSONL records to `PATH`;
//! * `--resume` — load `PATH` first and skip already-solved loops;
//! * `--conflict-oracle scan|automaton` — conflict-query engine
//!   (decision-equivalent; `automaton` uses the precomputed hazard FSA);
//! * `--engine ilp|cp|portfolio` — the exact engine settling each
//!   period (decision-equivalent; `portfolio` races CP against the ILP);
//! * `--cold` — disable the (default) warm-started `T`-sweep: no basis,
//!   hint, or no-good carry-over from period `T` into `T+1`
//!   (decision-equivalent; the A/B reference for `bench_incr`).

use std::process::ExitCode;
use std::time::Duration;
use swp_bench::{parse_conflict_oracle, parse_engine, render_table, SuiteOutcome, SuiteRunConfig};
use swp_harness::{Flags, Harness, HarnessConfig, LoopRecord, NullSink};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &["resume", "cold"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("table4: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = (|| -> Result<_, String> {
        let num_loops: usize = flags.positional_or(0, 1066)?;
        let secs: u64 = flags.positional_or(1, 3)?;
        let workers: usize = flags.get_or("workers", 1)?;
        Ok((num_loops, secs, workers))
    })();
    let (num_loops, secs, workers) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("table4: {e}");
            return ExitCode::FAILURE;
        }
    };
    let which = flags.positional(2).unwrap_or("example").to_string();
    let (machine, corpus) = match which.as_str() {
        "ppc604" => (Machine::ppc604(), SuiteConfig::ppc604()),
        _ => (Machine::example_pldi95(), SuiteConfig::pldi95_default()),
    };

    let parsed = (|| Ok::<_, String>((parse_conflict_oracle(&flags)?, parse_engine(&flags)?)))();
    let (conflict_oracle, engine) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("table4: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = SuiteRunConfig {
        num_loops,
        time_limit_per_t: Some(Duration::from_secs(secs)),
        conflict_oracle,
        engine,
        warm: !flags.has("cold"),
        ..Default::default()
    };
    let config = HarnessConfig {
        workers,
        artifact: flags.get("artifact").map(Into::into),
        resume: flags.has("resume"),
        ..HarnessConfig::default()
    };
    println!(
        "== Table 4: scheduling performance ({num_loops} loops, {secs}s per period, {which} machine, {workers} workers) ==\n"
    );
    let loops = generate(&SuiteConfig {
        num_loops,
        ..corpus
    });
    let harness = Harness::new(machine, run, config);
    let report = match harness.run(&loops, &mut NullSink) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("table4: {e}");
            return ExitCode::FAILURE;
        }
    };

    print_buckets(&report.records);
    println!("{}", report.summary.render());
    println!(
        "Paper's shape for comparison: 735 loops at T = T_lb (mean 6 nodes);\n\
         20 at T_lb+2 (mean 16); 11 at T_lb+4 (mean 17) — most loops rate-optimal\n\
         at the bound, larger DDGs dominating the slack tail."
    );
    if report.interrupted {
        eprintln!("table4: run interrupted before the whole corpus was covered");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Buckets records by slack above the paper's counting `T_lb` (what the
/// paper's Table 4 measures) and renders the table. Our refined packing
/// bound proves most of the nonzero buckets rate-optimal anyway; that is
/// reported separately in the summary.
fn print_buckets(recs: &[LoopRecord]) {
    let mut buckets: std::collections::BTreeMap<u32, (usize, usize)> =
        std::collections::BTreeMap::new();
    let mut unscheduled = (0usize, 0usize);
    for r in recs {
        match (&r.outcome, r.period) {
            (SuiteOutcome::Scheduled { .. }, Some(p)) => {
                let slack = p.saturating_sub(r.t_lb_counting);
                let e = buckets.entry(slack).or_insert((0, 0));
                e.0 += 1;
                e.1 += r.num_nodes;
            }
            _ => {
                unscheduled.0 += 1;
                unscheduled.1 += r.num_nodes;
            }
        }
    }
    let mut rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|(slack, (count, nodes))| {
            vec![
                count.to_string(),
                if *slack == 0 {
                    "T = T_lb".into()
                } else {
                    format!("T = T_lb + {slack}")
                },
                format!("{:.0}", *nodes as f64 / *count as f64),
            ]
        })
        .collect();
    if unscheduled.0 > 0 {
        rows.push(vec![
            unscheduled.0.to_string(),
            "not scheduled in range".into(),
            format!("{:.0}", unscheduled.1 as f64 / unscheduled.0 as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Number of Loops",
                "Initiation Interval",
                "Mean # Nodes in DDG"
            ],
            &rows,
        )
    );
}
