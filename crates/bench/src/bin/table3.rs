//! Table 3 — the machine configurations used in the evaluation: the
//! motivating-example machine and the PowerPC-604-flavoured model [14],
//! with each unit's reservation table, forbidden latencies, and MAL.
//!
//! Run: `cargo run -p swp-bench --release --bin table3`

use swp_bench::render_table;
use swp_machine::{CollisionInfo, Machine};

fn describe(name: &str, machine: &Machine) {
    println!("== {name} ==\n");
    let rows: Vec<Vec<String>> = machine
        .types()
        .iter()
        .map(|t| {
            let info = CollisionInfo::analyze(&t.reservation);
            vec![
                t.name.clone(),
                t.count.to_string(),
                t.latency.to_string(),
                t.reservation.exec_time().to_string(),
                t.reservation.stages().to_string(),
                if t.reservation.is_clean() {
                    "clean".into()
                } else {
                    format!("{:?}", info.forbidden_latencies())
                },
                info.mal().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "unit",
                "count",
                "latency",
                "exec",
                "stages",
                "forbidden",
                "MAL"
            ],
            &rows,
        )
    );
    for t in machine.types() {
        if !t.reservation.is_clean() {
            println!("{} reservation table:\n{}", t.name, t.reservation);
        }
    }
}

fn main() {
    println!("== Table 3: machine configurations ==\n");
    describe(
        "Motivating-example machine (PLDI '95 §2, reconstructed)",
        &Machine::example_pldi95(),
    );
    describe(
        "Same machine, clean pipelines (MICRO '94 baseline world)",
        &Machine::example_clean(),
    );
    describe(
        "Same machine, non-pipelined FP and Ld/St (paper Problem 1)",
        &Machine::example_non_pipelined(),
    );
    describe("PowerPC-604-flavoured model [14]", &Machine::ppc604());
}
