//! Figure 3 — the `T`, `K`, `A` matrices of Schedule B (paper eq. (1)):
//! both the paper's literal schedule `t = [0,1,3,5,7,11]` and the one
//! our unified ILP finds.
//!
//! Run: `cargo run -p swp-bench --release --bin fig3`

use swp_core::{RateOptimalScheduler, SchedulerConfig};
use swp_loops::kernels;
use swp_machine::{Machine, PipelinedSchedule};

fn main() {
    println!("== Figure 3: T/K/A matrices ==\n");
    let ddg = kernels::motivating_example();
    let machine = Machine::example_pldi95();

    println!("The paper's Schedule B (t = [0,1,3,5,7,11], T = 4):\n");
    let paper = PipelinedSchedule::new(4, vec![0, 1, 3, 5, 7, 11], vec![None; 6]);
    assert!(paper.validate(&ddg, &machine).is_ok());
    println!("{}", paper.matrices());

    let r = RateOptimalScheduler::new(machine, SchedulerConfig::default())
        .schedule(&ddg)
        .expect("schedulable");
    println!(
        "The schedule our unified ILP finds (T = {}):\n",
        r.schedule.initiation_interval()
    );
    println!("{}", r.schedule.matrices());
    println!(
        "Both factor as T_vec = T·K + Aᵀ·[0..T)ᵀ with Σ_t a_t,i = 1 per column\n\
         (paper eqs. (1)/(7)/(9)); the A matrix is the modulo reservation view\n\
         the resource constraints are written over."
    );
}
