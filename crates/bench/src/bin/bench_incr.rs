//! Incremental-session A/B benchmark → `BENCH_incr.json`.
//!
//! Measures what a [`SolveSession`] buys over cold re-solving on the
//! corpus the tables use. Every loop runs the same five-step edit
//! script — solve; add a dependence; solve; revert it; solve; add an
//! instruction; solve; revert it; solve — through two arms:
//!
//! * **warm**: one session per loop; edits invalidate only the touched
//!   dependency cone, solves reuse carried bases/hints/no-goods, and
//!   the two revert steps replay their fingerprint-identical results.
//! * **cold**: a `warm_sweep`-off scheduler re-solving each step's DDG
//!   snapshot from scratch (exactly the pre-session behaviour).
//!
//! Both arms run under identical deterministic per-solve tick budgets;
//! the wall-time comparison is min-of-`REPS` with the arms interleaved
//! so machine-wide drift hits both equally. The benchmark *gates* on
//! decision identity: at every step of every loop the two arms must
//! agree on achieved period and optimality claim (steps where either
//! arm exhausted its budget are counted `inconclusive` and excluded,
//! as in the fuzzer's differential mode). Any mismatch fails the run.
//!
//! Two suites cover the two table stacks: `table4` (heuristic
//! incumbent on, default engine) and `table5` (pure ILP, a small
//! corpus slice at a quarter of the tick budget — exact solves are
//! seconds-per-loop there, see `BENCH_cpsat.json`).
//!
//! Run: `cargo run -p swp-bench --release --bin bench_incr -- [num_loops] [--out PATH] [--ticks N]`

use std::process::ExitCode;
use std::time::Instant;
use swp_bench::ab;
use swp_core::{
    Optimality, PeriodOutcome, RateOptimalScheduler, ReuseStats, ScheduleError, ScheduleResult,
    SchedulerConfig,
};
use swp_ddg::Ddg;
use swp_harness::Flags;
use swp_incr::{EditOp, SolveSession};
use swp_loops::suite::{generate, GeneratedLoop, SuiteConfig};
use swp_machine::Machine;
use swp_milp::Budget;

/// Timed A/B repetitions; the minimum total is reported.
const REPS: usize = 3;

/// One step of the per-loop script: the edit to apply before solving
/// (`None` for the initial solve).
fn script(ddg: &Ddg) -> Option<Vec<Option<EditOp>>> {
    let n = ddg.num_nodes();
    if n < 2 {
        return None; // the script needs two endpoints for its edge
    }
    // A forward loop-carried dependence 0 → n-1 at the smallest
    // distance that is not already present, so the revert step restores
    // the exact original edge list (and with it the fingerprint).
    let mut distance = 1;
    while ddg
        .edges()
        .any(|e| e.src.index() == 0 && e.dst.index() == n - 1 && e.distance == distance)
    {
        distance += 1;
    }
    let class = ddg.nodes().next().map(|(_, node)| node.class.index())?;
    Some(vec![
        None,
        Some(EditOp::AddEdge {
            src: 0,
            dst: n - 1,
            distance,
        }),
        Some(EditOp::RemoveEdge {
            src: 0,
            dst: n - 1,
            distance,
        }),
        Some(EditOp::AddNode {
            name: "bench_incr_x".into(),
            class,
            latency: 1,
        }),
        Some(EditOp::RemoveNode { index: n }),
    ])
}

/// Decision signature of one solve: `(period, proven)`, or `None` when
/// the run was inconclusive (a budget-tripped or failed attempt, whose
/// outcome legitimately depends on how much work the arm had left).
fn signature(r: &Result<ScheduleResult, ScheduleError>) -> Option<(Option<u32>, bool)> {
    let timed = |attempts: &[swp_core::PeriodAttempt]| {
        attempts.iter().any(|a| {
            matches!(
                a.outcome,
                PeriodOutcome::TimedOut | PeriodOutcome::EngineFailed
            )
        })
    };
    match r {
        Ok(res) => (!timed(&res.attempts)).then(|| {
            (
                Some(res.schedule.initiation_interval()),
                matches!(res.optimality, Optimality::Proven),
            )
        }),
        Err(ScheduleError::NotFound { attempts, .. }) => {
            (!timed(attempts)).then_some((None, false))
        }
        Err(ScheduleError::NoFinitePeriod) => Some((None, false)),
        Err(_) => None,
    }
}

struct SuiteSpec {
    name: &'static str,
    heuristic_incumbent: bool,
    num_loops: usize,
    /// Deterministic per-solve budget for this suite (identical across
    /// both arms, so decision identity is still well-posed).
    ticks: u64,
}

struct ArmResult {
    us: u64,
    /// Per (loop, step) decision signatures, in script order.
    decisions: Vec<Option<(Option<u32>, bool)>>,
    reuse: ReuseStats,
}

fn config(heuristic_incumbent: bool, warm: bool) -> SchedulerConfig {
    SchedulerConfig {
        time_limit_per_t: None,
        time_limit_total: None,
        heuristic_incumbent,
        warm_sweep: warm,
        ..SchedulerConfig::default()
    }
}

/// The warm arm: one session per loop, edits applied in place.
fn run_warm(
    machine: &Machine,
    loops: &[(GeneratedLoop, Vec<Option<EditOp>>)],
    heuristic: bool,
    ticks: u64,
) -> ArmResult {
    let mut decisions = Vec::new();
    let mut reuse = ReuseStats::default();
    let started = Instant::now();
    for (l, steps) in loops {
        let mut session = SolveSession::from_ddg(machine.clone(), config(heuristic, true), &l.ddg);
        for step in steps {
            if let Some(op) = step {
                session.apply(op).expect("script edits are valid");
            }
            let r = session.solve_with(&Budget::with_tick_limit(ticks));
            decisions.push(signature(&r));
        }
        reuse.absorb(&session.reuse());
    }
    ArmResult {
        us: started.elapsed().as_micros() as u64,
        decisions,
        reuse,
    }
}

/// The cold arm: every step's DDG snapshot solved from scratch.
fn run_cold(machine: &Machine, snapshots: &[Vec<Ddg>], heuristic: bool, ticks: u64) -> ArmResult {
    let scheduler = RateOptimalScheduler::new(machine.clone(), config(heuristic, false));
    let mut decisions = Vec::new();
    let started = Instant::now();
    for steps in snapshots {
        for ddg in steps {
            let r = scheduler.schedule_with(ddg, &Budget::with_tick_limit(ticks));
            decisions.push(signature(&r));
        }
    }
    ArmResult {
        us: started.elapsed().as_micros() as u64,
        decisions,
        reuse: ReuseStats::default(),
    }
}

struct SuiteResult {
    name: &'static str,
    loops: usize,
    skipped: usize,
    steps: usize,
    warm_us: u64,
    cold_us: u64,
    ticks: u64,
    mismatches: usize,
    inconclusive: usize,
    reuse: ReuseStats,
}

fn run_suite(machine: &Machine, spec: &SuiteSpec) -> SuiteResult {
    let ticks = spec.ticks;
    let generated = generate(&SuiteConfig {
        num_loops: spec.num_loops,
        ..SuiteConfig::pldi95_default()
    });
    let mut skipped = 0usize;
    let loops: Vec<(GeneratedLoop, Vec<Option<EditOp>>)> = generated
        .into_iter()
        .filter_map(|l| match script(&l.ddg) {
            Some(s) => Some((l, s)),
            None => {
                skipped += 1;
                None
            }
        })
        .collect();
    // Pre-materialize every step's DDG for the cold arm by replaying
    // the edit script through an untimed scratch session, so both arms
    // solve byte-identical instances.
    let snapshots: Vec<Vec<Ddg>> = loops
        .iter()
        .map(|(l, steps)| {
            let mut s = SolveSession::from_ddg(
                machine.clone(),
                config(spec.heuristic_incumbent, false),
                &l.ddg,
            );
            steps
                .iter()
                .map(|step| {
                    if let Some(op) = step {
                        s.apply(op).expect("script edits are valid");
                    }
                    s.ddg().clone()
                })
                .collect()
        })
        .collect();

    // Interleaved warm/cold reps with the min-total-time rep of each arm
    // kept. Decisions are tick-deterministic (identical budgets every
    // rep), so comparing the kept arms' decision vectors is the same
    // comparison the first rep would make.
    let mut runs = ab::interleave_min(
        REPS,
        2,
        |arm| match arm {
            0 => run_warm(machine, &loops, spec.heuristic_incumbent, ticks),
            _ => run_cold(machine, &snapshots, spec.heuristic_incumbent, ticks),
        },
        |best, next| {
            if next.us < best.us {
                *best = next;
            }
        },
    );
    let cold = runs.pop().expect("two arms");
    let warm = runs.pop().expect("two arms");
    assert_eq!(warm.decisions.len(), cold.decisions.len());
    let mut mismatches = 0usize;
    let mut inconclusive = 0usize;
    for (w, c) in warm.decisions.iter().zip(&cold.decisions) {
        match (w, c) {
            (Some(a), Some(b)) if a != b => mismatches += 1,
            (Some(_), Some(_)) => {}
            _ => inconclusive += 1,
        }
    }
    SuiteResult {
        name: spec.name,
        loops: loops.len(),
        skipped,
        steps: warm.decisions.len(),
        warm_us: warm.us,
        cold_us: cold.us,
        ticks,
        mismatches,
        inconclusive,
        reuse: warm.reuse,
    }
}

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &[]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_incr: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parsed = (|| -> Result<_, String> {
        let num_loops: usize = flags.positional_or(0, 192)?;
        let ticks: u64 = flags.get_or("ticks", 400_000)?;
        Ok((num_loops, ticks))
    })();
    let (num_loops, ticks) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_incr: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = flags.get("out").unwrap_or("BENCH_incr.json").to_string();
    let machine = Machine::example_pldi95();
    // The pure-ILP stack is orders of magnitude slower per solve (see
    // BENCH_cpsat: seconds per loop where the incumbent path takes
    // milliseconds), so the table5 suite runs a small slice of the
    // corpus at a quarter of the tick budget to stay minutes, not
    // hours. Both arms always share a suite's budget exactly.
    let suites = [
        SuiteSpec {
            name: "table4",
            heuristic_incumbent: true,
            num_loops,
            ticks,
        },
        SuiteSpec {
            name: "table5",
            heuristic_incumbent: false,
            num_loops: (num_loops / 16).max(8),
            ticks: (ticks / 4).max(1),
        },
    ];

    eprintln!(
        "== incremental sessions A/B: 5-step edit script per loop, base {ticks} ticks per solve, min of {REPS} reps =="
    );
    let mut results = Vec::new();
    for spec in &suites {
        let r = run_suite(&machine, spec);
        eprintln!(
            "{}: {} loops ({} skipped) × {} steps | warm {} µs, cold {} µs (speedup ×{:.2}) | {} mismatches, {} inconclusive",
            r.name,
            r.loops,
            r.skipped,
            r.steps.checked_div(r.loops).unwrap_or(0),
            r.warm_us,
            r.cold_us,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.mismatches,
            r.inconclusive
        );
        eprintln!(
            "  reuse: {} replays, {} periods skipped, {} basis hits, {} IMS hint hits, {} no-good replays, {} cone nodes",
            r.reuse.replays,
            r.reuse.periods_skipped,
            r.reuse.basis_hits,
            r.reuse.ims_hint_hits,
            r.reuse.nogood_replays,
            r.reuse.cone_nodes
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"machine\": \"example_pldi95\",\n");
    json.push_str(&format!(
        "  \"script\": \"solve; +edge; solve; -edge; solve; +node; solve; -node; solve\",\n  \"base_ticks\": {ticks},\n  \"reps\": {REPS},\n  \"suites\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"suite\": \"{}\", \"loops\": {}, \"steps\": {}, \"ticks_per_solve\": {}, \"warm_us\": {}, \"cold_us\": {}, \"speedup\": {:.2},\n     \"mismatches\": {}, \"inconclusive\": {},\n     \"reuse\": {{\"replays\": {}, \"periods_skipped\": {}, \"basis_hits\": {}, \"ims_hint_hits\": {}, \"nogood_replays\": {}, \"cone_nodes\": {}}}}}{}\n",
            r.name,
            r.loops,
            r.steps,
            r.ticks,
            r.warm_us,
            r.cold_us,
            r.cold_us as f64 / r.warm_us.max(1) as f64,
            r.mismatches,
            r.inconclusive,
            r.reuse.replays,
            r.reuse.periods_skipped,
            r.reuse.basis_hits,
            r.reuse.ims_hint_hits,
            r.reuse.nogood_replays,
            r.reuse.cone_nodes,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_incr: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    let mismatches: usize = results.iter().map(|r| r.mismatches).sum();
    if mismatches > 0 {
        eprintln!("bench_incr: warm and cold decisions DIVERGED ({mismatches})");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
