//! Data-layout A/B benchmark: `Legacy` vs `Flat` hot paths → `BENCH_hotpath.json`.
//!
//! Three micro benchmarks and one end-to-end harness A/B, one artifact:
//!
//! 1. **MRT probe**: per-query cost of `find_free_unit` on a
//!    half-occupied modulo reservation table at `T ∈ {2, 4, 8, 16}`,
//!    nested-`Vec` cells vs stride-indexed arenas with u64 occupancy
//!    words.
//! 2. **Collision check**: full `check_fixed_assignment` cost on a
//!    saturated conflict-free placement, per-cell hash-map scan vs
//!    word-parallel occupancy probe.
//! 3. **Exact simplex**: full exact-LP solve cost on small-integer
//!    scheduling-shaped LPs, dense `BigRat` tableau vs sparse
//!    `SmallRat` rows (the two are pivot-identical; outcomes are
//!    asserted equal here and in the equivalence tests).
//! 4. **Harness A/B**: the corpus harness run per [`DataLayout`] over
//!    the table-4 stack (heuristic incumbent on — IMS/MRT/checker
//!    dominate) and a table-5 slice (heuristic off — exact engines
//!    dominate, layout still covers verification), under identical
//!    deterministic tick budgets. Methodology follows `bench_automata`:
//!    one worker, interleaved min-of-`AB_REPS` walls, decision identity
//!    gated byte-for-byte after stripping `cfg_fp` (the layout is
//!    fingerprinted) and `solve_us` (wall-clock noise).
//!
//! Run: `cargo run -p swp-bench --release --bin bench_hotpath -- [num_loops] [--out PATH] [--ticks N] [--quick]`

use std::process::ExitCode;
use std::time::Instant;
use swp_bench::ab;
use swp_ddg::OpClass;
use swp_harness::{Flags, Harness, HarnessConfig, LoopRecord, NullSink, SuiteRunConfig};
use swp_heuristics::ModuloReservationTable;
use swp_loops::suite::{generate, GeneratedLoop, SuiteConfig};
use swp_machine::{check_fixed_assignment_layout, DataLayout, Machine, PlacedOp};
use swp_milp::exact::{solve_lp_exact, solve_lp_exact_dense, ExactOutcome};
use swp_milp::simplex::LpProblem;
use swp_milp::Sense;

const PERIODS: [u32; 4] = [2, 4, 8, 16];
/// Queries per timed micro repetition (amortizes the `Instant` overhead).
const BATCH: u32 = 4096;
/// Timed micro repetitions; the minimum is reported.
const REPS: usize = 32;
/// Full harness A/B repetitions per layout; minimum wall is reported.
const AB_REPS: usize = 3;
/// Timed whole-solve repetitions for the exact-simplex micro.
const SOLVE_REPS: usize = 8;

const LAYOUTS: [DataLayout; 2] = [DataLayout::Legacy, DataLayout::Flat];

// ---------------------------------------------------------------- micro

/// Builds one MRT per layout with identical placements: one op every
/// other slot of every class, so probes see a half-occupied table (the
/// IMS steady state, neither empty-table fast paths nor all-full).
fn occupied_mrts(machine: &Machine, period: u32) -> [ModuloReservationTable; 2] {
    let mut mrts =
        LAYOUTS.map(|layout| ModuloReservationTable::with_layout(machine, period, layout));
    let mut op = 0usize;
    for class in (0..machine.num_classes()).map(OpClass::new) {
        for t in (0..period).step_by(2) {
            // Both layouts are decision-identical, so the legacy pick is
            // the flat pick; place the same (fu, t, op) in both.
            let Some(fu) = mrts[0].find_free_unit(machine, class, t) else {
                continue;
            };
            for mrt in &mut mrts {
                mrt.place(machine, class, fu, t, op);
            }
            op += 1;
        }
    }
    mrts
}

struct MrtRow {
    period: u32,
    legacy_ns: f64,
    flat_ns: f64,
}

fn micro_mrt(machine: &Machine) -> Vec<MrtRow> {
    let nclasses = machine.num_classes() as u32;
    PERIODS
        .iter()
        .map(|&period| {
            let [legacy, flat] = occupied_mrts(machine, period);
            let probe = |mrt: &ModuloReservationTable, q: u32| {
                let class = OpClass::new((q % nclasses) as usize);
                mrt.find_free_unit(machine, class, q % period).is_some()
            };
            // Sanity: identical verdicts before timing anything.
            for q in 0..BATCH {
                assert_eq!(
                    legacy.find_free_unit(
                        machine,
                        OpClass::new((q % nclasses) as usize),
                        q % period
                    ),
                    flat.find_free_unit(machine, OpClass::new((q % nclasses) as usize), q % period),
                    "layouts disagree at T={period}, q={q}"
                );
            }
            MrtRow {
                period,
                legacy_ns: ab::time_per_query(BATCH, REPS, |q| probe(&legacy, q)),
                flat_ns: ab::time_per_query(BATCH, REPS, |q| probe(&flat, q)),
            }
        })
        .collect()
}

/// Greedily saturates a conflict-free fixed-assignment placement, so the
/// timed check scans a full table and never exits on an early error.
fn saturated_ops(machine: &Machine, period: u32) -> Vec<PlacedOp> {
    let mut ops = Vec::new();
    for (c, fu_type) in machine.types().iter().enumerate() {
        for fu in 0..fu_type.count {
            for offset in 0..period {
                let cand = PlacedOp {
                    class: OpClass::new(c),
                    offset,
                    fu: Some(fu),
                };
                ops.push(cand);
                if check_fixed_assignment_layout(machine, period, &ops, DataLayout::Legacy).is_err()
                {
                    ops.pop();
                }
            }
        }
    }
    ops
}

struct CheckRow {
    period: u32,
    ops: usize,
    legacy_ns: f64,
    flat_ns: f64,
}

fn micro_checker(machine: &Machine) -> Vec<CheckRow> {
    PERIODS
        .iter()
        .map(|&period| {
            let ops = saturated_ops(machine, period);
            let time = |layout: DataLayout| {
                ab::time_per_query(256, REPS, |_| {
                    check_fixed_assignment_layout(machine, period, &ops, layout).is_ok()
                })
            };
            CheckRow {
                period,
                ops: ops.len(),
                legacy_ns: time(DataLayout::Legacy),
                flat_ns: time(DataLayout::Flat),
            }
        })
        .collect()
}

/// Deterministic split-mix generator — the micro LPs must be identical
/// on every run so the artifact is reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A dense-ish LP with the coefficient profile of the scheduling ILP
/// relaxations: small integers, `0 ≤ x ≤ 6` boxes, mixed row senses.
fn synthetic_lp(seed: u64, cols: usize, rows: usize) -> LpProblem {
    let mut rng = Rng(seed);
    let mut lp_rows = Vec::new();
    for r in 0..rows {
        let mut terms = Vec::new();
        for j in 0..cols {
            if rng.below(10) < 3 {
                let c = rng.below(6) as f64 - 3.0;
                if c != 0.0 {
                    terms.push((j, c));
                }
            }
        }
        if terms.is_empty() {
            terms.push((r % cols, 1.0));
        }
        let sense = match rng.below(4) {
            0 => Sense::Ge,
            1 => Sense::Eq,
            _ => Sense::Le,
        };
        let rhs = rng.below(8) as f64;
        lp_rows.push((terms, sense, rhs));
    }
    LpProblem {
        obj: (0..cols).map(|_| rng.below(11) as f64 - 5.0).collect(),
        rows: lp_rows,
        lo: vec![0.0; cols],
        hi: vec![6.0; cols],
    }
}

/// Minimum-of-`reps` microseconds for one whole run of `f`.
fn time_solve_us(reps: usize, mut f: impl FnMut() -> ExactOutcome) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        std::hint::black_box(f());
        best = best.min(started.elapsed().as_nanos() as f64 / 1000.0);
    }
    best
}

struct SimplexRow {
    seed: u64,
    cols: usize,
    rows: usize,
    outcome: &'static str,
    dense_us: f64,
    sparse_us: f64,
}

fn micro_simplex() -> Vec<SimplexRow> {
    let shapes = [(1u64, 16usize, 20usize), (2, 24, 28), (3, 32, 40)];
    shapes
        .iter()
        .map(|&(seed, cols, rows)| {
            let p = synthetic_lp(seed, cols, rows);
            let exact = swp_milp::exact::ExactLp::from_f64_problem(&p);
            let sparse = solve_lp_exact(&exact);
            let dense = solve_lp_exact_dense(&exact);
            let outcome = match (&sparse, &dense) {
                (
                    ExactOutcome::Optimal {
                        objective: a,
                        x: xa,
                    },
                    ExactOutcome::Optimal {
                        objective: b,
                        x: xb,
                    },
                ) => {
                    assert!(a == b && xa == xb, "sparse and dense optima differ");
                    "optimal"
                }
                (ExactOutcome::Infeasible, ExactOutcome::Infeasible) => "infeasible",
                (ExactOutcome::Unbounded, ExactOutcome::Unbounded) => "unbounded",
                _ => panic!("sparse and dense outcomes differ on seed {seed}"),
            };
            SimplexRow {
                seed,
                cols,
                rows,
                outcome,
                dense_us: time_solve_us(SOLVE_REPS, || solve_lp_exact_dense(&exact)),
                sparse_us: time_solve_us(SOLVE_REPS, || solve_lp_exact(&exact)),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- e2e

struct LayoutRun {
    wall_us: u64,
    lines: Vec<String>,
}

fn run_layout(
    machine: &Machine,
    loops: &[GeneratedLoop],
    heuristic: bool,
    ticks: u64,
    layout: DataLayout,
) -> LayoutRun {
    let harness = Harness::new(
        machine.clone(),
        SuiteRunConfig {
            num_loops: loops.len(),
            time_limit_per_t: None,
            per_loop_ticks: Some(ticks),
            max_t_above_lb: 8,
            heuristic_incumbent: heuristic,
            conflict_oracle: Default::default(),
            engine: Default::default(),
            warm: true,
            layout,
            max_live: None,
        },
        HarnessConfig {
            workers: 1,
            record_timing: true,
            ..HarnessConfig::default()
        },
    );
    let report = harness.run(loops, &mut NullSink).expect("artifact-less");
    assert!(!report.interrupted, "A/B run must cover every loop");
    LayoutRun {
        wall_us: report.wall_time.as_micros() as u64,
        lines: report
            .records
            .iter()
            .map(LoopRecord::to_json_line)
            .collect(),
    }
}

struct SuiteSpec {
    name: &'static str,
    heuristic_incumbent: bool,
    num_loops: usize,
    ticks: u64,
}

struct SuiteResult {
    name: &'static str,
    loops: usize,
    ticks: u64,
    heuristic_incumbent: bool,
    legacy_wall_us: u64,
    flat_wall_us: u64,
    identical: bool,
}

fn run_suite(machine: &Machine, spec: &SuiteSpec) -> SuiteResult {
    let loops = generate(&SuiteConfig {
        num_loops: spec.num_loops,
        ..SuiteConfig::pldi95_default()
    });
    let mut runs = ab::interleave_min(
        AB_REPS,
        LAYOUTS.len(),
        |arm| {
            run_layout(
                machine,
                &loops,
                spec.heuristic_incumbent,
                spec.ticks,
                LAYOUTS[arm],
            )
        },
        |best, next| {
            if next.wall_us < best.wall_us {
                *best = next;
            }
        },
    );
    let flat = runs.pop().expect("two arms");
    let legacy = runs.pop().expect("two arms");
    // `cfg_fp` hashes the layout (so A/B artifacts never share a cache)
    // and `solve_us` is wall-clock; everything else — periods, proofs,
    // deterministic effort counters — must match byte-for-byte.
    let legacy_cmp = ab::strip_fields(&legacy.lines, &["cfg_fp", "solve_us"]);
    let flat_cmp = ab::strip_fields(&flat.lines, &["cfg_fp", "solve_us"]);
    let identical = legacy_cmp == flat_cmp;
    for (l, f) in legacy_cmp
        .iter()
        .zip(&flat_cmp)
        .filter(|(l, f)| l != f)
        .take(3)
    {
        eprintln!("diverged:\n  legacy: {l}\n  flat:   {f}");
    }
    SuiteResult {
        name: spec.name,
        loops: spec.num_loops,
        ticks: spec.ticks,
        heuristic_incumbent: spec.heuristic_incumbent,
        legacy_wall_us: legacy.wall_us,
        flat_wall_us: flat.wall_us,
        identical,
    }
}

fn main() -> ExitCode {
    let flags = match Flags::parse(std::env::args().skip(1), &["quick"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_hotpath: {e}");
            return ExitCode::FAILURE;
        }
    };
    let quick = flags.has("quick");
    let parsed = (|| -> Result<_, String> {
        let num_loops: usize = flags.positional_or(0, if quick { 24 } else { 256 })?;
        let ticks: u64 = flags.get_or("ticks", 50_000)?;
        Ok((num_loops, ticks))
    })();
    let (num_loops, ticks) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_hotpath: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = flags.get("out").unwrap_or("BENCH_hotpath.json").to_string();
    let machine = Machine::example_pldi95();

    eprintln!("== micro: MRT probe, legacy vs flat ({BATCH} queries × {REPS} reps) ==");
    let mrt_rows = micro_mrt(&machine);
    for r in &mrt_rows {
        eprintln!(
            "T={:<2}  legacy {:>7.1} ns  flat {:>6.1} ns  (×{:.1})",
            r.period,
            r.legacy_ns,
            r.flat_ns,
            r.legacy_ns / r.flat_ns
        );
    }

    eprintln!("== micro: full collision check, legacy vs flat ==");
    let check_rows = micro_checker(&machine);
    for r in &check_rows {
        eprintln!(
            "T={:<2} ({:>2} ops)  legacy {:>8.1} ns  flat {:>7.1} ns  (×{:.1})",
            r.period,
            r.ops,
            r.legacy_ns,
            r.flat_ns,
            r.legacy_ns / r.flat_ns
        );
    }

    eprintln!("== micro: exact LP solve, dense BigRat vs sparse SmallRat (min of {SOLVE_REPS}) ==");
    let simplex_rows = micro_simplex();
    for r in &simplex_rows {
        eprintln!(
            "{}×{} ({})  dense {:>9.1} µs  sparse {:>8.1} µs  (×{:.1})",
            r.rows,
            r.cols,
            r.outcome,
            r.dense_us,
            r.sparse_us,
            r.dense_us / r.sparse_us
        );
    }

    // The pure-ILP stack is orders of magnitude slower per solve (see
    // BENCH_cpsat), so the table5 suite runs a corpus slice at a quarter
    // of the tick budget, exactly as bench_incr does.
    let suites = [
        SuiteSpec {
            name: "table4",
            heuristic_incumbent: true,
            num_loops,
            ticks,
        },
        SuiteSpec {
            name: "table5",
            heuristic_incumbent: false,
            num_loops: if quick { 4 } else { (num_loops / 16).max(8) },
            ticks: (ticks / 4).max(1),
        },
    ];
    eprintln!(
        "== harness A/B: legacy vs flat, deterministic ticks, 1 worker, min of {AB_REPS} reps =="
    );
    let mut results = Vec::new();
    for spec in &suites {
        let r = run_suite(&machine, spec);
        eprintln!(
            "{}: {} loops × {} ticks | legacy {} µs, flat {} µs (speedup ×{:.2}) | outcomes identical: {}",
            r.name,
            r.loops,
            r.ticks,
            r.legacy_wall_us,
            r.flat_wall_us,
            r.legacy_wall_us as f64 / r.flat_wall_us.max(1) as f64,
            r.identical
        );
        results.push(r);
    }

    let mut json = String::from("{\n  \"machine\": \"example_pldi95\",\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"micro\": {{\n    \"mrt_probe\": [\n"
    ));
    for (i, r) in mrt_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"t\": {}, \"legacy_ns\": {:.2}, \"flat_ns\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.period,
            r.legacy_ns,
            r.flat_ns,
            r.legacy_ns / r.flat_ns,
            if i + 1 < mrt_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"collision_check\": [\n");
    for (i, r) in check_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"t\": {}, \"ops\": {}, \"legacy_ns\": {:.2}, \"flat_ns\": {:.2}, \"speedup\": {:.2}}}{}\n",
            r.period,
            r.ops,
            r.legacy_ns,
            r.flat_ns,
            r.legacy_ns / r.flat_ns,
            if i + 1 < check_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"exact_simplex\": [\n");
    for (i, r) in simplex_rows.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"seed\": {}, \"rows\": {}, \"cols\": {}, \"outcome\": \"{}\", \"dense_us\": {:.1}, \"sparse_us\": {:.1}, \"speedup\": {:.2}}}{}\n",
            r.seed,
            r.rows,
            r.cols,
            r.outcome,
            r.dense_us,
            r.sparse_us,
            r.dense_us / r.sparse_us,
            if i + 1 < simplex_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  },\n");
    json.push_str(&format!("  \"reps\": {AB_REPS},\n  \"harness_ab\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"suite\": \"{}\", \"loops\": {}, \"per_loop_ticks\": {}, \"heuristic_incumbent\": {},\n     \"legacy_wall_us\": {}, \"flat_wall_us\": {}, \"speedup\": {:.2}, \"outcomes_identical\": {}}}{}\n",
            r.name,
            r.loops,
            r.ticks,
            r.heuristic_incumbent,
            r.legacy_wall_us,
            r.flat_wall_us,
            r.legacy_wall_us as f64 / r.flat_wall_us.max(1) as f64,
            r.identical,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_hotpath: writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");

    if results.iter().any(|r| !r.identical) {
        eprintln!("bench_hotpath: legacy and flat outcomes DIVERGED");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
