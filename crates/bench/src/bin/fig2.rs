//! Figure 2 — reservation tables, their extension mod `T`, and the
//! per-stage resource-usage view of Schedule B: the paper's (a) `T = 4`
//! and (b) `T = 2` modulo tables for the hazard FP pipeline, plus the
//! schedule's pattern.
//!
//! Run: `cargo run -p swp-bench --release --bin fig2`

use swp_bench::kernel_gantt;
use swp_core::{RateOptimalScheduler, SchedulerConfig};
use swp_ddg::OpClass;
use swp_loops::kernels;
use swp_machine::Machine;

fn modulo_table(machine: &Machine, class: OpClass, period: u32) -> String {
    let rt = &machine.fu_type(class).expect("known").reservation;
    let mut out = format!("(T = {period})  time steps 0..{}\n", period - 1);
    for s in 0..rt.stages() {
        out.push_str(&format!("  Stage {}: ", s + 1));
        for t in 0..period {
            out.push_str(if rt.modulo_mark(s, t, period) {
                "1 "
            } else {
                "0 "
            });
        }
        out.push('\n');
    }
    out
}

fn main() {
    let machine = Machine::example_pldi95();
    let fp = OpClass::new(1);
    println!("== Figure 2: reservation tables and resource usage ==\n");
    println!(
        "FP reservation table (3 stages, stage 3 reused — the structural hazard):\n{}",
        machine.fu_type(fp).expect("fp").reservation
    );
    println!("Modulo (extended) reservation tables of the FP unit [8]:");
    println!("(a) {}", modulo_table(&machine, fp, 4));
    println!("(b) {}", modulo_table(&machine, fp, 2));
    println!(
        "At T = 2, stage 3 is claimed at both residues — the modulo scheduling\n\
         constraint [5, 11, 19] caps how densely one unit can be reused.\n"
    );

    let ddg = kernels::motivating_example();
    let r = RateOptimalScheduler::new(machine.clone(), SchedulerConfig::default())
        .schedule(&ddg)
        .expect("schedulable");
    println!(
        "Schedule found at T = {} — issue pattern per physical unit:",
        r.schedule.initiation_interval()
    );
    println!("{}", kernel_gantt(&r.schedule, &ddg, &machine));

    // Per-stage usage of each FP unit over the pattern.
    let t = r.schedule.initiation_interval();
    let rt = &machine.fu_type(fp).expect("fp").reservation;
    for fu in 0..machine.fu_type(fp).expect("fp").count {
        println!("FP[{fu}] stage usage over the pattern (rows: stages):");
        for s in 0..rt.stages() {
            print!("  Stage {}: ", s + 1);
            for step in 0..t {
                let used = ddg.nodes().any(|(id, n)| {
                    n.class == fp
                        && r.schedule.fu(id) == Some(fu)
                        && rt
                            .stage_offsets(s)
                            .iter()
                            .any(|&l| (r.schedule.offset(id) + l as u32) % t == step)
                });
                print!("{}", if used { "X " } else { ". " });
            }
            println!();
        }
    }
}
