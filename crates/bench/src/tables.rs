//! Minimal ASCII table rendering for the experiment binaries.

/// Renders `rows` under `headers` with column-wise alignment.
///
/// ```
/// let t = swp_bench::render_table(
///     &["loop", "T"],
///     &[vec!["daxpy".into(), "2".into()]],
/// );
/// assert!(t.contains("daxpy"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for &w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, &w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (i, &w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::render_table;

    #[test]
    fn renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("| name   | value |"));
        assert!(t.contains("| longer | 22    |"));
    }

    #[test]
    fn short_rows_padded() {
        let t = render_table(&["a", "b"], &[vec!["only".into()]]);
        assert!(t.contains("| only |"));
    }
}
