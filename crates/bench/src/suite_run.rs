//! The corpus runner behind Tables 4 and 5 — now a thin sequential
//! wrapper over the `swp-harness` subsystem.
//!
//! The record and configuration types live in [`swp_harness`] (they are
//! re-exported here so existing callers keep compiling); this module
//! only keeps the historical entry point: a synchronous, artifact-less,
//! single-worker corpus run. Anything fancier — worker sharding, the
//! JSONL artifact, resume-from-cache, run telemetry — is the harness's
//! job; see the `table4`/`table5` binaries for full-featured use.

pub use swp_harness::{LoopRecord, SuiteOutcome, SuiteRunConfig};

use swp_harness::{Harness, HarnessConfig, NullSink};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

/// Runs the synthetic corpus through the unified scheduler, one loop at
/// a time, and returns one record per loop. Deterministic for a fixed
/// corpus seed (up to solve-time fields).
pub fn run_suite(machine: &Machine, corpus: &SuiteConfig, run: &SuiteRunConfig) -> Vec<LoopRecord> {
    let corpus_cfg = SuiteConfig {
        num_loops: run.num_loops,
        ..corpus.clone()
    };
    let loops = generate(&corpus_cfg);
    let harness = Harness::new(machine.clone(), run.clone(), HarnessConfig::sequential());
    match harness.run(&loops, &mut NullSink) {
        Ok(report) => report.records,
        // Sequential mode configures no artifact, so no I/O can fail.
        Err(e) => unreachable!("artifact-less run cannot fail: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn smoke_run_produces_records() {
        let run = SuiteRunConfig {
            num_loops: 8,
            time_limit_per_t: Some(Duration::from_millis(500)),
            ..Default::default()
        };
        let recs = run_suite(
            &Machine::example_pldi95(),
            &SuiteConfig::pldi95_default(),
            &run,
        );
        assert_eq!(recs.len(), 8);
        let scheduled = recs
            .iter()
            .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { .. }))
            .count();
        assert!(scheduled >= 6, "only {scheduled}/8 scheduled");
        for r in &recs {
            if let Some(p) = r.period {
                assert!(p >= r.t_lb);
            }
        }
    }
}
