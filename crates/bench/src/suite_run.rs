//! The corpus runner behind Tables 4 and 5.

use std::time::Duration;
use swp_core::{RateOptimalScheduler, ScheduleError, SchedulerConfig, SolvedBy};
use swp_loops::suite::{generate, SuiteConfig};
use swp_machine::Machine;

/// Configuration for [`run_suite`].
#[derive(Debug, Clone)]
pub struct SuiteRunConfig {
    /// Number of loops (paper: 1066). Override with fewer for smoke runs.
    pub num_loops: usize,
    /// Per-period ILP budget.
    pub time_limit_per_t: Duration,
    /// Stop at `T_lb + span`.
    pub max_t_above_lb: u32,
    /// Let iterative modulo scheduling certify feasible periods
    /// (rate-optimality is unaffected; see `SchedulerConfig`).
    pub heuristic_incumbent: bool,
}

impl Default for SuiteRunConfig {
    fn default() -> Self {
        SuiteRunConfig {
            num_loops: 1066,
            time_limit_per_t: Duration::from_secs(3),
            max_t_above_lb: 8,
            heuristic_incumbent: true,
        }
    }
}

/// What happened to one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteOutcome {
    /// Scheduled at `T_lb + slack`.
    Scheduled {
        /// Achieved slack above the lower bound.
        slack: u32,
        /// Engine that found the schedule at the final period.
        solved_by: SolvedBy,
    },
    /// Every period in range failed or timed out.
    Unscheduled,
}

/// Per-loop record of a suite run.
#[derive(Debug, Clone)]
pub struct LoopRecord {
    /// Loop name from the generator.
    pub name: String,
    /// DDG node count.
    pub num_nodes: usize,
    /// `T_lb` of the loop (with the packing-refined `T_res`).
    pub t_lb: u32,
    /// `T_lb` under the paper's counting `T_res` — what the paper's
    /// Table 4 buckets against.
    pub t_lb_counting: u32,
    /// Achieved initiation interval (if scheduled).
    pub period: Option<u32>,
    /// Outcome class.
    pub outcome: SuiteOutcome,
    /// Total wall-clock spent on the loop.
    pub elapsed: Duration,
    /// Branch-and-bound nodes over all periods.
    pub bb_nodes: u64,
    /// Whether any attempted period timed out undecided.
    pub any_timeout: bool,
}

/// Runs the synthetic corpus through the unified scheduler and returns
/// one record per loop. Deterministic for a fixed corpus seed.
pub fn run_suite(machine: &Machine, corpus: &SuiteConfig, run: &SuiteRunConfig) -> Vec<LoopRecord> {
    let corpus_cfg = SuiteConfig {
        num_loops: run.num_loops,
        ..corpus.clone()
    };
    let loops = generate(&corpus_cfg);
    let scheduler = RateOptimalScheduler::new(
        machine.clone(),
        SchedulerConfig {
            time_limit_per_t: Some(run.time_limit_per_t),
            max_t_above_lb: run.max_t_above_lb,
            heuristic_incumbent: run.heuristic_incumbent,
            ..Default::default()
        },
    );
    loops
        .iter()
        .map(|l| {
            let t_lb_counting = l
                .ddg
                .t_dep()
                .unwrap_or(0)
                .max(machine.t_res_counting(&l.ddg).unwrap_or(0));
            let started = std::time::Instant::now();
            match scheduler.schedule(&l.ddg) {
                Ok(r) => {
                    let solved_by = match r.attempts.last() {
                        Some(a) => match &a.outcome {
                            swp_core::PeriodOutcome::Feasible(s) => *s,
                            _ => SolvedBy::Ilp,
                        },
                        None => SolvedBy::Ilp,
                    };
                    LoopRecord {
                        name: l.name.clone(),
                        num_nodes: l.ddg.num_nodes(),
                        t_lb: r.t_lb(),
                        t_lb_counting,
                        period: Some(r.schedule.initiation_interval()),
                        outcome: SuiteOutcome::Scheduled {
                            slack: r.slack_above_lb(),
                            solved_by,
                        },
                        elapsed: started.elapsed(),
                        bb_nodes: r.total_nodes(),
                        any_timeout: r
                            .attempts
                            .iter()
                            .any(|a| a.outcome == swp_core::PeriodOutcome::TimedOut),
                    }
                }
                Err(e) => {
                    let (t_lb, any_timeout) = match &e {
                        ScheduleError::NotFound { t_lb, attempts, .. } => (
                            *t_lb,
                            attempts
                                .iter()
                                .any(|a| a.outcome == swp_core::PeriodOutcome::TimedOut),
                        ),
                        _ => (0, false),
                    };
                    LoopRecord {
                        name: l.name.clone(),
                        num_nodes: l.ddg.num_nodes(),
                        t_lb,
                        t_lb_counting,
                        period: None,
                        outcome: SuiteOutcome::Unscheduled,
                        elapsed: started.elapsed(),
                        bb_nodes: 0,
                        any_timeout,
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_records() {
        let run = SuiteRunConfig {
            num_loops: 8,
            time_limit_per_t: Duration::from_millis(500),
            ..Default::default()
        };
        let recs = run_suite(
            &Machine::example_pldi95(),
            &SuiteConfig::pldi95_default(),
            &run,
        );
        assert_eq!(recs.len(), 8);
        let scheduled = recs
            .iter()
            .filter(|r| matches!(r.outcome, SuiteOutcome::Scheduled { .. }))
            .count();
        assert!(scheduled >= 6, "only {scheduled}/8 scheduled");
        for r in &recs {
            if let Some(p) = r.period {
                assert!(p >= r.t_lb);
            }
        }
    }
}
