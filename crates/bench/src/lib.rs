//! Shared experiment machinery for the table/figure regeneration
//! binaries and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (run `cargo run -p swp-bench --release --bin table4`);
//! this library holds the pieces they share: ASCII table rendering,
//! Gantt views of periodic schedules, and the Table 4 / Table 5 corpus
//! runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod gantt;
pub mod suite_run;
pub mod tables;

pub use gantt::{flat_gantt, kernel_gantt};
pub use suite_run::{run_suite, LoopRecord, SuiteOutcome, SuiteRunConfig};
pub use tables::render_table;

/// Parses the shared `--conflict-oracle scan|automaton` harness flag
/// (default `scan`).
///
/// # Errors
///
/// A usage message when the value is neither `scan` nor `automaton`.
pub fn parse_conflict_oracle(
    flags: &swp_harness::Flags,
) -> Result<swp_harness::ConflictOracleMode, String> {
    match flags.get("conflict-oracle").unwrap_or("scan") {
        "scan" => Ok(swp_harness::ConflictOracleMode::Scan),
        "automaton" => Ok(swp_harness::ConflictOracleMode::Automaton),
        other => Err(format!(
            "flag --conflict-oracle: unknown engine `{other}` (expected `scan` or `automaton`)"
        )),
    }
}

/// Parses the shared `--engine ilp|cp|portfolio` harness flag (default
/// `ilp`), selecting the exact engine that settles each period.
///
/// # Errors
///
/// A usage message when the value names no engine.
pub fn parse_engine(flags: &swp_harness::Flags) -> Result<swp_core::Engine, String> {
    match flags.get("engine").unwrap_or("ilp") {
        "ilp" => Ok(swp_core::Engine::Ilp),
        "cp" => Ok(swp_core::Engine::Cp),
        "portfolio" => Ok(swp_core::Engine::Portfolio),
        other => Err(format!(
            "flag --engine: unknown engine `{other}` (expected `ilp`, `cp`, or `portfolio`)"
        )),
    }
}
