//! Gantt-style text views of periodic schedules (paper Figure 2 /
//! Tables 1–2).

use swp_ddg::Ddg;
use swp_machine::{Machine, PipelinedSchedule};

/// One repetitive-pattern period, one row per physical unit: which
/// operation *issues* on it at each step, `.` when idle.
pub fn kernel_gantt(schedule: &PipelinedSchedule, ddg: &Ddg, machine: &Machine) -> String {
    let t = schedule.initiation_interval();
    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    for (ci, fu_type) in machine.types().iter().enumerate() {
        for fu in 0..fu_type.count {
            let mut cells = vec![".".to_string(); t as usize];
            for (id, node) in ddg.nodes() {
                if node.class.index() == ci && schedule.fu(id) == Some(fu) {
                    cells[schedule.offset(id) as usize] = format!("i{}", id.index());
                }
            }
            rows.push((format!("{}[{fu}]", fu_type.name), cells));
        }
    }
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4);
    let cell_w = rows
        .iter()
        .flat_map(|(_, cs)| cs.iter().map(|c| c.len()))
        .max()
        .unwrap_or(1);
    let mut out = format!("{:name_w$} |", "unit");
    for step in 0..t {
        out.push_str(&format!(" {step:^cell_w$}"));
    }
    out.push('\n');
    for (name, cells) in rows {
        out.push_str(&format!("{name:<name_w$} |"));
        for c in cells {
            out.push_str(&format!(" {c:^cell_w$}"));
        }
        out.push('\n');
    }
    out
}

/// The flat view of the first `iterations` iterations: one row per
/// iteration, `iN` markers at issue cycles (the paper's Table 1/2 shape
/// with prolog, repetitive pattern, epilog visible).
pub fn flat_gantt(schedule: &PipelinedSchedule, iterations: u32) -> String {
    let flat = schedule.flat(iterations);
    let total: u64 = flat.iter().map(|&(_, _, c)| c).max().map_or(0, |m| m + 1);
    let mut out = format!("{:9} |", "cycle");
    for c in 0..total {
        out.push_str(&format!(" {c:>3}"));
    }
    out.push('\n');
    for j in 0..iterations {
        let mut cells = vec!["  .".to_string(); total as usize];
        for &(jj, n, c) in &flat {
            if jj == j {
                cells[c as usize] = format!("{:>3}", format!("i{}", n.index()));
            }
        }
        out.push_str(&format!("iter {j:<4} |"));
        for c in cells {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_loops::kernels;
    use swp_machine::Machine;

    #[test]
    fn kernel_gantt_shows_all_ops() {
        let g = kernels::motivating_example();
        let m = Machine::example_pldi95();
        let s = PipelinedSchedule::new(
            4,
            vec![0, 1, 3, 5, 7, 11],
            vec![Some(0), Some(0), Some(0), Some(0), Some(1), Some(0)],
        );
        let out = kernel_gantt(&s, &g, &m);
        for i in 0..6 {
            assert!(out.contains(&format!("i{i}")), "missing i{i} in:\n{out}");
        }
        assert!(out.contains("FP[0]"));
        assert!(out.contains("Ld/St[0]"));
    }

    #[test]
    fn flat_gantt_rows_match_iterations() {
        let s = PipelinedSchedule::new(2, vec![0, 1], vec![None, None]);
        let out = flat_gantt(&s, 3);
        assert_eq!(out.lines().count(), 4); // header + 3 iterations
        assert!(out.contains("iter 2"));
    }
}
