//! Shared A/B timing machinery for the `BENCH_*` binaries.
//!
//! Every benchmark in `src/bin/bench_*.rs` follows the same measurement
//! discipline:
//!
//! * **Interleaved repetitions, minima kept** — repetition `r` runs
//!   every arm once before repetition `r + 1` begins, so slow
//!   machine-wide drift (thermal throttling, background load) hits each
//!   arm equally, and keeping the per-arm minimum filters scheduler
//!   noise without biasing the comparison.
//! * **Batched per-query micro timing** — a query batch amortizes the
//!   `Instant` overhead; the minimum over repetitions is reported.
//! * **Byte-level outcome comparison** — A/B record lines are compared
//!   verbatim after stripping only the fields that legitimately differ
//!   (config fingerprints, wall-clock timings).
//!
//! This module is that discipline, factored once; the binaries keep
//! their own constants, arm definitions, and artifact schemas.

use std::time::Instant;

/// Runs `arms` measurement arms for `reps` interleaved repetitions and
/// returns one folded result per arm, in arm order.
///
/// The first repetition seeds each arm's slot; later repetitions are
/// folded in with `merge(best, next)` — typically keeping whichever has
/// the lower wall time, or taking element-wise minima.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn interleave_min<T>(
    reps: usize,
    arms: usize,
    mut run: impl FnMut(usize) -> T,
    mut merge: impl FnMut(&mut T, T),
) -> Vec<T> {
    assert!(reps > 0, "at least one repetition");
    let mut best: Vec<Option<T>> = std::iter::repeat_with(|| None).take(arms).collect();
    for _ in 0..reps {
        for (arm, slot) in best.iter_mut().enumerate() {
            let result = run(arm);
            match slot {
                None => *slot = Some(result),
                Some(b) => merge(b, result),
            }
        }
    }
    best.into_iter().map(|b| b.expect("reps > 0")).collect()
}

/// Minimum-of-`reps` per-query nanoseconds for `f` over a `batch` of
/// queries.
///
/// `f` takes the query index (already passed through
/// [`std::hint::black_box`]) and returns a boolean whose sum is
/// black-boxed too, so the compiler can neither hoist the query nor
/// discard its result.
pub fn time_per_query(batch: u32, reps: usize, mut f: impl FnMut(u32) -> bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let mut hits = 0u32;
        for q in 0..batch {
            hits += u32::from(f(std::hint::black_box(q)));
        }
        std::hint::black_box(hits);
        let ns = started.elapsed().as_nanos() as f64 / f64::from(batch);
        best = best.min(ns);
    }
    best
}

/// Removes one `"key":value` member (and an adjoining comma) from a
/// flat JSON line. Values must not contain `,` or `}` (fingerprint hex
/// strings and integers both qualify).
pub fn drop_field(line: &str, key: &str) -> String {
    let needle = format!("\"{key}\":");
    let Some(at) = line.find(&needle) else {
        return line.to_string();
    };
    let val_end = line[at..].find([',', '}']).map_or(line.len(), |e| at + e);
    if line[val_end..].starts_with(',') {
        format!("{}{}", &line[..at], &line[val_end + 1..])
    } else {
        let prefix = line[..at].strip_suffix(',').unwrap_or(&line[..at]);
        format!("{prefix}{}", &line[val_end..])
    }
}

/// Strips every named field from every line — the prelude to a
/// byte-for-byte A/B outcome comparison. The stripped fields are the
/// ones that legitimately differ between arms (config fingerprints that
/// encode the arm itself, wall-clock timings); everything else,
/// including deterministic effort counters, must match exactly.
pub fn strip_fields(lines: &[String], keys: &[&str]) -> Vec<String> {
    lines
        .iter()
        .map(|l| {
            let mut l = l.clone();
            for key in keys {
                l = drop_field(&l, key);
            }
            l
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_runs_arms_in_order_and_merges_minima() {
        let mut trace = Vec::new();
        let mut tick = 0u64;
        let best = interleave_min(
            3,
            2,
            |arm| {
                trace.push(arm);
                tick += 1;
                // Arm 0 improves over reps, arm 1 worsens.
                match arm {
                    0 => 100 - tick,
                    _ => 100 + tick,
                }
            },
            |best, next| *best = (*best).min(next),
        );
        assert_eq!(trace, [0, 1, 0, 1, 0, 1]);
        assert_eq!(best, [100 - 5, 100 + 2]);
    }

    #[test]
    fn drop_field_handles_every_position() {
        let line = r#"{"a":1,"b":"0xff","c":2}"#;
        assert_eq!(drop_field(line, "a"), r#"{"b":"0xff","c":2}"#);
        assert_eq!(drop_field(line, "b"), r#"{"a":1,"c":2}"#);
        assert_eq!(drop_field(line, "c"), r#"{"a":1,"b":"0xff"}"#);
        assert_eq!(drop_field(line, "missing"), line);
    }

    #[test]
    fn strip_fields_removes_each_key() {
        let lines = vec![r#"{"a":1,"b":2,"c":3}"#.to_string()];
        assert_eq!(strip_fields(&lines, &["a", "c"]), [r#"{"b":2}"#]);
    }

    #[test]
    fn time_per_query_is_finite_and_positive() {
        let ns = time_per_query(64, 2, |q| q % 2 == 0);
        assert!(ns.is_finite() && ns >= 0.0);
    }
}
