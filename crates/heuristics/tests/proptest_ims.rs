//! Property tests on the heuristic schedulers: everything they emit
//! validates, IMS dominates the list scheduler, and `schedule_at`
//! certificates are honest.

use proptest::prelude::*;
use swp_ddg::{Ddg, OpClass};
use swp_heuristics::{IterativeModuloScheduler, ListModuloScheduler};
use swp_machine::Machine;

fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..8).prop_flat_map(|n| {
        let classes = proptest::collection::vec(0usize..3, n);
        let preds = proptest::collection::vec(any::<u16>(), n - 1);
        let carried = proptest::option::of((0..n, 1u32..3));
        (classes, preds, carried).prop_map(move |(classes, preds, carried)| {
            let mut g = Ddg::new();
            let lat = [1u32, 2, 3];
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_node(format!("n{i}"), OpClass::new(c), lat[c]))
                .collect();
            for (i, &p) in preds.iter().enumerate() {
                let src = (p as usize) % (i + 1);
                g.add_edge(ids[src], ids[i + 1], 0).expect("valid");
            }
            if let Some((k, d)) = carried {
                g.add_edge(ids[k], ids[k], d).expect("valid");
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IMS output always validates against the independent checker, on
    /// both the hazard and non-pipelined machines.
    #[test]
    fn ims_validates_everywhere(g in arb_loop()) {
        for machine in [Machine::example_pldi95(), Machine::example_non_pipelined()] {
            let r = IterativeModuloScheduler::new(machine.clone())
                .schedule(&g)
                .expect("small loops schedule");
            prop_assert_eq!(r.schedule.validate(&g, &machine), Ok(()));
            prop_assert!(r.schedule.is_mapped());
            prop_assert!(r.schedule.initiation_interval() >= r.mii);
            prop_assert_eq!(
                r.tried.last().copied(),
                Some(r.schedule.initiation_interval())
            );
        }
    }

    /// Backtracking can only help: IMS's II <= the list scheduler's II.
    #[test]
    fn ims_dominates_list(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let ims = IterativeModuloScheduler::new(machine.clone()).schedule(&g);
        let list = ListModuloScheduler::new(machine).schedule(&g);
        if let (Ok(a), Ok(b)) = (ims, list) {
            prop_assert!(
                a.schedule.initiation_interval() <= b.schedule.initiation_interval()
            );
        }
    }

    /// A `schedule_at(ii)` certificate really is a schedule at that ii.
    #[test]
    fn schedule_at_is_honest(g in arb_loop(), bump in 0u32..4) {
        let machine = Machine::example_pldi95();
        let ims = IterativeModuloScheduler::new(machine.clone());
        let full = ims.schedule(&g).expect("schedulable");
        let ii = full.schedule.initiation_interval() + bump;
        if let Some(s) = ims.schedule_at(&g, ii) {
            prop_assert_eq!(s.initiation_interval(), ii);
            prop_assert_eq!(s.validate(&g, &machine), Ok(()));
        } else {
            // Failing at the achieved ii itself would be inconsistent.
            prop_assert!(bump > 0, "schedule_at failed at an ii the full search achieved");
        }
    }
}
