//! Cases promoted from differential-fuzzing campaigns (see
//! `crates/fuzz`), inlined so the heuristics keep guarding them without
//! a dependency cycle.
//!
//! The property under guard is the one the differential runner checks
//! on every case: IMS produces **bit-identical** schedules whether MRT
//! probes go through reservation-table scans or the hazard automaton,
//! and a positive `schedule_at` answer is a real feasibility
//! certificate (it validates and simulates).

use swp_ddg::{Ddg, OpClass};
use swp_heuristics::IterativeModuloScheduler;
use swp_machine::{simulate, FuType, Machine, ReservationTable, UnitPolicy};

fn clean_machine() -> Machine {
    Machine::new(vec![FuType {
        name: "C0".into(),
        count: 1,
        latency: 1,
        reservation: ReservationTable::clean(1),
    }])
    .expect("valid machine")
}

/// The fuzzer's seed-11 shrunk recurrence (see
/// `crates/core/tests/fuzz_promoted.rs` for the driver-level twin).
fn three_node_recurrence() -> Ddg {
    let mut g = Ddg::new();
    let a = g.add_node("n1", OpClass::new(0), 1);
    let b = g.add_node("n3", OpClass::new(0), 4);
    let c = g.add_node("n4", OpClass::new(0), 4);
    g.add_edge(a, b, 0).expect("valid");
    g.add_edge(b, c, 0).expect("valid");
    g.add_edge(c, a, 2).expect("valid");
    g
}

fn unclean_machine() -> Machine {
    Machine::new(vec![FuType {
        name: "C0".into(),
        count: 1,
        latency: 3,
        reservation: ReservationTable::from_rows(&[
            &[true, false, true][..],
            &[false, true, false][..],
        ])
        .expect("valid table"),
    }])
    .expect("valid machine")
}

#[test]
fn promoted_cases_schedule_identically_under_both_oracles() {
    for (machine, ddg) in [
        (clean_machine(), three_node_recurrence()),
        (unclean_machine(), three_node_recurrence()),
    ] {
        let scan = IterativeModuloScheduler::new(machine.clone())
            .schedule(&ddg)
            .expect("promoted case schedules");
        let auto = IterativeModuloScheduler::new(machine.clone())
            .with_automaton(true)
            .schedule(&ddg)
            .expect("promoted case schedules");
        assert_eq!(
            scan.schedule, auto.schedule,
            "IMS schedules must be bit-identical under both conflict oracles"
        );
        scan.schedule
            .validate(&ddg, &machine)
            .expect("schedule validates");
    }
}

#[test]
fn promoted_case_feasibility_certificates_are_honest() {
    let machine = clean_machine();
    let ddg = three_node_recurrence();
    let ims = IterativeModuloScheduler::new(machine.clone());
    let best = ims.schedule(&ddg).expect("schedules").schedule;
    let t = best.initiation_interval();
    // Feasibility certificates at T and a few slower periods: every
    // positive answer must hold up under the checker and the simulator.
    for ii in t..t + 3 {
        let Some(s) = ims.schedule_at(&ddg, ii) else {
            panic!("IMS failed at ii={ii} though {t} is feasible on a clean unit");
        };
        assert_eq!(s.initiation_interval(), ii);
        s.validate(&ddg, &machine).expect("certificate validates");
        let policy = if s.is_mapped() {
            UnitPolicy::Fixed
        } else {
            UnitPolicy::Dynamic
        };
        simulate(&machine, &ddg, &s, 4, policy).expect("certificate simulates");
    }
}
