//! Layout-equivalence property tests for the heuristics: the flat MRT
//! arenas and the IMS scratch-buffer path must be decision-identical to
//! the legacy nested-`Vec` layout — same schedules, same eviction
//! counts, same probe answers — on random loops and probe sequences.
//!
//! Replay a failing stream with `SWP_PROPTEST_SEED=<seed>`.

use proptest::prelude::*;
use swp_ddg::{Ddg, OpClass};
use swp_heuristics::{IterativeModuloScheduler, ListModuloScheduler, ModuloReservationTable};
use swp_machine::{DataLayout, Machine};

fn arb_loop() -> impl Strategy<Value = Ddg> {
    (2usize..8).prop_flat_map(|n| {
        let classes = proptest::collection::vec(0usize..3, n);
        let preds = proptest::collection::vec(any::<u16>(), n - 1);
        let carried = proptest::option::of((0..n, 1u32..3));
        (classes, preds, carried).prop_map(move |(classes, preds, carried)| {
            let mut g = Ddg::new();
            let lat = [1u32, 2, 3];
            let ids: Vec<_> = classes
                .iter()
                .enumerate()
                .map(|(i, &c)| g.add_node(format!("n{i}"), OpClass::new(c), lat[c]))
                .collect();
            for (i, &p) in preds.iter().enumerate() {
                let src = (p as usize) % (i + 1);
                g.add_edge(ids[src], ids[i + 1], 0).expect("valid");
            }
            if let Some((k, d)) = carried {
                g.add_edge(ids[k], ids[k], d).expect("valid");
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// IMS produces the identical result under both layouts: same start
    /// times, same unit assignment, same MII, same ii trajectory, same
    /// eviction count.
    #[test]
    fn ims_is_layout_invariant(g in arb_loop()) {
        for machine in [Machine::example_pldi95(), Machine::example_non_pipelined()] {
            let legacy = IterativeModuloScheduler::new(machine.clone())
                .with_layout(DataLayout::Legacy)
                .schedule(&g);
            let flat = IterativeModuloScheduler::new(machine.clone())
                .with_layout(DataLayout::Flat)
                .schedule(&g);
            match (legacy, flat) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.schedule.start_times(), b.schedule.start_times());
                    prop_assert_eq!(a.schedule.assignment(), b.schedule.assignment());
                    prop_assert_eq!(
                        a.schedule.initiation_interval(),
                        b.schedule.initiation_interval()
                    );
                    prop_assert_eq!(a.mii, b.mii);
                    prop_assert_eq!(a.tried, b.tried);
                    prop_assert_eq!(a.evictions, b.evictions);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "verdicts diverge: {a:?} vs {b:?}"),
            }
        }
    }

    /// The no-backtracking list scheduler is likewise layout-invariant.
    #[test]
    fn list_scheduler_is_layout_invariant(g in arb_loop()) {
        let machine = Machine::example_pldi95();
        let legacy = ListModuloScheduler::new(machine.clone())
            .with_layout(DataLayout::Legacy)
            .schedule(&g);
        let flat = ListModuloScheduler::new(machine)
            .with_layout(DataLayout::Flat)
            .schedule(&g);
        match (legacy, flat) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.schedule.start_times(), b.schedule.start_times());
                prop_assert_eq!(a.schedule.assignment(), b.schedule.assignment());
                prop_assert_eq!(a.tried, b.tried);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "verdicts diverge: {a:?} vs {b:?}"),
        }
    }

    /// Driving two MRTs (one per layout) through the same random
    /// place/remove/probe sequence keeps every observable identical:
    /// `find_free_unit` answers and `conflicting_ops` owner sequences.
    #[test]
    fn mrt_probes_are_layout_invariant(
        period in 1u32..=8,
        steps in proptest::collection::vec(
            (0usize..3, 0u32..16, any::<bool>()),
            1..24,
        ),
    ) {
        let machine = Machine::example_pldi95();
        let mut legacy = ModuloReservationTable::with_layout(&machine, period, DataLayout::Legacy);
        let mut flat = ModuloReservationTable::with_layout(&machine, period, DataLayout::Flat);
        // (op id, class, fu, time) of live placements, for removals.
        let mut live: Vec<(usize, OpClass, u32, u32)> = Vec::new();
        for (op, &(c, time, remove)) in steps.iter().enumerate() {
            let class = OpClass::new(c);
            if remove && !live.is_empty() {
                let (id, rc, rfu, rt) = live.swap_remove(op % live.len());
                legacy.remove(&machine, rc, rfu, rt, id);
                flat.remove(&machine, rc, rfu, rt, id);
                continue;
            }
            let a = legacy.find_free_unit(&machine, class, time);
            let b = flat.find_free_unit(&machine, class, time);
            prop_assert_eq!(a, b, "probe diverged at step {}", op);
            let count = machine.fu_type(class).expect("known").count;
            let fu = a.unwrap_or(op as u32 % count);
            prop_assert_eq!(
                legacy.conflicting_ops(&machine, class, fu, time),
                flat.conflicting_ops(&machine, class, fu, time),
                "eviction sets diverged at step {}", op
            );
            // Like the IMS, only place where the class is modulo-feasible
            // at this period: the cell scan's "free" verdict ignores an
            // op's self-collisions, which `place` would then reject.
            let feasible = machine
                .fu_type(class)
                .expect("known")
                .reservation
                .modulo_feasible(period);
            if let (Some(fu), true) = (a, feasible) {
                legacy.place(&machine, class, fu, time, op);
                flat.place(&machine, class, fu, time, op);
                live.push((op, class, fu, time));
            }
        }
    }
}
