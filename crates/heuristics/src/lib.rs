//! Heuristic modulo schedulers — the baseline class the paper's ILP is
//! measured against.
//!
//! Two schedulers, both honoring full reservation tables and binding
//! every operation to a physical function unit at schedule time:
//!
//! * [`IterativeModuloScheduler`] — Rau's *iterative modulo scheduling*
//!   (MICRO '94, [22]): height-priority placement with bounded eviction
//!   and re-placement ("budget"), trying `II = MII, MII+1, …`;
//! * [`ListModuloScheduler`] — the same placement rule without
//!   backtracking: first conflict at an `II` aborts to `II+1`. A weaker
//!   baseline that shows what eviction buys.
//!
//! Both produce [`swp_core::PipelinedSchedule`]s that pass the same
//! independent validator as the ILP schedules, so quality comparisons
//! (`II` achieved vs. `T_lb`) are apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ims;
mod mrt;

pub use ims::{HeuristicError, HeuristicResult, IterativeModuloScheduler, ListModuloScheduler};
pub use mrt::ModuloReservationTable;
