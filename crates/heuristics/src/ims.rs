//! Iterative modulo scheduling (Rau, MICRO '94) and a non-backtracking
//! list-scheduling variant.

use crate::mrt::ModuloReservationTable;
use std::error::Error;
use std::fmt;
use swp_ddg::{Ddg, NodeId};
use swp_machine::PipelinedSchedule;
use swp_machine::{DataLayout, Machine};
use swp_milp::budget::{Budget, Exhaustion};

/// Why a heuristic gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeuristicError {
    /// Zero-distance dependence cycle: no period works.
    NoFinitePeriod,
    /// The DDG uses a class the machine does not define.
    UnknownClass(swp_ddg::OpClass),
    /// No schedule found for any `II` up to the cap.
    NotFound {
        /// The minimum II the search started from.
        mii: u32,
        /// The largest II attempted.
        ii_max: u32,
    },
    /// The solve budget's deadline or tick cap tripped mid-search.
    BudgetExhausted,
    /// The budget's cancel token fired mid-search.
    Cancelled,
}

impl fmt::Display for HeuristicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicError::NoFinitePeriod => {
                write!(f, "zero-distance dependence cycle: no finite period")
            }
            HeuristicError::UnknownClass(c) => write!(f, "machine does not define {c}"),
            HeuristicError::NotFound { mii, ii_max } => {
                write!(f, "no schedule found for II in [{mii}, {ii_max}]")
            }
            HeuristicError::BudgetExhausted => write!(f, "solve budget exhausted"),
            HeuristicError::Cancelled => write!(f, "search cancelled"),
        }
    }
}

impl Error for HeuristicError {}

impl From<Exhaustion> for HeuristicError {
    fn from(e: Exhaustion) -> Self {
        match e {
            Exhaustion::Cancelled => HeuristicError::Cancelled,
            Exhaustion::Deadline | Exhaustion::Ticks => HeuristicError::BudgetExhausted,
        }
    }
}

/// A heuristic schedule plus how hard it was to find.
#[derive(Debug, Clone)]
pub struct HeuristicResult {
    /// The (mapped) schedule.
    pub schedule: PipelinedSchedule,
    /// The `MII = max(RecMII, ResMII)` lower bound.
    pub mii: u32,
    /// Initiation intervals attempted, in order (last one succeeded).
    pub tried: Vec<u32>,
    /// Number of evictions performed (0 for the list scheduler).
    pub evictions: u64,
}

impl HeuristicResult {
    /// `II − MII`: zero means the heuristic hit the lower bound.
    pub fn slack_above_mii(&self) -> u32 {
        self.schedule.initiation_interval() - self.mii
    }
}

/// Rau's iterative modulo scheduling with reservation tables and fixed
/// unit binding.
///
/// ```
/// use swp_ddg::{Ddg, OpClass};
/// use swp_heuristics::IterativeModuloScheduler;
/// use swp_machine::Machine;
///
/// # fn main() -> Result<(), swp_heuristics::HeuristicError> {
/// let mut g = Ddg::new();
/// let a = g.add_node("ld", OpClass::new(2), 3);
/// let b = g.add_node("fmul", OpClass::new(1), 2);
/// g.add_edge(a, b, 0).unwrap();
/// let machine = Machine::example_pldi95();
/// let res = IterativeModuloScheduler::new(machine.clone()).schedule(&g)?;
/// assert!(res.schedule.validate(&g, &machine).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IterativeModuloScheduler {
    machine: Machine,
    /// Eviction budget per candidate II, as a multiple of the op count.
    budget_ratio: u32,
    /// Give up after `MII + ii_span`.
    ii_span: u32,
    /// Probe MRT slots through the memoized hazard automaton.
    use_automaton: bool,
    /// Cell layout of the MRT and of the final self-audit.
    layout: DataLayout,
    /// Register-pressure cap audited on every produced schedule.
    max_live: Option<u32>,
}

impl IterativeModuloScheduler {
    /// Creates a scheduler with Rau's customary budget (6× ops) and an
    /// II span of 32.
    pub fn new(machine: Machine) -> Self {
        IterativeModuloScheduler {
            machine,
            budget_ratio: 6,
            ii_span: 32,
            use_automaton: false,
            layout: DataLayout::default(),
            max_live: None,
        }
    }

    /// Overrides the eviction budget multiplier.
    pub fn with_budget_ratio(mut self, ratio: u32) -> Self {
        self.budget_ratio = ratio;
        self
    }

    /// Overrides the II search span.
    pub fn with_ii_span(mut self, span: u32) -> Self {
        self.ii_span = span;
        self
    }

    /// Routes MRT slot probes through the memoized [`HazardAutomaton`]
    /// of `(machine, II)` and takes `ResMII` from its conflict closure.
    /// Schedules are bit-identical either way (debug-asserted in the
    /// MRT); only the probe cost changes.
    ///
    /// [`HazardAutomaton`]: swp_automata::HazardAutomaton
    pub fn with_automaton(mut self, enabled: bool) -> Self {
        self.use_automaton = enabled;
        self
    }

    /// Selects the MRT cell layout ([`DataLayout::Flat`] by default).
    /// Schedules are bit-identical either way; only probe cost changes.
    pub fn with_layout(mut self, layout: DataLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Caps register pressure: any candidate schedule whose per-residue
    /// live census ([`PipelinedSchedule::max_live`]) exceeds the limit
    /// is discarded, failing that II over to the next one (or to the
    /// exact engines). `None` (the default) disables the audit.
    pub fn with_max_live(mut self, limit: Option<u32>) -> Self {
        self.max_live = limit;
        self
    }

    /// Schedules `ddg`, trying `II = MII, MII+1, …`.
    ///
    /// # Errors
    ///
    /// See [`HeuristicError`].
    pub fn schedule(&self, ddg: &Ddg) -> Result<HeuristicResult, HeuristicError> {
        self.schedule_with(ddg, &Budget::unlimited())
    }

    /// Schedules `ddg` under a solve [`Budget`]. One budget tick is spent
    /// per placement (initial or after eviction), so a tick cap bounds
    /// the backtracking deterministically; a fired cancel token stops the
    /// search within one check interval.
    ///
    /// # Errors
    ///
    /// [`HeuristicError::BudgetExhausted`] / [`HeuristicError::Cancelled`]
    /// when the budget trips, plus everything [`HeuristicError`] lists.
    pub fn schedule_with(
        &self,
        ddg: &Ddg,
        budget: &Budget,
    ) -> Result<HeuristicResult, HeuristicError> {
        run(
            &self.machine,
            ddg,
            self.ii_span,
            Some(self.budget_ratio),
            budget,
            self.use_automaton,
            self.layout,
            self.max_live,
        )
    }

    /// Attempts exactly one initiation interval; `None` means the
    /// heuristic failed there (which proves nothing — the ILP may still
    /// succeed). Used by `swp-core`'s driver as a fast feasibility
    /// certificate before falling back to the ILP.
    pub fn schedule_at(&self, ddg: &Ddg, ii: u32) -> Option<PipelinedSchedule> {
        self.schedule_at_with(ddg, ii, &Budget::unlimited())
            .unwrap_or(None)
    }

    /// Attempts exactly one initiation interval under a solve [`Budget`].
    ///
    /// `Ok(None)` means the heuristic failed at this `II` (which proves
    /// nothing); an error means the budget tripped before the attempt
    /// could finish.
    ///
    /// # Errors
    ///
    /// [`HeuristicError::BudgetExhausted`] or
    /// [`HeuristicError::Cancelled`].
    pub fn schedule_at_with(
        &self,
        ddg: &Ddg,
        ii: u32,
        budget: &Budget,
    ) -> Result<Option<PipelinedSchedule>, HeuristicError> {
        let mut evictions = 0;
        let mut scratch = ImsScratch::default();
        try_ii(
            &self.machine,
            ddg,
            ii,
            Some(self.budget_ratio),
            &mut evictions,
            budget,
            self.use_automaton,
            self.layout,
            self.max_live,
            &mut scratch,
        )
        .map_err(HeuristicError::from)
    }

    /// [`Self::schedule_at_with`], seeded with a schedule from an earlier
    /// closely-related solve (the previous sweep period, or the pre-edit
    /// instance of an incremental session).
    ///
    /// If the hint already has initiation interval `ii` and validates on
    /// `(ddg, machine)` it is returned directly — a zero-search
    /// feasibility certificate (the caller's cycle-accurate verification
    /// still runs, as for any heuristic schedule). Otherwise the hint is
    /// discarded and the normal IMS search runs: a stale hint can cost
    /// one validation, never correctness.
    ///
    /// # Errors
    ///
    /// As [`Self::schedule_at_with`].
    pub fn schedule_at_with_hint(
        &self,
        ddg: &Ddg,
        ii: u32,
        budget: &Budget,
        hint: Option<&PipelinedSchedule>,
    ) -> Result<Option<PipelinedSchedule>, HeuristicError> {
        if let Some(h) = hint {
            if h.initiation_interval() == ii
                && h.num_ops() == ddg.num_nodes()
                && h.validate_layout(ddg, &self.machine, None, self.layout)
                    .is_ok()
                && self.max_live.map_or(true, |ml| h.max_live(ddg) <= ml)
            {
                return Ok(Some(h.clone()));
            }
        }
        self.schedule_at_with(ddg, ii, budget)
    }
}

/// Modulo list scheduling: identical priorities and placement windows,
/// but the first unplaceable operation aborts to the next `II`.
#[derive(Debug, Clone)]
pub struct ListModuloScheduler {
    machine: Machine,
    ii_span: u32,
    use_automaton: bool,
    layout: DataLayout,
}

impl ListModuloScheduler {
    /// Creates a list scheduler with an II span of 32.
    pub fn new(machine: Machine) -> Self {
        ListModuloScheduler {
            machine,
            ii_span: 32,
            use_automaton: false,
            layout: DataLayout::default(),
        }
    }

    /// Routes MRT slot probes through the memoized hazard automaton;
    /// see [`IterativeModuloScheduler::with_automaton`].
    pub fn with_automaton(mut self, enabled: bool) -> Self {
        self.use_automaton = enabled;
        self
    }

    /// Selects the MRT cell layout; see
    /// [`IterativeModuloScheduler::with_layout`].
    pub fn with_layout(mut self, layout: DataLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Schedules `ddg` without backtracking.
    ///
    /// # Errors
    ///
    /// See [`HeuristicError`].
    pub fn schedule(&self, ddg: &Ddg) -> Result<HeuristicResult, HeuristicError> {
        self.schedule_with(ddg, &Budget::unlimited())
    }

    /// Schedules `ddg` without backtracking, under a solve [`Budget`].
    ///
    /// # Errors
    ///
    /// See [`HeuristicError`].
    pub fn schedule_with(
        &self,
        ddg: &Ddg,
        budget: &Budget,
    ) -> Result<HeuristicResult, HeuristicError> {
        run(
            &self.machine,
            ddg,
            self.ii_span,
            None,
            budget,
            self.use_automaton,
            self.layout,
            None,
        )
    }
}

/// Height priority: longest latency-weighted path to any sink, with
/// loop-carried edges discounted by `II·distance`. Computed by fixed
/// point (bounded passes, cycles contribute only via their discounted
/// edges, which cannot diverge when `II ≥ RecMII`).
fn heights_into(ddg: &Ddg, ii: u32, h: &mut Vec<i64>) {
    let n = ddg.num_nodes();
    h.clear();
    h.extend(ddg.nodes().map(|(_, nd)| nd.latency as i64));
    for _ in 0..n.max(1) {
        let mut changed = false;
        for e in ddg.edges() {
            let d = ddg.node(e.src).latency as i64;
            let v = h[e.dst.index()] + d - ii as i64 * e.distance as i64;
            if v > h[e.src.index()] {
                h[e.src.index()] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
fn heights(ddg: &Ddg, ii: u32) -> Vec<i64> {
    let mut h = Vec::new();
    heights_into(ddg, ii, &mut h);
    h
}

/// Reusable buffers for [`try_ii`]: allocated once per search, so the
/// steady place/evict loop runs allocation-free across candidate IIs.
#[derive(Debug, Default)]
struct ImsScratch {
    heights: Vec<i64>,
    order: Vec<usize>,
    time: Vec<Option<u32>>,
    unit: Vec<u32>,
    prev_time: Vec<Option<u32>>,
    pending: Vec<usize>,
    evict_probe: Vec<usize>,
    evict_victims: Vec<usize>,
}

#[allow(clippy::too_many_arguments)]
fn run(
    machine: &Machine,
    ddg: &Ddg,
    ii_span: u32,
    budget_ratio: Option<u32>,
    budget: &Budget,
    use_automaton: bool,
    layout: DataLayout,
    max_live: Option<u32>,
) -> Result<HeuristicResult, HeuristicError> {
    let t_dep = ddg.t_dep().ok_or(HeuristicError::NoFinitePeriod)?;
    let map_err = |e| match e {
        swp_machine::MachineError::UnknownClass(c) => HeuristicError::UnknownClass(c),
        // Construction-time errors (NoUnits, BadBundle) cannot reach a
        // built Machine; fold them into the generic no-period error.
        _ => HeuristicError::NoFinitePeriod,
    };
    let t_res = if use_automaton {
        // The automaton's ResMII mirrors `Machine::t_res` exactly (same
        // refinement loop over the memoized per-unit capacities).
        let r = swp_automata::res_mii(machine, ddg).map_err(map_err)?;
        debug_assert_eq!(Ok(r), machine.t_res(ddg), "automaton ResMII drifted");
        r
    } else {
        machine.t_res(ddg).map_err(map_err)?
    };
    let mii = t_dep.max(t_res);
    let mut tried = Vec::new();
    let mut evictions = 0u64;
    let mut scratch = ImsScratch::default();
    for ii in mii..=mii + ii_span {
        budget.check()?;
        tried.push(ii);
        if let Some(schedule) = try_ii(
            machine,
            ddg,
            ii,
            budget_ratio,
            &mut evictions,
            budget,
            use_automaton,
            layout,
            max_live,
            &mut scratch,
        )? {
            return Ok(HeuristicResult {
                schedule,
                mii,
                tried,
                evictions,
            });
        }
    }
    Err(HeuristicError::NotFound {
        mii,
        ii_max: mii + ii_span,
    })
}

#[allow(clippy::too_many_arguments)]
fn try_ii(
    machine: &Machine,
    ddg: &Ddg,
    ii: u32,
    budget_ratio: Option<u32>,
    evictions: &mut u64,
    budget: &Budget,
    use_automaton: bool,
    layout: DataLayout,
    max_live: Option<u32>,
    scratch: &mut ImsScratch,
) -> Result<Option<PipelinedSchedule>, Exhaustion> {
    let n = ddg.num_nodes();
    if n == 0 {
        return Ok(Some(PipelinedSchedule::new(ii, Vec::new(), Vec::new())));
    }
    // The modulo constraint and class packing capacity must hold
    // regardless of placement.
    for class in ddg.classes() {
        let Ok(fu) = machine.fu_type(class) else {
            return Ok(None);
        };
        if !fu.reservation.modulo_feasible(ii) {
            return Ok(None);
        }
    }
    match machine.classes_pack(ddg, ii) {
        Ok(true) => {}
        Ok(false) | Err(_) => return Ok(None),
    }
    let ImsScratch {
        heights: h,
        order,
        time,
        unit,
        prev_time,
        pending,
        evict_probe,
        evict_victims,
    } = scratch;
    heights_into(ddg, ii, h);
    order.clear();
    order.extend(0..n);
    order.sort_by_key(|&i| std::cmp::Reverse(h[i]));

    let mut mrt = if use_automaton {
        let automaton = swp_automata::HazardAutomaton::for_machine(machine, ii);
        ModuloReservationTable::with_automaton_layout(machine, ii, automaton, layout)
    } else {
        ModuloReservationTable::with_layout(machine, ii, layout)
    };
    time.clear();
    time.resize(n, None);
    unit.clear();
    unit.resize(n, 0);
    prev_time.clear();
    prev_time.resize(n, None);
    let mut evict_budget: i64 = match budget_ratio {
        Some(r) => (r as i64) * n as i64,
        None => n as i64, // list mode: exactly one placement per op
    };
    // Worklist stack of ops to (re)place; `pop` must yield the highest
    // priority first, so push in ascending-priority order.
    pending.clear();
    pending.extend(order.iter().rev().copied());

    while let Some(i) = pending.pop() {
        // One solve-budget tick per placement bounds backtracking work
        // deterministically; the eviction counter below is the separate
        // per-II heuristic allowance.
        budget.tick()?;
        if evict_budget <= 0 {
            return Ok(None);
        }
        evict_budget -= 1;
        let id = NodeId::from_index(i);
        let node = ddg.node(id);

        // Earliest start from *scheduled* predecessors.
        let mut estart: i64 = 0;
        for e in ddg.edges().filter(|e| e.dst == id) {
            if let Some(tp) = time[e.src.index()] {
                let d = ddg.node(e.src).latency as i64;
                estart = estart.max(tp as i64 + d - ii as i64 * e.distance as i64);
            }
        }
        let estart = estart.max(0) as u32;

        // Scan the II-wide window for a slot with a free unit.
        let mut placed_at: Option<(u32, u32)> = None;
        for dt in 0..ii {
            let t = estart + dt;
            if let Some(fu) = mrt.find_free_unit(machine, node.class, t) {
                placed_at = Some((t, fu));
                break;
            }
        }

        let (t, fu) = match placed_at {
            Some(tf) => tf,
            None => {
                let Some(_) = budget_ratio else {
                    return Ok(None); // list mode: no backtracking
                };
                // Forced placement (Rau): at estart, or one past the last
                // try to guarantee progress; evict whatever is in the way.
                let t = match prev_time[i] {
                    Some(p) if p >= estart => p + 1,
                    _ => estart,
                };
                // Evict resource conflicts on the least-loaded unit
                // (first unit with fewest conflicts).
                let Ok(fu_type) = machine.fu_type(node.class) else {
                    return Ok(None);
                };
                let Some(fu) = (0..fu_type.count).min_by_key(|&fu| {
                    mrt.conflicting_ops_into(machine, node.class, fu, t, evict_probe);
                    evict_probe.len()
                }) else {
                    // A class with zero units can never be placed.
                    return Ok(None);
                };
                mrt.conflicting_ops_into(machine, node.class, fu, t, evict_victims);
                for k in 0..evict_victims.len() {
                    let victim = evict_victims[k];
                    let vid = NodeId::from_index(victim);
                    // Conflicting ops are scheduled by construction; if the
                    // MRT ever disagrees, skip the victim rather than panic.
                    let Some(vt) = time[victim] else { continue };
                    mrt.remove(machine, ddg.node(vid).class, unit[victim], vt, victim);
                    time[victim] = None;
                    pending.push(victim);
                    *evictions += 1;
                }
                (t, fu)
            }
        };

        mrt.place(machine, node.class, fu, t, i);
        time[i] = Some(t);
        unit[i] = fu;
        prev_time[i] = Some(t);

        // Evict scheduled successors whose dependence is now violated.
        for e in ddg.edges().filter(|e| e.src == id && e.dst != id) {
            if let Some(ts) = time[e.dst.index()] {
                let need = t as i64 + node.latency as i64 - ii as i64 * e.distance as i64;
                if (ts as i64) < need {
                    let j = e.dst.index();
                    let jd = NodeId::from_index(j);
                    mrt.remove(machine, ddg.node(jd).class, unit[j], ts, j);
                    time[j] = None;
                    pending.push(j);
                    *evictions += 1;
                }
            }
        }
    }

    // Every op must have been placed once the worklist drained; if the
    // invariant ever breaks, fail the II rather than panic.
    let mut starts: Vec<u32> = Vec::with_capacity(n);
    for t in time.iter() {
        match t {
            Some(t) => starts.push(*t),
            None => return Ok(None),
        }
    }
    let assignment: Vec<Option<u32>> = unit.iter().map(|&u| Some(u)).collect();
    let schedule = PipelinedSchedule::new(ii, starts, assignment);
    // The eviction loop guarantees dependences w.r.t. scheduled ops, but a
    // final audit keeps the heuristic honest (and catches budget races).
    if schedule
        .validate_layout(ddg, machine, None, layout)
        .is_err()
    {
        return Ok(None);
    }
    // Pressure audit: IMS places by resources and dependences only, so
    // a capped run simply discards over-pressure schedules and lets the
    // II sweep (or the exact engines) find a compliant one.
    if let Some(ml) = max_live {
        if schedule.max_live(ddg) > ml {
            return Ok(None);
        }
    }
    Ok(Some(schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;

    fn fp_loop() -> Ddg {
        let mut g = Ddg::new();
        let ld = g.add_node("load", OpClass::new(2), 3);
        let m1 = g.add_node("fmul", OpClass::new(1), 2);
        let a1 = g.add_node("fadd", OpClass::new(1), 2);
        let st = g.add_node("store", OpClass::new(2), 3);
        g.add_edge(ld, m1, 0).unwrap();
        g.add_edge(m1, a1, 0).unwrap();
        g.add_edge(a1, st, 0).unwrap();
        g.add_edge(a1, a1, 1).unwrap();
        g
    }

    #[test]
    fn ims_schedules_and_validates() {
        let machine = Machine::example_pldi95();
        let res = IterativeModuloScheduler::new(machine.clone())
            .schedule(&fp_loop())
            .expect("schedulable");
        assert_eq!(res.mii, 2);
        assert!(res.schedule.validate(&fp_loop(), &machine).is_ok());
        assert!(res.schedule.is_mapped());
    }

    #[test]
    fn list_scheduler_never_beats_ims() {
        let machine = Machine::example_pldi95();
        let g = fp_loop();
        let ims = IterativeModuloScheduler::new(machine.clone())
            .schedule(&g)
            .expect("ims");
        let list = ListModuloScheduler::new(machine)
            .schedule(&g)
            .expect("list");
        assert!(ims.schedule.initiation_interval() <= list.schedule.initiation_interval());
    }

    #[test]
    fn vliw_bundle_machine_schedules_validate() {
        let machine = Machine::example_vliw();
        let g = fp_loop();
        let res = IterativeModuloScheduler::new(machine.clone())
            .schedule(&g)
            .expect("schedulable on bundle machine");
        assert!(res.schedule.validate(&g, &machine).is_ok());
    }

    #[test]
    fn max_live_cap_is_respected_or_refused() {
        let machine = Machine::example_clean();
        let g = fp_loop();
        let uncapped = IterativeModuloScheduler::new(machine.clone())
            .schedule(&g)
            .expect("uncapped");
        let pressure = uncapped.schedule.max_live(&g);
        assert!(pressure > 0);
        // Capping at the observed pressure must still succeed, and the
        // produced schedule must honor the cap.
        let capped = IterativeModuloScheduler::new(machine.clone())
            .with_max_live(Some(pressure))
            .schedule(&g)
            .expect("capped at observed pressure");
        assert!(capped.schedule.max_live(&g) <= pressure);
        assert!(capped.schedule.validate_pressure(&g, pressure).is_ok());
        // An impossible cap (0 with real cross-iteration flow) must make
        // every II fail rather than emit a violating schedule.
        let res = IterativeModuloScheduler::new(machine)
            .with_max_live(Some(0))
            .schedule(&g);
        match res {
            Ok(r) => panic!("cap 0 produced II {}", r.schedule.initiation_interval()),
            Err(e) => assert!(matches!(
                e,
                HeuristicError::NotFound { .. } | HeuristicError::BudgetExhausted
            )),
        }
    }

    #[test]
    fn heights_prefer_long_chains() {
        let g = fp_loop();
        let h = heights(&g, 2);
        // load heads the longest chain, store ends it.
        assert!(h[0] > h[3]);
    }

    #[test]
    fn non_pipelined_machine_handled() {
        let machine = Machine::example_non_pipelined();
        let g = fp_loop();
        let res = IterativeModuloScheduler::new(machine.clone())
            .schedule(&g)
            .expect("schedulable");
        assert!(res.schedule.validate(&g, &machine).is_ok());
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        g.add_edge(b, a, 0).unwrap();
        let err = IterativeModuloScheduler::new(Machine::example_pldi95())
            .schedule(&g)
            .unwrap_err();
        assert_eq!(err, HeuristicError::NoFinitePeriod);
    }

    #[test]
    fn empty_ddg_trivially_scheduled() {
        let g = Ddg::new();
        let res = IterativeModuloScheduler::new(Machine::example_pldi95())
            .schedule(&g)
            .expect("empty ok");
        assert_eq!(res.schedule.num_ops(), 0);
    }

    #[test]
    fn automaton_probing_yields_identical_schedules() {
        // The automaton accelerates probes but must not change a single
        // decision: both runs produce the same schedule, tried list and
        // eviction count, on clean, hazard and non-pipelined machines.
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            let g = fp_loop();
            let plain = IterativeModuloScheduler::new(machine.clone())
                .schedule(&g)
                .expect("plain");
            let fast = IterativeModuloScheduler::new(machine.clone())
                .with_automaton(true)
                .schedule(&g)
                .expect("automaton");
            assert_eq!(plain.schedule, fast.schedule);
            assert_eq!(plain.mii, fast.mii);
            assert_eq!(plain.tried, fast.tried);
            assert_eq!(plain.evictions, fast.evictions);

            let plain_list = ListModuloScheduler::new(machine.clone())
                .schedule(&g)
                .expect("plain list");
            let fast_list = ListModuloScheduler::new(machine)
                .with_automaton(true)
                .schedule(&g)
                .expect("automaton list");
            assert_eq!(plain_list.schedule, fast_list.schedule);
        }
    }

    #[test]
    fn layout_choice_yields_identical_schedules() {
        // Flat and Legacy MRT layouts must agree on every decision: same
        // schedule, same tried list, same eviction count, for both the
        // backtracking and the list scheduler, on all example machines.
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            let g = fp_loop();
            let legacy = IterativeModuloScheduler::new(machine.clone())
                .with_layout(DataLayout::Legacy)
                .schedule(&g)
                .expect("legacy");
            let flat = IterativeModuloScheduler::new(machine.clone())
                .with_layout(DataLayout::Flat)
                .schedule(&g)
                .expect("flat");
            assert_eq!(legacy.schedule, flat.schedule);
            assert_eq!(legacy.mii, flat.mii);
            assert_eq!(legacy.tried, flat.tried);
            assert_eq!(legacy.evictions, flat.evictions);

            // A starved eviction budget forces the backtracking path so
            // both layouts exercise forced placement, not just probing.
            let legacy_tight = IterativeModuloScheduler::new(machine.clone())
                .with_budget_ratio(1)
                .with_layout(DataLayout::Legacy)
                .schedule(&g)
                .expect("legacy tight");
            let flat_tight = IterativeModuloScheduler::new(machine.clone())
                .with_budget_ratio(1)
                .with_layout(DataLayout::Flat)
                .schedule(&g)
                .expect("flat tight");
            assert_eq!(legacy_tight.schedule, flat_tight.schedule);
            assert_eq!(legacy_tight.tried, flat_tight.tried);
            assert_eq!(legacy_tight.evictions, flat_tight.evictions);

            let legacy_list = ListModuloScheduler::new(machine.clone())
                .with_layout(DataLayout::Legacy)
                .schedule(&g)
                .expect("legacy list");
            let flat_list = ListModuloScheduler::new(machine)
                .with_layout(DataLayout::Flat)
                .schedule(&g)
                .expect("flat list");
            assert_eq!(legacy_list.schedule, flat_list.schedule);
            assert_eq!(legacy_list.tried, flat_list.tried);
        }
    }

    #[test]
    fn tight_budget_fails_gracefully_to_higher_ii() {
        let machine = Machine::example_non_pipelined();
        let g = fp_loop();
        // Budget 1 means almost no rescheduling; IMS should still find a
        // schedule at some (possibly larger) II.
        let res = IterativeModuloScheduler::new(machine.clone())
            .with_budget_ratio(1)
            .schedule(&g)
            .expect("eventually schedulable");
        assert!(res.schedule.validate(&g, &machine).is_ok());
    }
}
