//! The modulo reservation table (MRT) with per-unit stage tracking.
//!
//! Classic modulo scheduling keeps one row per resource and time step
//! mod `II` [16, 20]. Because this workspace targets machines with
//! structural hazards, the MRT here tracks *every stage of every
//! physical unit*: placing an operation claims the `(stage, residue)`
//! cells of one concrete unit, which is exactly the fixed FU assignment
//! the paper's ILP computes via coloring — done greedily here.
//!
//! Two cell layouts back the table, selected by [`DataLayout`]:
//!
//! * **Legacy** — the original `cells[class][fu][stage][residue]`
//!   nested-`Vec` nest, probed cell by cell;
//! * **Flat** (default) — one stride-indexed owner arena per class plus
//!   per-unit u64 occupancy words: a slot probe is one AND per word
//!   against the class's precomputed claimed-cell mask for the issue
//!   residue, instead of a stage×offset scan.
//!
//! Both layouts make identical decisions — same probe answers, same
//! eviction sets in the same order, same double-claim panics — which
//! the equivalence tests and proptests enforce.

use std::sync::Arc;
use swp_automata::{stats, HazardAutomaton, HazardFsa, StateId};
use swp_ddg::OpClass;
use swp_machine::{DataLayout, Machine, ReservationTable};

/// Occupancy of all units of all classes over one period.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    period: u32,
    cells: MrtCells,
    /// Optional hazard-automaton acceleration, shadowing the cells.
    fast: Option<FastState>,
    /// Issue-bundle counters, present when the machine declares bundle
    /// limits.
    bundle: Option<BundleState>,
}

/// Per-residue issue counters for a machine with VLIW bundle limits:
/// the steady state issues the ops of residue `r` together each cycle,
/// so per-cycle width/slot caps are per-residue counts here. The cells
/// cannot answer "who issued at `r`" (wrapping stages smear claims), so
/// an explicit ledger backs the eviction sets.
#[derive(Debug, Clone)]
struct BundleState {
    width: u32,
    /// Slot-group caps, indexed by group.
    caps: Vec<u32>,
    /// Groups each machine class belongs to.
    groups_of: Vec<Vec<usize>>,
    /// Issues per residue.
    total: Vec<u32>,
    /// Issues per `(group, residue)`, flattened `g * period + r`.
    group_counts: Vec<u32>,
    /// `(op, class index)` issued at each residue, in placement order —
    /// kept in order so eviction lists are layout-independent.
    issued: Vec<Vec<(usize, usize)>>,
}

impl BundleState {
    fn new(machine: &Machine, period: u32) -> Option<Self> {
        let b = machine.bundle()?;
        let mut groups_of = vec![Vec::new(); machine.num_classes()];
        for (g, group) in b.groups.iter().enumerate() {
            for &c in &group.classes {
                groups_of[c].push(g);
            }
        }
        Some(BundleState {
            width: b.width,
            caps: b.groups.iter().map(|g| g.cap).collect(),
            groups_of,
            total: vec![0; period as usize],
            group_counts: vec![0; b.groups.len() * period as usize],
            issued: vec![Vec::new(); period as usize],
        })
    }

    /// Whether one more issue of `class` fits at residue `r`.
    fn has_headroom(&self, class: OpClass, r: usize, period: u32) -> bool {
        self.total[r] < self.width
            && self.groups_of[class.index()]
                .iter()
                .all(|&g| self.group_counts[g * period as usize + r] < self.caps[g])
    }
}

/// The cell store behind the MRT, one variant per [`DataLayout`].
#[derive(Debug, Clone)]
enum MrtCells {
    /// `cells[class][fu][stage][residue]` = occupying op index, or `NONE`.
    Legacy(Vec<Vec<Vec<Vec<usize>>>>),
    Flat(FlatCells),
}

/// Flat per-class arenas: owners keyed `fu * cells_per_unit + cell`
/// where `cell = stage * period + residue`, with per-unit occupancy
/// words for word-parallel probes.
#[derive(Debug, Clone)]
struct FlatCells {
    classes: Vec<ClassArena>,
}

#[derive(Debug, Clone)]
struct ClassArena {
    /// Per issue residue: claimed-cell mask (`cell_mask_words` words).
    masks: Vec<Vec<u64>>,
    /// Per issue residue: claimed cells in legacy scan order
    /// (stage-major, marked offsets ascending).
    lists: Vec<Vec<usize>>,
    /// u64 words per unit occupancy run.
    words: usize,
    /// `stages * period` cells per unit.
    cells_per_unit: usize,
    /// Occupancy words, `count * words` long.
    occ: Vec<u64>,
    /// Owning op per cell, `count * cells_per_unit` long.
    owner: Vec<usize>,
}

impl ClassArena {
    fn new(rt: &ReservationTable, count: u32, period: u32) -> Self {
        let words = rt.cell_mask_words(period);
        let cells_per_unit = rt.stages() * period as usize;
        ClassArena {
            masks: rt.modulo_cell_masks(period),
            lists: rt.modulo_cell_lists(period),
            words,
            cells_per_unit,
            occ: vec![0u64; count as usize * words],
            owner: vec![NONE; count as usize * cells_per_unit],
        }
    }

    fn unit_occ(&self, fu: u32) -> &[u64] {
        &self.occ[fu as usize * self.words..(fu as usize + 1) * self.words]
    }

    fn unit_owner(&self, fu: u32) -> &[usize] {
        let c = self.cells_per_unit;
        &self.owner[fu as usize * c..(fu as usize + 1) * c]
    }
}

/// The automaton-side mirror of the MRT: one FSA state (or residue list)
/// per physical unit. The cell store stays authoritative — it still
/// answers *which op* occupies a cell (for eviction) — while slot
/// probing goes through the automaton.
#[derive(Debug, Clone)]
struct FastState {
    automaton: Arc<HazardAutomaton>,
    /// `units[class][fu]`.
    units: Vec<Vec<UnitFast>>,
}

#[derive(Debug, Clone)]
struct UnitFast {
    /// Interned FSA state — meaningful while the class FSA is complete.
    state: StateId,
    /// Issue residues currently on this unit, for two purposes: replaying
    /// the FSA state after a removal (OR-states are order-independent),
    /// and the pairwise collision-matrix probe when the FSA hit its
    /// state cap.
    residues: Vec<u32>,
}

const NONE: usize = usize::MAX;

impl ModuloReservationTable {
    /// An empty MRT for `machine` at the given period, in the default
    /// (flat) layout.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(machine: &Machine, period: u32) -> Self {
        Self::with_layout(machine, period, DataLayout::default())
    }

    /// An empty MRT in an explicit [`DataLayout`].
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_layout(machine: &Machine, period: u32, layout: DataLayout) -> Self {
        assert!(period > 0, "period must be positive");
        let cells = match layout {
            DataLayout::Legacy => MrtCells::Legacy(
                machine
                    .types()
                    .iter()
                    .map(|t| {
                        vec![
                            vec![vec![NONE; period as usize]; t.reservation.stages()];
                            t.count as usize
                        ]
                    })
                    .collect(),
            ),
            DataLayout::Flat => MrtCells::Flat(FlatCells {
                classes: machine
                    .types()
                    .iter()
                    .map(|t| ClassArena::new(&t.reservation, t.count, period))
                    .collect(),
            }),
        };
        ModuloReservationTable {
            period,
            cells,
            fast: None,
            bundle: BundleState::new(machine, period),
        }
    }

    /// An empty MRT accelerated by a precompiled [`HazardAutomaton`]:
    /// slot probes become one FSA bit test per unit instead of a
    /// stage×offset cell scan. Decisions are bit-identical to the plain
    /// MRT (the forbidden-residue mask of a unit equals "some needed
    /// cell is taken" — debug-asserted on every probe), so schedules do
    /// not change, only the time to find them. An automaton compiled
    /// for a different period is ignored.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_automaton(machine: &Machine, period: u32, automaton: Arc<HazardAutomaton>) -> Self {
        Self::with_automaton_layout(machine, period, automaton, DataLayout::default())
    }

    /// [`ModuloReservationTable::with_automaton`] in an explicit
    /// [`DataLayout`] for the authoritative cell store.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_automaton_layout(
        machine: &Machine,
        period: u32,
        automaton: Arc<HazardAutomaton>,
        layout: DataLayout,
    ) -> Self {
        let mut mrt = Self::with_layout(machine, period, layout);
        debug_assert_eq!(
            automaton.period(),
            period,
            "automaton compiled for a different period"
        );
        if automaton.period() == period {
            let units = machine
                .types()
                .iter()
                .map(|t| {
                    vec![
                        UnitFast {
                            state: HazardFsa::START,
                            residues: Vec::new(),
                        };
                        t.count as usize
                    ]
                })
                .collect();
            mrt.fast = Some(FastState { automaton, units });
        }
        mrt
    }

    /// The period this table wraps at.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Whether probes go through a hazard automaton.
    pub fn uses_automaton(&self) -> bool {
        self.fast.is_some()
    }

    /// The cell layout backing this table.
    pub fn layout(&self) -> DataLayout {
        match self.cells {
            MrtCells::Legacy(_) => DataLayout::Legacy,
            MrtCells::Flat(_) => DataLayout::Flat,
        }
    }

    /// Finds a unit of `class` whose cells are all free for an operation
    /// issued at `time` (first fit). Returns the unit index.
    pub fn find_free_unit(&self, machine: &Machine, class: OpClass, time: u32) -> Option<u32> {
        let fu_type = machine.fu_type(class).ok()?;
        if let Some(b) = &self.bundle {
            // Bundle limits are unit-independent: a full residue rejects
            // every unit at once.
            if !b.has_headroom(class, (time % self.period) as usize, self.period) {
                return None;
            }
        }
        let rt = &fu_type.reservation;
        let Some(fast) = &self.fast else {
            return (0..fu_type.count).find(|&fu| self.cells_free(rt, class, fu, time));
        };
        let r = time % self.period;
        (0..fu_type.count).find(|&fu| match self.unit_free_fast(fast, class, fu, r) {
            Some(free) => {
                // The fast path refuses self-colliding classes outright
                // (the cell scan would accept and then double-claim);
                // everywhere else the two predicates must agree.
                debug_assert!(
                    fast.automaton
                        .fsa(class)
                        .is_some_and(HazardFsa::self_collides)
                        || free == self.cells_free(rt, class, fu, time),
                    "automaton probe disagrees with cell scan"
                );
                free
            }
            None => self.cells_free(rt, class, fu, time),
        })
    }

    /// The layout-dispatched probe: every cell the reservation table
    /// needs is free. One AND per occupancy word in the flat layout; a
    /// per-cell scan in the legacy one. Identical answers.
    fn cells_free(&self, rt: &ReservationTable, class: OpClass, fu: u32, time: u32) -> bool {
        match &self.cells {
            MrtCells::Legacy(cells) => (0..rt.stages()).all(|s| {
                rt.stage_offset_iter(s).all(|l| {
                    let r = ((time + l as u32) % self.period) as usize;
                    cells[class.index()][fu as usize][s][r] == NONE
                })
            }),
            MrtCells::Flat(flat) => {
                let arena = &flat.classes[class.index()];
                let mask = &arena.masks[(time % self.period) as usize];
                mask.iter().zip(arena.unit_occ(fu)).all(|(m, o)| m & o == 0)
            }
        }
    }

    /// The automaton probe: residue `r` is not forbidden on this unit.
    /// `None` when the automaton does not know the class (caller falls
    /// back to the cell scan).
    fn unit_free_fast(&self, fast: &FastState, class: OpClass, fu: u32, r: u32) -> Option<bool> {
        let fsa = fast.automaton.fsa(class)?;
        if fsa.self_collides() {
            return Some(false);
        }
        let unit = fast.units.get(class.index())?.get(fu as usize)?;
        if fsa.is_complete() {
            stats::count_fsa_queries(1);
            Some(fsa.can_issue(unit.state, r))
        } else {
            // State-capped FSA: probe pairwise through the collision
            // matrix (still allocation-free, one bit test per placed op).
            stats::count_matrix_queries(unit.residues.len() as u64);
            let matrix = fast.automaton.matrix();
            Some(unit.residues.iter().all(|&q| {
                matrix.collides(class, class, (r + self.period - q) % self.period) == Some(false)
            }))
        }
    }

    /// Claims the cells of `op` (an arbitrary caller-chosen tag) issued
    /// at `time` on `fu`.
    ///
    /// # Panics
    ///
    /// Panics if any needed cell is already occupied (callers must use
    /// [`ModuloReservationTable::find_free_unit`] first).
    pub fn place(&mut self, machine: &Machine, class: OpClass, fu: u32, time: u32, op: usize) {
        let rt = &machine.fu_type(class).expect("known class").reservation;
        let period = self.period;
        match &mut self.cells {
            MrtCells::Legacy(cells) => {
                for s in 0..rt.stages() {
                    for l in rt.stage_offset_iter(s) {
                        let r = ((time + l as u32) % period) as usize;
                        let cell = &mut cells[class.index()][fu as usize][s][r];
                        assert_eq!(*cell, NONE, "cell already occupied");
                        *cell = op;
                    }
                }
            }
            MrtCells::Flat(flat) => {
                let arena = &mut flat.classes[class.index()];
                let residue = (time % period) as usize;
                let base = fu as usize * arena.cells_per_unit;
                for &cell in &arena.lists[residue] {
                    let cell = &mut arena.owner[base + cell];
                    assert_eq!(*cell, NONE, "cell already occupied");
                    *cell = op;
                }
                let wbase = fu as usize * arena.words;
                for (w, m) in arena.masks[residue].iter().enumerate() {
                    arena.occ[wbase + w] |= m;
                }
            }
        }
        if let Some(fast) = &mut self.fast {
            let r = time % period;
            if let Some(fsa) = fast.automaton.fsa(class) {
                let unit = &mut fast.units[class.index()][fu as usize];
                unit.residues.push(r);
                if fsa.is_complete() {
                    unit.state = fsa.issue(unit.state, r);
                }
            }
        }
        if let Some(b) = &mut self.bundle {
            let r = (time % period) as usize;
            debug_assert!(
                b.has_headroom(class, r, period),
                "bundle overflow: callers must probe or evict first"
            );
            b.total[r] += 1;
            for &g in &b.groups_of[class.index()] {
                b.group_counts[g * period as usize + r] += 1;
            }
            b.issued[r].push((op, class.index()));
        }
    }

    /// Releases the cells of `op` issued at `time` on `fu`.
    pub fn remove(&mut self, machine: &Machine, class: OpClass, fu: u32, time: u32, op: usize) {
        let rt = &machine.fu_type(class).expect("known class").reservation;
        let period = self.period;
        match &mut self.cells {
            MrtCells::Legacy(cells) => {
                for s in 0..rt.stages() {
                    for l in rt.stage_offset_iter(s) {
                        let r = ((time + l as u32) % period) as usize;
                        let cell = &mut cells[class.index()][fu as usize][s][r];
                        debug_assert_eq!(*cell, op, "removing someone else's reservation");
                        *cell = NONE;
                    }
                }
            }
            MrtCells::Flat(flat) => {
                let arena = &mut flat.classes[class.index()];
                let residue = (time % period) as usize;
                let base = fu as usize * arena.cells_per_unit;
                for &cell in &arena.lists[residue] {
                    let cell = &mut arena.owner[base + cell];
                    debug_assert_eq!(*cell, op, "removing someone else's reservation");
                    *cell = NONE;
                }
                // Every bit of the mask was exclusively this op's (place
                // asserts cell exclusivity), so AND-NOT releases exactly
                // its cells.
                let wbase = fu as usize * arena.words;
                for (w, m) in arena.masks[residue].iter().enumerate() {
                    arena.occ[wbase + w] &= !m;
                }
            }
        }
        if let Some(fast) = &mut self.fast {
            let r = time % period;
            if let Some(fsa) = fast.automaton.fsa(class) {
                let unit = &mut fast.units[class.index()][fu as usize];
                if let Some(pos) = unit.residues.iter().position(|&q| q == r) {
                    unit.residues.swap_remove(pos);
                }
                if fsa.is_complete() {
                    // OR-ed masks are order-independent, so replaying the
                    // surviving residues from the start state lands on
                    // exactly the mask of the remaining occupancy.
                    unit.state = unit
                        .residues
                        .iter()
                        .fold(HazardFsa::START, |s, &q| fsa.issue(s, q));
                }
            }
        }
        if let Some(b) = &mut self.bundle {
            let r = (time % period) as usize;
            b.total[r] -= 1;
            for &g in &b.groups_of[class.index()] {
                b.group_counts[g * period as usize + r] -= 1;
            }
            // Ordered removal keeps the ledger in placement order, so
            // later eviction lists stay deterministic.
            if let Some(pos) = b.issued[r].iter().position(|&(o, _)| o == op) {
                b.issued[r].remove(pos);
            }
        }
    }

    /// Ops occupying any cell that an operation of `class` issued at
    /// `time` on `fu` would need — the eviction set for a forced
    /// placement.
    pub fn conflicting_ops(
        &self,
        machine: &Machine,
        class: OpClass,
        fu: u32,
        time: u32,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.conflicting_ops_into(machine, class, fu, time, &mut out);
        out
    }

    /// [`ModuloReservationTable::conflicting_ops`] into a caller-owned
    /// scratch vector (cleared first), so hot eviction loops allocate
    /// nothing. Owners appear in first-claimed-cell scan order, each
    /// distinct op once — both layouts produce the identical sequence,
    /// which matters because the IMS picks eviction victims by the
    /// *distinct-owner count* of this list.
    pub fn conflicting_ops_into(
        &self,
        machine: &Machine,
        class: OpClass,
        fu: u32,
        time: u32,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let rt = &machine.fu_type(class).expect("known class").reservation;
        match &self.cells {
            MrtCells::Legacy(cells) => {
                for s in 0..rt.stages() {
                    for l in rt.stage_offset_iter(s) {
                        let r = ((time + l as u32) % self.period) as usize;
                        let cell = cells[class.index()][fu as usize][s][r];
                        if cell != NONE && !out.contains(&cell) {
                            out.push(cell);
                        }
                    }
                }
            }
            MrtCells::Flat(flat) => {
                let arena = &flat.classes[class.index()];
                let owner = arena.unit_owner(fu);
                for &cell in &arena.lists[(time % self.period) as usize] {
                    let op = owner[cell];
                    if op != NONE && !out.contains(&op) {
                        out.push(op);
                    }
                }
            }
        }
        if let Some(b) = &self.bundle {
            // Bundle evictees, appended after the cell conflicts in
            // ledger (placement) order. A full residue frees the whole
            // cycle; a full slot group frees only its members.
            let r = (time % self.period) as usize;
            if b.total[r] >= b.width {
                for &(op, _) in &b.issued[r] {
                    if !out.contains(&op) {
                        out.push(op);
                    }
                }
            } else {
                for &g in &b.groups_of[class.index()] {
                    if b.group_counts[g * self.period as usize + r] >= b.caps[g] {
                        for &(op, c) in &b.issued[r] {
                            if b.groups_of[c].contains(&g) && !out.contains(&op) {
                                out.push(op);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_automata::HazardAutomaton;
    use swp_machine::Machine;

    const FP: OpClass = OpClass::new(1);

    #[test]
    fn place_find_remove_roundtrip() {
        let m = Machine::example_pldi95();
        for layout in [DataLayout::Legacy, DataLayout::Flat] {
            let mut mrt = ModuloReservationTable::with_layout(&m, 4, layout);
            assert_eq!(mrt.layout(), layout);
            let fu = mrt.find_free_unit(&m, FP, 0).expect("free");
            mrt.place(&m, FP, fu, 0, 7);
            // Offset 1 collides on stage 3 with offset 0 on the same unit...
            let fu2 = mrt.find_free_unit(&m, FP, 1).expect("second unit free");
            assert_ne!(fu, fu2);
            mrt.remove(&m, FP, fu, 0, 7);
            assert_eq!(mrt.find_free_unit(&m, FP, 1), Some(0));
        }
    }

    #[test]
    fn exhausted_units_return_none() {
        let m = Machine::example_pldi95();
        for layout in [DataLayout::Legacy, DataLayout::Flat] {
            let mut mrt = ModuloReservationTable::with_layout(&m, 4, layout);
            mrt.place(&m, FP, 0, 0, 1);
            mrt.place(&m, FP, 1, 0, 2);
            // Offset 1 overlaps offset 0 on stage 3 for both units.
            assert_eq!(mrt.find_free_unit(&m, FP, 1), None);
            // Offset 2 does not overlap offset 0.
            assert!(mrt.find_free_unit(&m, FP, 2).is_some());
        }
    }

    #[test]
    fn conflicting_ops_lists_evictees() {
        let m = Machine::example_pldi95();
        for layout in [DataLayout::Legacy, DataLayout::Flat] {
            let mut mrt = ModuloReservationTable::with_layout(&m, 4, layout);
            mrt.place(&m, FP, 0, 0, 1);
            assert_eq!(mrt.conflicting_ops(&m, FP, 0, 1), vec![1]);
            assert!(mrt.conflicting_ops(&m, FP, 0, 2).is_empty());
        }
    }

    #[test]
    fn wrapping_claims_respected() {
        let m = Machine::example_non_pipelined();
        for layout in [DataLayout::Legacy, DataLayout::Flat] {
            let mut mrt = ModuloReservationTable::with_layout(&m, 4, layout);
            // lat-2 non-pipelined at offset 3 wraps into residues {3, 0}.
            mrt.place(&m, FP, 0, 3, 9);
            assert_eq!(mrt.conflicting_ops(&m, FP, 0, 0), vec![9]);
        }
    }

    /// Replays a probe/place/remove trace on a legacy-layout MRT and a
    /// flat one; every probe and every eviction list must answer
    /// identically.
    #[test]
    fn flat_mrt_matches_legacy_mrt_decisions() {
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for period in 2u32..=9 {
                let mut legacy =
                    ModuloReservationTable::with_layout(&machine, period, DataLayout::Legacy);
                let mut flat =
                    ModuloReservationTable::with_layout(&machine, period, DataLayout::Flat);
                let mut placed: Vec<(OpClass, u32, u32, usize)> = Vec::new();
                let mut op = 0usize;
                for round in 0..3u32 {
                    for c in 0..machine.num_classes() {
                        let class = OpClass::new(c);
                        if !machine.types()[c].reservation.modulo_feasible(period) {
                            continue;
                        }
                        for time in 0..period + 2 {
                            let a = legacy.find_free_unit(&machine, class, time);
                            let b = flat.find_free_unit(&machine, class, time);
                            assert_eq!(a, b, "T={period} class={c} t={time}");
                            let count = machine.types()[c].count;
                            for fu in 0..count {
                                assert_eq!(
                                    legacy.conflicting_ops(&machine, class, fu, time),
                                    flat.conflicting_ops(&machine, class, fu, time),
                                    "eviction list T={period} class={c} fu={fu} t={time}"
                                );
                            }
                            if let (Some(fu), true) = (a, round != 1) {
                                legacy.place(&machine, class, fu, time, op);
                                flat.place(&machine, class, fu, time, op);
                                placed.push((class, fu, time, op));
                                op += 1;
                            }
                        }
                    }
                    let mut keep = Vec::new();
                    for (k, &(class, fu, time, op)) in placed.iter().enumerate() {
                        if k % 2 == 0 {
                            legacy.remove(&machine, class, fu, time, op);
                            flat.remove(&machine, class, fu, time, op);
                        } else {
                            keep.push((class, fu, time, op));
                        }
                    }
                    placed = keep;
                }
            }
        }
    }

    /// Replays a probe/place/remove trace on a plain MRT and an
    /// automaton-backed one; every probe must answer identically.
    #[test]
    fn automaton_mrt_matches_plain_mrt_decisions() {
        for machine in [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ] {
            for period in 2u32..=9 {
                let automaton = HazardAutomaton::for_machine(&machine, period);
                let mut plain = ModuloReservationTable::new(&machine, period);
                let mut fast = ModuloReservationTable::with_automaton(&machine, period, automaton);
                assert!(fast.uses_automaton());
                let mut placed: Vec<(OpClass, u32, u32, usize)> = Vec::new();
                let mut op = 0usize;
                for round in 0..3u32 {
                    for c in 0..machine.num_classes() {
                        let class = OpClass::new(c);
                        if !machine.types()[c].reservation.modulo_feasible(period) {
                            continue;
                        }
                        for time in 0..period + 2 {
                            let a = plain.find_free_unit(&machine, class, time);
                            let b = fast.find_free_unit(&machine, class, time);
                            assert_eq!(a, b, "T={period} class={c} t={time}");
                            if let (Some(fu), true) = (a, round != 1) {
                                plain.place(&machine, class, fu, time, op);
                                fast.place(&machine, class, fu, time, op);
                                placed.push((class, fu, time, op));
                                op += 1;
                            }
                        }
                    }
                    // Free every other op and keep probing: exercises the
                    // replay-on-remove path of the FSA mirror.
                    let mut keep = Vec::new();
                    for (k, &(class, fu, time, op)) in placed.iter().enumerate() {
                        if k % 2 == 0 {
                            plain.remove(&machine, class, fu, time, op);
                            fast.remove(&machine, class, fu, time, op);
                        } else {
                            keep.push((class, fu, time, op));
                        }
                    }
                    placed = keep;
                }
            }
        }
    }

    #[test]
    fn automaton_probe_counts_telemetry() {
        // Hold the process-wide telemetry reset guard instead of doing
        // snapshot/delta arithmetic by hand (swp-automata satellite).
        let _guard = swp_automata::stats::reset_for_test();
        let machine = Machine::example_pldi95();
        let automaton = HazardAutomaton::for_machine(&machine, 4);
        let mrt = ModuloReservationTable::with_automaton(&machine, 4, automaton);
        let _ = mrt.find_free_unit(&machine, FP, 0);
        let after = swp_automata::stats::snapshot();
        assert!(after.fsa_queries + after.matrix_queries >= 1);
    }

    #[test]
    fn bundle_width_gates_probes_and_lists_evictees() {
        // example_vliw: width 2, "mem" slot (class 2) capped at 1.
        let m = Machine::example_vliw();
        let int = OpClass::new(0);
        let mem = OpClass::new(2);
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, int, 0, 0, 1);
        mrt.place(&m, mem, 0, 0, 2);
        // Residue 0 is issue-full: every class is refused there...
        assert_eq!(mrt.find_free_unit(&m, int, 0), None);
        assert_eq!(
            mrt.find_free_unit(&m, int, 4),
            None,
            "t=4 wraps to residue 0"
        );
        // ...but residue 1 still has room.
        assert!(mrt.find_free_unit(&m, int, 1).is_some());
        // A forced placement at residue 0 must evict the whole cycle.
        let evict = mrt.conflicting_ops(&m, int, 0, 4);
        assert!(
            evict.contains(&1) && evict.contains(&2),
            "evictees: {evict:?}"
        );
    }

    #[test]
    fn slot_group_cap_gates_probes_per_class() {
        let m = Machine::example_vliw();
        let int = OpClass::new(0);
        let mem = OpClass::new(2);
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, mem, 0, 1, 5);
        // The mem slot at residue 1 is taken: more mem is refused, but
        // the bundle still has width for an int op.
        assert_eq!(mrt.find_free_unit(&m, mem, 1), None);
        assert!(mrt.find_free_unit(&m, int, 1).is_some());
        assert!(mrt.conflicting_ops(&m, mem, 0, 1).contains(&5));
        mrt.remove(&m, mem, 0, 1, 5);
        assert!(mrt.find_free_unit(&m, mem, 1).is_some());
    }

    #[test]
    #[should_panic(expected = "cell already occupied")]
    fn double_placement_panics() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, FP, 0, 0, 1);
        mrt.place(&m, FP, 0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "cell already occupied")]
    fn double_placement_panics_legacy() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::with_layout(&m, 4, DataLayout::Legacy);
        mrt.place(&m, FP, 0, 0, 1);
        mrt.place(&m, FP, 0, 1, 2);
    }

    #[test]
    fn conflicting_ops_into_reuses_scratch() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, FP, 0, 0, 1);
        let mut scratch = vec![99, 98, 97];
        mrt.conflicting_ops_into(&m, FP, 0, 1, &mut scratch);
        assert_eq!(scratch, vec![1]);
        mrt.conflicting_ops_into(&m, FP, 0, 2, &mut scratch);
        assert!(scratch.is_empty());
    }
}
