//! The modulo reservation table (MRT) with per-unit stage tracking.
//!
//! Classic modulo scheduling keeps one row per resource and time step
//! mod `II` [16, 20]. Because this workspace targets machines with
//! structural hazards, the MRT here tracks *every stage of every
//! physical unit*: placing an operation claims the `(stage, residue)`
//! cells of one concrete unit, which is exactly the fixed FU assignment
//! the paper's ILP computes via coloring — done greedily here.

use swp_ddg::OpClass;
use swp_machine::Machine;

/// Occupancy of all units of all classes over one period.
#[derive(Debug, Clone)]
pub struct ModuloReservationTable {
    period: u32,
    /// `cells[class][fu][stage][residue]` = occupying op index, or `NONE`.
    cells: Vec<Vec<Vec<Vec<usize>>>>,
}

const NONE: usize = usize::MAX;

impl ModuloReservationTable {
    /// An empty MRT for `machine` at the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(machine: &Machine, period: u32) -> Self {
        assert!(period > 0, "period must be positive");
        let cells = machine
            .types()
            .iter()
            .map(|t| {
                vec![vec![vec![NONE; period as usize]; t.reservation.stages()]; t.count as usize]
            })
            .collect();
        ModuloReservationTable { period, cells }
    }

    /// The period this table wraps at.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Finds a unit of `class` whose cells are all free for an operation
    /// issued at `time` (first fit). Returns the unit index.
    pub fn find_free_unit(&self, machine: &Machine, class: OpClass, time: u32) -> Option<u32> {
        let fu_type = machine.fu_type(class).ok()?;
        let rt = &fu_type.reservation;
        (0..fu_type.count).find(|&fu| {
            (0..rt.stages()).all(|s| {
                rt.stage_offsets(s).iter().all(|&l| {
                    let r = ((time + l as u32) % self.period) as usize;
                    self.cells[class.index()][fu as usize][s][r] == NONE
                })
            })
        })
    }

    /// Claims the cells of `op` (an arbitrary caller-chosen tag) issued
    /// at `time` on `fu`.
    ///
    /// # Panics
    ///
    /// Panics if any needed cell is already occupied (callers must use
    /// [`ModuloReservationTable::find_free_unit`] first).
    pub fn place(&mut self, machine: &Machine, class: OpClass, fu: u32, time: u32, op: usize) {
        let rt = &machine.fu_type(class).expect("known class").reservation;
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let r = ((time + l as u32) % self.period) as usize;
                let cell = &mut self.cells[class.index()][fu as usize][s][r];
                assert_eq!(*cell, NONE, "cell already occupied");
                *cell = op;
            }
        }
    }

    /// Releases the cells of `op` issued at `time` on `fu`.
    pub fn remove(&mut self, machine: &Machine, class: OpClass, fu: u32, time: u32, op: usize) {
        let rt = &machine.fu_type(class).expect("known class").reservation;
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let r = ((time + l as u32) % self.period) as usize;
                let cell = &mut self.cells[class.index()][fu as usize][s][r];
                debug_assert_eq!(*cell, op, "removing someone else's reservation");
                *cell = NONE;
            }
        }
    }

    /// Ops occupying any cell that an operation of `class` issued at
    /// `time` on `fu` would need — the eviction set for a forced
    /// placement.
    pub fn conflicting_ops(
        &self,
        machine: &Machine,
        class: OpClass,
        fu: u32,
        time: u32,
    ) -> Vec<usize> {
        let rt = &machine.fu_type(class).expect("known class").reservation;
        let mut out = Vec::new();
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let r = ((time + l as u32) % self.period) as usize;
                let cell = self.cells[class.index()][fu as usize][s][r];
                if cell != NONE && !out.contains(&cell) {
                    out.push(cell);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_machine::Machine;

    const FP: OpClass = OpClass::new(1);

    #[test]
    fn place_find_remove_roundtrip() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        let fu = mrt.find_free_unit(&m, FP, 0).expect("free");
        mrt.place(&m, FP, fu, 0, 7);
        // Offset 1 collides on stage 3 with offset 0 on the same unit...
        let fu2 = mrt.find_free_unit(&m, FP, 1).expect("second unit free");
        assert_ne!(fu, fu2);
        mrt.remove(&m, FP, fu, 0, 7);
        assert_eq!(mrt.find_free_unit(&m, FP, 1), Some(0));
    }

    #[test]
    fn exhausted_units_return_none() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, FP, 0, 0, 1);
        mrt.place(&m, FP, 1, 0, 2);
        // Offset 1 overlaps offset 0 on stage 3 for both units.
        assert_eq!(mrt.find_free_unit(&m, FP, 1), None);
        // Offset 2 does not overlap offset 0.
        assert!(mrt.find_free_unit(&m, FP, 2).is_some());
    }

    #[test]
    fn conflicting_ops_lists_evictees() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, FP, 0, 0, 1);
        assert_eq!(mrt.conflicting_ops(&m, FP, 0, 1), vec![1]);
        assert!(mrt.conflicting_ops(&m, FP, 0, 2).is_empty());
    }

    #[test]
    fn wrapping_claims_respected() {
        let m = Machine::example_non_pipelined();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        // lat-2 non-pipelined at offset 3 wraps into residues {3, 0}.
        mrt.place(&m, FP, 0, 3, 9);
        assert_eq!(mrt.conflicting_ops(&m, FP, 0, 0), vec![9]);
    }

    #[test]
    #[should_panic(expected = "cell already occupied")]
    fn double_placement_panics() {
        let m = Machine::example_pldi95();
        let mut mrt = ModuloReservationTable::new(&m, 4);
        mrt.place(&m, FP, 0, 0, 1);
        mrt.place(&m, FP, 0, 1, 2);
    }
}
