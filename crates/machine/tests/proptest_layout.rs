//! Layout-equivalence property tests for the conflict checker: the flat
//! word-parallel occupancy probe must be byte-identical to the legacy
//! per-cell scan — same verdict and the same *first* error — on random
//! machines and random (frequently invalid) placements.
//!
//! Replay a failing stream with `SWP_PROPTEST_SEED=<seed>`.

use proptest::prelude::*;
use swp_ddg::OpClass;
use swp_machine::{
    check_fixed_assignment_layout, DataLayout, FuType, Machine, PlacedOp, ReservationTable,
};

/// Arbitrary well-formed reservation table (1–4 stages, 1–8 columns,
/// with some mark in column 0).
fn arb_table() -> impl Strategy<Value = ReservationTable> {
    (1usize..=4, 1usize..=8).prop_flat_map(|(stages, cols)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), cols), stages).prop_map(
            move |mut rows| {
                rows[0][0] = true;
                let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
                ReservationTable::from_rows(&refs).expect("shape is valid")
            },
        )
    })
}

/// Arbitrary machine: 1–3 classes, 1–3 units each.
fn arb_machine() -> impl Strategy<Value = Machine> {
    proptest::collection::vec((arb_table(), 1u32..=3), 1..=3).prop_map(|types| {
        Machine::new(
            types
                .into_iter()
                .enumerate()
                .map(|(i, (reservation, count))| FuType {
                    name: format!("C{i}"),
                    count,
                    latency: 1,
                    reservation,
                })
                .collect(),
        )
        .expect("well-formed machine")
    })
}

/// A machine, a period, and a batch of placements that deliberately
/// exercises every checker error path: unknown classes, missing and
/// out-of-range unit assignments, unreduced offsets, and (mostly)
/// ordinary collisions.
fn arb_case() -> impl Strategy<Value = (Machine, u32, Vec<PlacedOp>)> {
    (arb_machine(), 1u32..=9).prop_flat_map(|(machine, period)| {
        let nclasses = machine.types().len();
        // Class index may equal `nclasses` (unknown class); offsets run
        // past the period; fu indices run past every count.
        let ops = proptest::collection::vec(
            // The last slot decides assignment; skewed so most ops carry
            // a unit and genuine collisions dominate the sanity errors.
            (0usize..=nclasses, 0u32..12, 0u32..4, 0u8..20),
            0..14,
        );
        ops.prop_map(move |raw| {
            let placed = raw
                .into_iter()
                .map(|(class, offset, fu, w)| PlacedOp {
                    class: OpClass::new(class),
                    offset,
                    fu: (w < 17).then_some(fu),
                })
                .collect();
            (machine.clone(), period, placed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The two checker layouts agree exactly — `Ok` for `Ok`, and on
    /// failure the identical first `ConflictError`, field for field.
    #[test]
    fn checker_layouts_agree(case in arb_case()) {
        let (machine, period, ops) = case;
        let legacy = check_fixed_assignment_layout(&machine, period, &ops, DataLayout::Legacy);
        let flat = check_fixed_assignment_layout(&machine, period, &ops, DataLayout::Flat);
        prop_assert_eq!(legacy, flat);
    }

    /// Restricting to in-range placements (the hot path — no sanity
    /// errors, only genuine stage collisions) the layouts still agree.
    #[test]
    fn checker_layouts_agree_on_collisions(case in arb_case()) {
        let (machine, period, ops) = case;
        let valid: Vec<PlacedOp> = ops
            .into_iter()
            .filter(|op| op.class.index() < machine.types().len())
            .map(|op| {
                let count = machine.types()[op.class.index()].count;
                PlacedOp {
                    class: op.class,
                    offset: op.offset % period,
                    fu: Some(op.fu.unwrap_or(0) % count),
                }
            })
            .collect();
        let legacy = check_fixed_assignment_layout(&machine, period, &valid, DataLayout::Legacy);
        let flat = check_fixed_assignment_layout(&machine, period, &valid, DataLayout::Flat);
        prop_assert_eq!(legacy, flat);
    }
}
