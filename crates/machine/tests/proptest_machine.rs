//! Property tests on reservation tables, collision analysis, and the
//! conflict checker.

use proptest::prelude::*;
use swp_machine::{
    check_fixed_assignment, CollisionInfo, FuType, Machine, PlacedOp, ReservationTable,
};

/// Arbitrary well-formed reservation table (1–4 stages, 1–8 columns,
/// with some mark in column 0).
fn arb_table() -> impl Strategy<Value = ReservationTable> {
    (1usize..=4, 1usize..=8).prop_flat_map(|(stages, cols)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), cols), stages).prop_map(
            move |mut rows| {
                // Guarantee a mark at issue time.
                rows[0][0] = true;
                let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
                ReservationTable::from_rows(&refs).expect("shape is valid")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Forbidden latencies are exactly the self-collision distances:
    /// issuing two ops `f` apart on one unit collides iff `f` forbidden
    /// (checked against a direct two-op overlap simulation).
    #[test]
    fn forbidden_latencies_match_direct_check(rt in arb_table(), f in 1u32..8) {
        let info = CollisionInfo::analyze(&rt);
        let collides = (0..rt.stages()).any(|s| {
            let offs = rt.stage_offsets(s);
            offs.iter().any(|&a| offs.iter().any(|&b| b as u32 == a as u32 + f))
        });
        prop_assert_eq!(info.is_forbidden(f), collides);
    }

    /// The modulo constraint holds at period T iff no forbidden latency
    /// is a multiple of T... precisely: no two same-row marks are equal
    /// mod T.
    #[test]
    fn modulo_feasibility_iff_no_forbidden_multiple(rt in arb_table(), t in 1u32..10) {
        let info = CollisionInfo::analyze(&rt);
        let any_multiple = info
            .forbidden_latencies()
            .iter()
            .any(|&f| f % t == 0);
        prop_assert_eq!(rt.modulo_feasible(t), !any_multiple);
    }

    /// Packing capacity is monotone in nothing but always bounded:
    /// 0 <= cap <= T, and cap >= 1 exactly when the table is
    /// modulo-feasible at T.
    #[test]
    fn packing_capacity_bounds(rt in arb_table(), t in 1u32..8) {
        let cap = rt.max_ops_per_period(t);
        prop_assert!(cap <= t);
        prop_assert_eq!(cap >= 1, rt.modulo_feasible(t));
        // Counting bound: cap * max_row_marks <= T when cap >= 1.
        if cap >= 1 {
            prop_assert!(cap * rt.max_row_marks() <= t);
        }
    }

    /// MAL (min self period) is consistent: modulo-feasible exactly from
    /// some period onward is NOT guaranteed (non-monotone), but the MAL
    /// itself must be feasible and no smaller feasible period may exist
    /// below max_row_marks.
    #[test]
    fn mal_is_feasible_and_lower_bounded(rt in arb_table()) {
        let mal = rt.min_self_period();
        prop_assert!(rt.modulo_feasible(mal));
        prop_assert!(mal >= rt.max_row_marks().max(1));
    }

    /// The checker accepts any placement produced by greedy packing of a
    /// random table (via a machine with that table).
    #[test]
    fn greedy_packing_passes_checker(rt in arb_table(), t in 1u32..10, n in 1usize..6) {
        let machine = Machine::new(vec![FuType {
            name: "X".into(),
            count: 2,
            latency: 1,
            reservation: rt.clone(),
        }]).expect("one unit type");
        // Greedily place n ops at increasing offsets on 2 units.
        let mut placed: Vec<PlacedOp> = Vec::new();
        let mut cells = std::collections::HashSet::new();
        'op: for _ in 0..n {
            for offset in 0..t {
                for fu in 0..2u32 {
                    let mut mine = Vec::new();
                    for s in 0..rt.stages() {
                        for l in rt.stage_offsets(s) {
                            mine.push((fu, s, (offset + l as u32) % t));
                        }
                    }
                    let distinct: std::collections::HashSet<_> = mine.iter().collect();
                    if distinct.len() == mine.len()
                        && mine.iter().all(|c| !cells.contains(c))
                    {
                        for c in mine {
                            cells.insert(c);
                        }
                        placed.push(PlacedOp {
                            class: swp_ddg::OpClass::new(0),
                            offset,
                            fu: Some(fu),
                        });
                        continue 'op;
                    }
                }
            }
            break; // no more room
        }
        prop_assert_eq!(check_fixed_assignment(&machine, t, &placed), Ok(()));
    }
}
