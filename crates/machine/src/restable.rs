//! Reservation tables (Kogge 1981).

use std::fmt;

/// A reservation table: `stages × cols` boolean marks, where
/// `mark(s, l)` means an operation occupies stage `s` exactly `l` cycles
/// after issue. `cols` equals the operation's execution time `d`.
///
/// ```
/// use swp_machine::ReservationTable;
/// // A 3-stage FP pipeline where stage 3 is reused (structural hazard):
/// let rt = ReservationTable::from_rows(&[
///     &[true, false, false],
///     &[false, true, false],
///     &[false, true, true],
/// ]).unwrap();
/// assert_eq!(rt.stages(), 3);
/// assert!(rt.forbidden_latencies().contains(&1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReservationTable {
    stages: usize,
    cols: usize,
    marks: Vec<bool>, // row-major
}

impl ReservationTable {
    /// A clean pipeline of execution time `d`: a single issue stage used
    /// only at offset 0, so a new operation can start every cycle.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn clean(d: u32) -> Self {
        assert!(d > 0, "execution time must be positive");
        let cols = d as usize;
        let mut marks = vec![false; cols];
        marks[0] = true;
        ReservationTable {
            stages: 1,
            cols,
            marks,
        }
    }

    /// A non-pipelined unit of execution time `d`: one stage held for all
    /// `d` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn non_pipelined(d: u32) -> Self {
        assert!(d > 0, "execution time must be positive");
        let cols = d as usize;
        ReservationTable {
            stages: 1,
            cols,
            marks: vec![true; cols],
        }
    }

    /// Builds a table from explicit rows (one per stage).
    ///
    /// Returns `None` if the rows are empty, ragged, or no mark is set in
    /// column 0 (an operation must occupy something at issue).
    pub fn from_rows(rows: &[&[bool]]) -> Option<Self> {
        let stages = rows.len();
        let cols = rows.first()?.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        if !rows.iter().any(|r| r[0]) {
            return None;
        }
        let marks = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Some(ReservationTable {
            stages,
            cols,
            marks,
        })
    }

    /// Number of pipeline stages (rows).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Execution time `d` (columns).
    pub fn exec_time(&self) -> u32 {
        self.cols as u32
    }

    /// Whether stage `s` is occupied `l` cycles after issue.
    ///
    /// Out-of-range offsets return `false`.
    pub fn mark(&self, s: usize, l: usize) -> bool {
        s < self.stages && l < self.cols && self.marks[s * self.cols + l]
    }

    /// Offsets at which stage `s` is occupied.
    pub fn stage_offsets(&self, s: usize) -> Vec<usize> {
        (0..self.cols).filter(|&l| self.mark(s, l)).collect()
    }

    /// Number of marks in the fullest row — every operation holds some
    /// stage for this many cycles, so one unit sustains at most one
    /// operation per `max_row_marks` cycles (the MAL lower bound).
    pub fn max_row_marks(&self) -> u32 {
        (0..self.stages)
            .map(|s| self.stage_offsets(s).len() as u32)
            .max()
            .unwrap_or(0)
    }

    /// Whether this is a clean pipeline (new issue possible every cycle):
    /// no forbidden latencies at all.
    pub fn is_clean(&self) -> bool {
        self.forbidden_latencies().is_empty()
    }

    /// Forbidden latencies: gaps `f >= 1` such that issuing a second
    /// operation `f` cycles after a first collides on some stage.
    /// (Kogge: distances between marks within a row.)
    pub fn forbidden_latencies(&self) -> Vec<u32> {
        let mut forb = Vec::new();
        for s in 0..self.stages {
            let offs = self.stage_offsets(s);
            for (a, &x) in offs.iter().enumerate() {
                for &y in &offs[a + 1..] {
                    let f = (y - x) as u32;
                    if !forb.contains(&f) {
                        forb.push(f);
                    }
                }
            }
        }
        forb.sort_unstable();
        forb
    }

    /// The *modulo* usage of stage `s` at residue `t` for period `T`:
    /// true iff some offset `l ≡ t (mod T)` is marked. This is the
    /// extended reservation table of Govindarajan et al. [8] collapsed
    /// mod `T`.
    pub fn modulo_mark(&self, s: usize, t: u32, period: u32) -> bool {
        assert!(period > 0, "period must be positive");
        (0..self.cols).any(|l| (l as u32) % period == t % period && self.mark(s, l))
    }

    /// Whether an operation can repeat every `period` cycles on one unit
    /// without self-collision — the *modulo scheduling constraint*
    /// [5, 11, 19]: no stage is used at two offsets equal mod `period`.
    pub fn modulo_feasible(&self, period: u32) -> bool {
        assert!(period > 0, "period must be positive");
        (0..self.stages).all(|s| {
            let offs = self.stage_offsets(s);
            let mut seen = vec![false; period as usize];
            offs.iter().all(|&l| {
                let r = (l as u32 % period) as usize;
                !std::mem::replace(&mut seen[r], true)
            })
        })
    }

    /// The smallest period at which one unit can sustain one operation
    /// per period: `max(max_row_marks, first period passing the modulo
    /// constraint)`.
    pub fn min_self_period(&self) -> u32 {
        let mut t = self.max_row_marks().max(1);
        while !self.modulo_feasible(t) {
            t += 1;
        }
        t
    }

    /// The maximum number of operations with this table that one
    /// physical unit can host per period `T` (offsets chosen freely,
    /// no stage cell claimed twice mod `T`). Exact, by backtracking with
    /// rotation symmetry (some maximum packing uses offset 0).
    ///
    /// This is the per-unit capacity behind the packing refinement of
    /// `T_res`: e.g. a stage busy at offsets {1, 2} packs ⌊T/2⌋ ops per
    /// unit, which for odd `T` is strictly less than the `T·R / marks`
    /// counting bound — a pigeonhole fact linear relaxations cannot see.
    ///
    /// Returns 0 when even a single operation self-collides (the table
    /// is not modulo-feasible at `T`).
    pub fn max_ops_per_period(&self, period: u32) -> u32 {
        assert!(period > 0, "period must be positive");
        if !self.modulo_feasible(period) {
            return 0;
        }
        let t = period as usize;
        // Bitset of (stage, residue) cells per candidate offset.
        let words = (self.stages * t).div_ceil(64);
        let mut cell_mask = vec![vec![0u64; words]; t];
        for (o, mask) in cell_mask.iter_mut().enumerate() {
            for s in 0..self.stages {
                for l in self.stage_offsets(s) {
                    let bit = s * t + (o + l) % t;
                    mask[bit / 64] |= 1 << (bit % 64);
                }
            }
        }
        let disjoint = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x & y == 0);
        let or_into = |a: &mut [u64], b: &[u64]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= y;
            }
        };
        // DFS over increasing offsets, offset 0 fixed (rotation symmetry).
        fn dfs(
            next: usize,
            t: usize,
            used: &mut Vec<u64>,
            count: u32,
            best: &mut u32,
            cell_mask: &[Vec<u64>],
            disjoint: &dyn Fn(&[u64], &[u64]) -> bool,
        ) {
            *best = (*best).max(count);
            if next >= t || count + (t - next) as u32 <= *best {
                return;
            }
            for o in next..t {
                if disjoint(used, &cell_mask[o]) {
                    let saved = used.clone();
                    for (x, y) in used.iter_mut().zip(&cell_mask[o]) {
                        *x |= y;
                    }
                    dfs(o + 1, t, used, count + 1, best, cell_mask, disjoint);
                    *used = saved;
                }
            }
        }
        let mut used = vec![0u64; words];
        or_into(&mut used, &cell_mask[0]);
        let mut best = 1;
        dfs(1, t, &mut used, 1, &mut best, &cell_mask, &disjoint);
        best
    }
}

impl fmt::Display for ReservationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..self.stages {
            write!(f, "stage {s}: ")?;
            for l in 0..self.cols {
                write!(f, "{}", if self.mark(s, l) { 'X' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_shape() {
        let rt = ReservationTable::clean(3);
        assert_eq!(rt.exec_time(), 3);
        assert_eq!(rt.stages(), 1);
        assert!(rt.mark(0, 0));
        assert!(!rt.mark(0, 1));
        assert!(rt.is_clean());
        assert_eq!(rt.max_row_marks(), 1);
        assert_eq!(rt.min_self_period(), 1);
    }

    #[test]
    fn non_pipelined_shape() {
        let rt = ReservationTable::non_pipelined(3);
        assert_eq!(rt.forbidden_latencies(), vec![1, 2]);
        assert!(!rt.is_clean());
        assert_eq!(rt.max_row_marks(), 3);
        assert_eq!(rt.min_self_period(), 3);
    }

    #[test]
    fn hazard_pipeline() {
        // stage 3 used at offsets 1 and 2 -> forbidden latency 1.
        let rt = ReservationTable::from_rows(&[
            &[true, false, false],
            &[false, true, false],
            &[false, true, true],
        ])
        .expect("well formed");
        assert_eq!(rt.forbidden_latencies(), vec![1]);
        assert_eq!(rt.max_row_marks(), 2);
        assert!(!rt.modulo_feasible(1));
        assert!(rt.modulo_feasible(2));
        assert_eq!(rt.min_self_period(), 2);
    }

    #[test]
    fn modulo_mark_wraps() {
        let rt = ReservationTable::non_pipelined(3);
        // period 2: offsets 0,1,2 -> residues 0,1,0.
        assert!(rt.modulo_mark(0, 0, 2));
        assert!(rt.modulo_mark(0, 1, 2));
        assert!(!rt.modulo_feasible(2));
    }

    #[test]
    fn from_rows_rejects_bad_shapes() {
        assert!(ReservationTable::from_rows(&[]).is_none());
        let empty: &[bool] = &[];
        assert!(ReservationTable::from_rows(&[empty]).is_none());
        assert!(ReservationTable::from_rows(&[&[true, false][..], &[true][..]]).is_none());
        // No mark at issue time.
        assert!(ReservationTable::from_rows(&[&[false, true]]).is_none());
    }

    #[test]
    fn display_renders_grid() {
        let rt = ReservationTable::from_rows(&[&[true, false], &[false, true]]).unwrap();
        let s = rt.to_string();
        assert!(s.contains("stage 0: X."));
        assert!(s.contains("stage 1: .X"));
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_exec_time_panics() {
        let _ = ReservationTable::clean(0);
    }

    #[test]
    fn packing_capacity_clean() {
        // A clean pipeline hosts one op per step: T ops per period.
        let rt = ReservationTable::clean(3);
        assert_eq!(rt.max_ops_per_period(4), 4);
        assert_eq!(rt.max_ops_per_period(1), 1);
    }

    #[test]
    fn packing_capacity_non_pipelined() {
        // lat-d non-pipelined: floor(T / d) ops per unit.
        let rt = ReservationTable::non_pipelined(2);
        assert_eq!(rt.max_ops_per_period(4), 2);
        assert_eq!(rt.max_ops_per_period(5), 2);
        assert_eq!(rt.max_ops_per_period(6), 3);
        assert_eq!(rt.max_ops_per_period(1), 0); // self-collision
    }

    #[test]
    fn packing_capacity_hazard_parity() {
        // The PLDI'95 FP table: stage 3 busy at offsets {1,2} -> 2-blocks
        // mod T. Odd T wastes a slot: floor(T/2).
        let rt = ReservationTable::from_rows(&[
            &[true, false, false],
            &[false, true, false],
            &[false, true, true],
        ])
        .expect("well formed");
        assert_eq!(rt.max_ops_per_period(4), 2);
        assert_eq!(rt.max_ops_per_period(5), 2); // the pigeonhole case
        assert_eq!(rt.max_ops_per_period(6), 3);
        assert_eq!(rt.max_ops_per_period(7), 3);
    }

    #[test]
    fn packing_matches_bruteforce_on_kogge_table() {
        let rt = ReservationTable::from_rows(&[
            &[true, false, false, false, true],
            &[false, true, false, true, false],
            &[false, false, true, false, false],
        ])
        .expect("well formed");
        // Brute force over all offset subsets for small T.
        for t in 3u32..9 {
            let mut best = 0u32;
            for mask in 0u32..(1 << t) {
                let offs: Vec<u32> = (0..t).filter(|&o| mask & (1 << o) != 0).collect();
                let mut cells = std::collections::HashSet::new();
                let mut ok = true;
                'outer: for &o in &offs {
                    for s in 0..rt.stages() {
                        for l in rt.stage_offsets(s) {
                            if !cells.insert((s, (o + l as u32) % t)) {
                                ok = false;
                                break 'outer;
                            }
                        }
                    }
                }
                if ok {
                    best = best.max(offs.len() as u32);
                }
            }
            assert_eq!(rt.max_ops_per_period(t), best, "T = {t}");
        }
    }
}
