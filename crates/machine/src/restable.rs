//! Reservation tables (Kogge 1981).
//!
//! Marks are stored as u64 words (one padded word run per stage) so
//! collision tests over rows and modulo cell sets are word-parallel
//! AND/OR instead of per-cell boolean loops. Padding bits are always
//! zero, so the derived `PartialEq`/`Hash` stay canonical.

use std::fmt;

/// A reservation table: `stages × cols` boolean marks, where
/// `mark(s, l)` means an operation occupies stage `s` exactly `l` cycles
/// after issue. `cols` equals the operation's execution time `d`.
///
/// ```
/// use swp_machine::ReservationTable;
/// // A 3-stage FP pipeline where stage 3 is reused (structural hazard):
/// let rt = ReservationTable::from_rows(&[
///     &[true, false, false],
///     &[false, true, false],
///     &[false, true, true],
/// ]).unwrap();
/// assert_eq!(rt.stages(), 3);
/// assert!(rt.forbidden_latencies().contains(&1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReservationTable {
    stages: usize,
    cols: usize,
    /// Words per stage row: `cols.div_ceil(64)`.
    words_per_row: usize,
    /// Row-major bit marks, `words_per_row` words per stage; bit `l` of
    /// the row's word run is set iff stage `s` is busy at offset `l`.
    /// Bits at offsets `>= cols` are always zero.
    marks: Vec<u64>,
}

impl ReservationTable {
    fn empty(stages: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        ReservationTable {
            stages,
            cols,
            words_per_row,
            marks: vec![0u64; stages * words_per_row],
        }
    }

    fn set(&mut self, s: usize, l: usize) {
        debug_assert!(s < self.stages && l < self.cols);
        self.marks[s * self.words_per_row + l / 64] |= 1u64 << (l % 64);
    }

    /// A clean pipeline of execution time `d`: a single issue stage used
    /// only at offset 0, so a new operation can start every cycle.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn clean(d: u32) -> Self {
        assert!(d > 0, "execution time must be positive");
        let mut rt = Self::empty(1, d as usize);
        rt.set(0, 0);
        rt
    }

    /// A non-pipelined unit of execution time `d`: one stage held for all
    /// `d` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn non_pipelined(d: u32) -> Self {
        assert!(d > 0, "execution time must be positive");
        let mut rt = Self::empty(1, d as usize);
        for l in 0..d as usize {
            rt.set(0, l);
        }
        rt
    }

    /// Builds a table from explicit rows (one per stage).
    ///
    /// Returns `None` if the rows are empty, ragged, or no mark is set in
    /// column 0 (an operation must occupy something at issue).
    pub fn from_rows(rows: &[&[bool]]) -> Option<Self> {
        let stages = rows.len();
        let cols = rows.first()?.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        if !rows.iter().any(|r| r[0]) {
            return None;
        }
        let mut rt = Self::empty(stages, cols);
        for (s, row) in rows.iter().enumerate() {
            for (l, &m) in row.iter().enumerate() {
                if m {
                    rt.set(s, l);
                }
            }
        }
        Some(rt)
    }

    /// Number of pipeline stages (rows).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Execution time `d` (columns).
    pub fn exec_time(&self) -> u32 {
        self.cols as u32
    }

    /// Whether stage `s` is occupied `l` cycles after issue.
    ///
    /// Out-of-range offsets return `false`.
    pub fn mark(&self, s: usize, l: usize) -> bool {
        s < self.stages
            && l < self.cols
            && (self.marks[s * self.words_per_row + l / 64] >> (l % 64)) & 1 == 1
    }

    /// The u64 bit-row for stage `s`: bit `l` is set iff the stage is
    /// busy at offset `l`. Padding bits past [`Self::exec_time`] are zero,
    /// so callers may AND/OR whole words without masking.
    pub fn row_words(&self, s: usize) -> &[u64] {
        &self.marks[s * self.words_per_row..(s + 1) * self.words_per_row]
    }

    /// Offsets at which stage `s` is occupied, ascending, without
    /// allocating — the hot-loop form of [`Self::stage_offsets`].
    pub fn stage_offset_iter(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        self.row_words(s).iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + l)
            })
        })
    }

    /// Offsets at which stage `s` is occupied.
    pub fn stage_offsets(&self, s: usize) -> Vec<usize> {
        self.stage_offset_iter(s).collect()
    }

    /// Number of marks in the fullest row — every operation holds some
    /// stage for this many cycles, so one unit sustains at most one
    /// operation per `max_row_marks` cycles (the MAL lower bound).
    pub fn max_row_marks(&self) -> u32 {
        (0..self.stages)
            .map(|s| self.row_words(s).iter().map(|w| w.count_ones()).sum())
            .max()
            .unwrap_or(0)
    }

    /// Whether this is a clean pipeline (new issue possible every cycle):
    /// no forbidden latencies at all.
    pub fn is_clean(&self) -> bool {
        self.forbidden_latencies().is_empty()
    }

    /// Forbidden latencies: gaps `f >= 1` such that issuing a second
    /// operation `f` cycles after a first collides on some stage.
    /// (Kogge: distances between marks within a row.)
    pub fn forbidden_latencies(&self) -> Vec<u32> {
        let mut forb = Vec::new();
        for s in 0..self.stages {
            let offs: Vec<usize> = self.stage_offset_iter(s).collect();
            for (a, &x) in offs.iter().enumerate() {
                for &y in &offs[a + 1..] {
                    let f = (y - x) as u32;
                    if !forb.contains(&f) {
                        forb.push(f);
                    }
                }
            }
        }
        forb.sort_unstable();
        forb
    }

    /// The *modulo* usage of stage `s` at residue `t` for period `T`:
    /// true iff some offset `l ≡ t (mod T)` is marked. This is the
    /// extended reservation table of Govindarajan et al. [8] collapsed
    /// mod `T`.
    pub fn modulo_mark(&self, s: usize, t: u32, period: u32) -> bool {
        assert!(period > 0, "period must be positive");
        (0..self.cols).any(|l| (l as u32) % period == t % period && self.mark(s, l))
    }

    /// Whether an operation can repeat every `period` cycles on one unit
    /// without self-collision — the *modulo scheduling constraint*
    /// [5, 11, 19]: no stage is used at two offsets equal mod `period`.
    pub fn modulo_feasible(&self, period: u32) -> bool {
        assert!(period > 0, "period must be positive");
        (0..self.stages).all(|s| {
            let mut seen = vec![false; period as usize];
            self.stage_offset_iter(s).all(|l| {
                let r = (l as u32 % period) as usize;
                !std::mem::replace(&mut seen[r], true)
            })
        })
    }

    /// The smallest period at which one unit can sustain one operation
    /// per period: `max(max_row_marks, first period passing the modulo
    /// constraint)`.
    pub fn min_self_period(&self) -> u32 {
        let mut t = self.max_row_marks().max(1);
        while !self.modulo_feasible(t) {
            t += 1;
        }
        t
    }

    /// Number of u64 words in one per-period cell mask for `period`:
    /// `(stages * period).div_ceil(64)`. See [`Self::modulo_cell_masks`].
    pub fn cell_mask_words(&self, period: u32) -> usize {
        (self.stages * period as usize).div_ceil(64)
    }

    /// Per-residue modulo cell masks for `period`: `masks[o]` has bit
    /// `s * period + r` set iff an operation issued at residue `o`
    /// claims stage `s` at residue `r = (o + l) % period` for some
    /// marked offset `l`. Two issues at residues `a` and `b` collide on
    /// one unit iff `masks[a] & masks[b] != 0` — one AND per word
    /// instead of a per-cell scan. Each mask is
    /// [`Self::cell_mask_words`] words long; padding bits are zero.
    pub fn modulo_cell_masks(&self, period: u32) -> Vec<Vec<u64>> {
        assert!(period > 0, "period must be positive");
        let t = period as usize;
        let words = self.cell_mask_words(period);
        let mut cell_mask = vec![vec![0u64; words]; t];
        for (o, mask) in cell_mask.iter_mut().enumerate() {
            for s in 0..self.stages {
                for l in self.stage_offset_iter(s) {
                    let bit = s * t + (o + l) % t;
                    mask[bit / 64] |= 1 << (bit % 64);
                }
            }
        }
        cell_mask
    }

    /// Per-residue modulo cell lists for `period`: `lists[o]` holds the
    /// flat cell indices `s * period + (o + l) % period` claimed by an
    /// issue at residue `o`, in exactly the scan order of the legacy
    /// per-cell loops (stage-major, then marked offsets ascending).
    /// Consumers that must report the *first* colliding cell in legacy
    /// order walk this list.
    pub fn modulo_cell_lists(&self, period: u32) -> Vec<Vec<usize>> {
        assert!(period > 0, "period must be positive");
        let t = period as usize;
        (0..t)
            .map(|o| {
                let mut cells = Vec::new();
                for s in 0..self.stages {
                    for l in self.stage_offset_iter(s) {
                        cells.push(s * t + (o + l) % t);
                    }
                }
                cells
            })
            .collect()
    }

    /// The maximum number of operations with this table that one
    /// physical unit can host per period `T` (offsets chosen freely,
    /// no stage cell claimed twice mod `T`). Exact, by backtracking with
    /// rotation symmetry (some maximum packing uses offset 0).
    ///
    /// This is the per-unit capacity behind the packing refinement of
    /// `T_res`: e.g. a stage busy at offsets {1, 2} packs ⌊T/2⌋ ops per
    /// unit, which for odd `T` is strictly less than the `T·R / marks`
    /// counting bound — a pigeonhole fact linear relaxations cannot see.
    ///
    /// Returns 0 when even a single operation self-collides (the table
    /// is not modulo-feasible at `T`).
    pub fn max_ops_per_period(&self, period: u32) -> u32 {
        assert!(period > 0, "period must be positive");
        if !self.modulo_feasible(period) {
            return 0;
        }
        let t = period as usize;
        let words = self.cell_mask_words(period);
        let cell_mask = self.modulo_cell_masks(period);
        let disjoint = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x & y == 0);
        let or_into = |a: &mut [u64], b: &[u64]| {
            for (x, y) in a.iter_mut().zip(b) {
                *x |= y;
            }
        };
        // DFS over increasing offsets, offset 0 fixed (rotation symmetry).
        fn dfs(
            next: usize,
            t: usize,
            used: &mut Vec<u64>,
            count: u32,
            best: &mut u32,
            cell_mask: &[Vec<u64>],
            disjoint: &dyn Fn(&[u64], &[u64]) -> bool,
        ) {
            *best = (*best).max(count);
            if next >= t || count + (t - next) as u32 <= *best {
                return;
            }
            for o in next..t {
                if disjoint(used, &cell_mask[o]) {
                    let saved = used.clone();
                    for (x, y) in used.iter_mut().zip(&cell_mask[o]) {
                        *x |= y;
                    }
                    dfs(o + 1, t, used, count + 1, best, cell_mask, disjoint);
                    *used = saved;
                }
            }
        }
        let mut used = vec![0u64; words];
        or_into(&mut used, &cell_mask[0]);
        let mut best = 1;
        dfs(1, t, &mut used, 1, &mut best, &cell_mask, &disjoint);
        best
    }
}

impl fmt::Display for ReservationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in 0..self.stages {
            write!(f, "stage {s}: ")?;
            for l in 0..self.cols {
                write!(f, "{}", if self.mark(s, l) { 'X' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_shape() {
        let rt = ReservationTable::clean(3);
        assert_eq!(rt.exec_time(), 3);
        assert_eq!(rt.stages(), 1);
        assert!(rt.mark(0, 0));
        assert!(!rt.mark(0, 1));
        assert!(rt.is_clean());
        assert_eq!(rt.max_row_marks(), 1);
        assert_eq!(rt.min_self_period(), 1);
    }

    #[test]
    fn non_pipelined_shape() {
        let rt = ReservationTable::non_pipelined(3);
        assert_eq!(rt.forbidden_latencies(), vec![1, 2]);
        assert!(!rt.is_clean());
        assert_eq!(rt.max_row_marks(), 3);
        assert_eq!(rt.min_self_period(), 3);
    }

    #[test]
    fn hazard_pipeline() {
        // stage 3 used at offsets 1 and 2 -> forbidden latency 1.
        let rt = ReservationTable::from_rows(&[
            &[true, false, false],
            &[false, true, false],
            &[false, true, true],
        ])
        .expect("well formed");
        assert_eq!(rt.forbidden_latencies(), vec![1]);
        assert_eq!(rt.max_row_marks(), 2);
        assert!(!rt.modulo_feasible(1));
        assert!(rt.modulo_feasible(2));
        assert_eq!(rt.min_self_period(), 2);
    }

    #[test]
    fn modulo_mark_wraps() {
        let rt = ReservationTable::non_pipelined(3);
        // period 2: offsets 0,1,2 -> residues 0,1,0.
        assert!(rt.modulo_mark(0, 0, 2));
        assert!(rt.modulo_mark(0, 1, 2));
        assert!(!rt.modulo_feasible(2));
    }

    #[test]
    fn from_rows_rejects_bad_shapes() {
        assert!(ReservationTable::from_rows(&[]).is_none());
        let empty: &[bool] = &[];
        assert!(ReservationTable::from_rows(&[empty]).is_none());
        assert!(ReservationTable::from_rows(&[&[true, false][..], &[true][..]]).is_none());
        // No mark at issue time.
        assert!(ReservationTable::from_rows(&[&[false, true]]).is_none());
    }

    #[test]
    fn display_renders_grid() {
        let rt = ReservationTable::from_rows(&[&[true, false], &[false, true]]).unwrap();
        let s = rt.to_string();
        assert!(s.contains("stage 0: X."));
        assert!(s.contains("stage 1: .X"));
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_exec_time_panics() {
        let _ = ReservationTable::clean(0);
    }

    #[test]
    fn row_words_match_marks() {
        // A 70-column table exercises the multi-word row path.
        let mut row = vec![false; 70];
        row[0] = true;
        row[63] = true;
        row[64] = true;
        row[69] = true;
        let rt = ReservationTable::from_rows(&[&row]).expect("well formed");
        assert_eq!(rt.row_words(0).len(), 2);
        assert_eq!(rt.stage_offsets(0), vec![0, 63, 64, 69]);
        for l in 0..70 {
            assert_eq!(rt.mark(0, l), row[l], "offset {l}");
        }
        assert!(!rt.mark(0, 70));
        assert_eq!(rt.max_row_marks(), 4);
    }

    #[test]
    fn cell_masks_match_cell_lists() {
        let rt = ReservationTable::from_rows(&[
            &[true, false, false, false, true],
            &[false, true, false, true, false],
            &[false, false, true, false, false],
        ])
        .expect("well formed");
        for t in 1u32..9 {
            let masks = rt.modulo_cell_masks(t);
            let lists = rt.modulo_cell_lists(t);
            for o in 0..t as usize {
                let mut from_list = vec![0u64; rt.cell_mask_words(t)];
                for &cell in &lists[o] {
                    from_list[cell / 64] |= 1 << (cell % 64);
                }
                assert_eq!(masks[o], from_list, "T = {t}, o = {o}");
            }
        }
    }

    #[test]
    fn packing_capacity_clean() {
        // A clean pipeline hosts one op per step: T ops per period.
        let rt = ReservationTable::clean(3);
        assert_eq!(rt.max_ops_per_period(4), 4);
        assert_eq!(rt.max_ops_per_period(1), 1);
    }

    #[test]
    fn packing_capacity_non_pipelined() {
        // lat-d non-pipelined: floor(T / d) ops per unit.
        let rt = ReservationTable::non_pipelined(2);
        assert_eq!(rt.max_ops_per_period(4), 2);
        assert_eq!(rt.max_ops_per_period(5), 2);
        assert_eq!(rt.max_ops_per_period(6), 3);
        assert_eq!(rt.max_ops_per_period(1), 0); // self-collision
    }

    #[test]
    fn packing_capacity_hazard_parity() {
        // The PLDI'95 FP table: stage 3 busy at offsets {1,2} -> 2-blocks
        // mod T. Odd T wastes a slot: floor(T/2).
        let rt = ReservationTable::from_rows(&[
            &[true, false, false],
            &[false, true, false],
            &[false, true, true],
        ])
        .expect("well formed");
        assert_eq!(rt.max_ops_per_period(4), 2);
        assert_eq!(rt.max_ops_per_period(5), 2); // the pigeonhole case
        assert_eq!(rt.max_ops_per_period(6), 3);
        assert_eq!(rt.max_ops_per_period(7), 3);
    }

    #[test]
    fn packing_matches_bruteforce_on_kogge_table() {
        let rt = ReservationTable::from_rows(&[
            &[true, false, false, false, true],
            &[false, true, false, true, false],
            &[false, false, true, false, false],
        ])
        .expect("well formed");
        // Brute force over all offset subsets for small T.
        for t in 3u32..9 {
            let mut best = 0u32;
            for mask in 0u32..(1 << t) {
                let offs: Vec<u32> = (0..t).filter(|&o| mask & (1 << o) != 0).collect();
                let mut cells = std::collections::HashSet::new();
                let mut ok = true;
                'outer: for &o in &offs {
                    for s in 0..rt.stages() {
                        for l in rt.stage_offsets(s) {
                            if !cells.insert((s, (o + l as u32) % t)) {
                                ok = false;
                                break 'outer;
                            }
                        }
                    }
                }
                if ok {
                    best = best.max(offs.len() as u32);
                }
            }
            assert_eq!(rt.max_ops_per_period(t), best, "T = {t}");
        }
    }
}
