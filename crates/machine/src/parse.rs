//! Textual machine descriptions, so targets can be written as data:
//!
//! ```text
//! machine my604 {
//!     unit SCIU  count=2 latency=1  clean
//!     unit FPU   count=1 latency=3  table[X.. / .X. / .XX]
//!     unit LSU   count=1 latency=3  clean
//!     unit FDIV  count=1 latency=18 nonpipelined
//! }
//! ```
//!
//! Classes are assigned in declaration order (`SCIU` is `OpClass(0)`,
//! …). Tables are written row per stage, `X` = occupied, `.` = idle,
//! rows separated by `/`; `clean` takes the latency as execution time
//! with a single issue-slot stage; `nonpipelined` holds one stage for
//! the full latency.
//!
//! VLIW issue-bundle constraints are optional trailing lines:
//!
//! ```text
//!     bundle width=2
//!     slot mem cap=1 classes=2
//! ```
//!
//! `bundle` caps total issues per cycle; each `slot` line names a group
//! capping the listed classes (comma-separated declaration indices).

use crate::machine::{BundleSpec, FuType, Machine, SlotGroup};
use crate::restable::ReservationTable;
use std::error::Error;
use std::fmt;

/// A machine-description parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for MachineParseError {}

fn err(line: usize, message: impl Into<String>) -> MachineParseError {
    MachineParseError {
        line,
        message: message.into(),
    }
}

/// Parses one `machine <name> { … }` block into a [`Machine`] and its
/// name.
///
/// # Errors
///
/// [`MachineParseError`] on malformed syntax, bad counts, or reservation
/// tables that are ragged / empty / idle at issue time.
pub fn parse_machine(source: &str) -> Result<(String, Machine), MachineParseError> {
    let mut name = None;
    let mut units: Vec<FuType> = Vec::new();
    let mut width: Option<(u32, usize)> = None;
    let mut groups: Vec<SlotGroup> = Vec::new();
    let mut in_body = false;
    let mut closed = false;
    for (ln, raw) in source.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !in_body {
            let rest = line
                .strip_prefix("machine")
                .ok_or_else(|| err(line_no, "expected `machine <name> {`"))?
                .trim();
            let rest = rest
                .strip_suffix('{')
                .ok_or_else(|| err(line_no, "expected `{` at end of header"))?
                .trim();
            if rest.is_empty() {
                return Err(err(line_no, "machine needs a name"));
            }
            name = Some(rest.to_string());
            in_body = true;
        } else if line == "}" {
            closed = true;
            in_body = false;
        } else if closed {
            return Err(err(line_no, "content after closing `}`"));
        } else if line.starts_with("bundle") {
            if width.is_some() {
                return Err(err(line_no, "duplicate `bundle` line"));
            }
            width = Some((parse_bundle(line, line_no)?, line_no));
        } else if line.starts_with("slot") {
            groups.push(parse_slot(line, line_no)?);
        } else {
            units.push(parse_unit(line, line_no)?);
        }
    }
    let name = name.ok_or_else(|| err(1, "no `machine` block found"))?;
    if !closed {
        return Err(err(source.lines().count().max(1), "missing closing `}`"));
    }
    if units.is_empty() {
        return Err(err(1, "machine has no units"));
    }
    let mut machine = Machine::new(units).map_err(|e| err(1, format!("invalid machine: {e}")))?;
    match width {
        Some((w, bundle_line)) => {
            machine = machine
                .with_bundle(BundleSpec { width: w, groups })
                .map_err(|e| err(bundle_line, format!("invalid bundle: {e}")))?;
        }
        None if !groups.is_empty() => {
            return Err(err(1, "`slot` lines need a `bundle width=` line"));
        }
        None => {}
    }
    Ok((name, machine))
}

fn parse_bundle(line: &str, line_no: usize) -> Result<u32, MachineParseError> {
    let rest = line
        .strip_prefix("bundle")
        .expect("caller checked the prefix")
        .trim();
    let spec = rest
        .strip_prefix("width=")
        .ok_or_else(|| err(line_no, "expected `bundle width=<n>`"))?;
    spec.parse::<u32>()
        .map_err(|_| err(line_no, format!("bad bundle width `{spec}`")))
}

fn parse_slot(line: &str, line_no: usize) -> Result<SlotGroup, MachineParseError> {
    let rest = line
        .strip_prefix("slot")
        .expect("caller checked the prefix")
        .trim();
    let mut name = None;
    let mut cap = None;
    let mut classes = None;
    for tok in rest.split_whitespace() {
        if let Some(v) = tok.strip_prefix("cap=") {
            cap = Some(
                v.parse::<u32>()
                    .map_err(|_| err(line_no, format!("bad slot cap `{v}`")))?,
            );
        } else if let Some(v) = tok.strip_prefix("classes=") {
            classes = Some(
                v.split(',')
                    .map(|c| {
                        c.parse::<usize>()
                            .map_err(|_| err(line_no, format!("bad slot class `{c}`")))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            );
        } else if name.is_none() {
            name = Some(tok.to_string());
        } else {
            return Err(err(line_no, format!("unexpected token `{tok}`")));
        }
    }
    Ok(SlotGroup {
        name: name.ok_or_else(|| err(line_no, "slot needs a name"))?,
        cap: cap.ok_or_else(|| err(line_no, "slot needs `cap=`"))?,
        classes: classes.ok_or_else(|| err(line_no, "slot needs `classes=`"))?,
    })
}

/// Serializes `machine` back into the textual format accepted by
/// [`parse_machine`], so generated or shrunk machines can be stored as
/// self-contained data files. `write_machine` ∘ `parse_machine` is the
/// identity on the [`Machine`] (names included), which the round-trip
/// tests pin down.
///
/// Shapes that exactly match `clean`/`nonpipelined` at the unit's
/// latency use the keyword; everything else is written as an explicit
/// `table[...]`, which can express any reservation table.
pub fn write_machine(name: &str, machine: &Machine) -> String {
    let mut out = String::new();
    // Header names and unit names are whitespace-delimited tokens.
    let safe = |s: &str| s.replace(char::is_whitespace, "_");
    out.push_str(&format!("machine {} {{\n", safe(name)));
    for t in machine.types() {
        let shape = if t.reservation == ReservationTable::clean(t.latency) {
            "clean".to_string()
        } else if t.reservation == ReservationTable::non_pipelined(t.latency) {
            "nonpipelined".to_string()
        } else {
            let rows: Vec<String> = (0..t.reservation.stages())
                .map(|s| {
                    (0..t.reservation.exec_time() as usize)
                        .map(|l| if t.reservation.mark(s, l) { 'X' } else { '.' })
                        .collect()
                })
                .collect();
            format!("table[{}]", rows.join("/"))
        };
        out.push_str(&format!(
            "    unit {} count={} latency={} {}\n",
            safe(&t.name),
            t.count,
            t.latency,
            shape
        ));
    }
    if let Some(b) = machine.bundle() {
        out.push_str(&format!("    bundle width={}\n", b.width));
        for g in &b.groups {
            let classes: Vec<String> = g.classes.iter().map(ToString::to_string).collect();
            out.push_str(&format!(
                "    slot {} cap={} classes={}\n",
                safe(&g.name),
                g.cap,
                classes.join(",")
            ));
        }
    }
    out.push_str("}\n");
    out
}

fn parse_unit(line: &str, line_no: usize) -> Result<FuType, MachineParseError> {
    let rest = line
        .strip_prefix("unit")
        .ok_or_else(|| err(line_no, format!("expected `unit …`, got `{line}`")))?
        .trim();
    // Split off a trailing `table[...]` if present, then whitespace-split.
    let (head, table_spec) = match rest.find("table[") {
        Some(pos) => {
            let spec = rest[pos..]
                .strip_prefix("table[")
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| err(line_no, "malformed `table[...]`"))?;
            (rest[..pos].trim(), Some(spec.trim().to_string()))
        }
        None => (rest, None),
    };
    let mut name = None;
    let mut count = None;
    let mut latency = None;
    let mut shape: Option<&str> = None;
    for tok in head.split_whitespace() {
        if let Some(v) = tok.strip_prefix("count=") {
            count = Some(
                v.parse::<u32>()
                    .map_err(|_| err(line_no, format!("bad count `{v}`")))?,
            );
        } else if let Some(v) = tok.strip_prefix("latency=") {
            latency = Some(
                v.parse::<u32>()
                    .map_err(|_| err(line_no, format!("bad latency `{v}`")))?,
            );
        } else if tok == "clean" || tok == "nonpipelined" {
            if shape.is_some() {
                return Err(err(line_no, format!("duplicate shape token `{tok}`")));
            }
            shape = Some(tok);
        } else if name.is_none() {
            name = Some(tok.to_string());
        } else {
            return Err(err(line_no, format!("unexpected token `{tok}`")));
        }
    }
    let name = name.ok_or_else(|| err(line_no, "unit needs a name"))?;
    let count = count.ok_or_else(|| err(line_no, "unit needs `count=`"))?;
    let latency = latency.ok_or_else(|| err(line_no, "unit needs `latency=`"))?;
    if latency == 0 {
        return Err(err(line_no, "latency must be positive"));
    }
    let reservation = match (shape, table_spec) {
        (Some("clean"), None) => ReservationTable::clean(latency),
        (Some("nonpipelined"), None) => ReservationTable::non_pipelined(latency),
        (None, Some(spec)) => {
            let rows: Vec<Vec<bool>> = spec
                .split('/')
                .map(|row| {
                    row.trim()
                        .chars()
                        .map(|c| match c {
                            'X' | 'x' => Ok(true),
                            '.' => Ok(false),
                            other => Err(err(
                                line_no,
                                format!("bad table char `{other}` (use X or .)"),
                            )),
                        })
                        .collect()
                })
                .collect::<Result<_, _>>()?;
            let refs: Vec<&[bool]> = rows.iter().map(|r| r.as_slice()).collect();
            ReservationTable::from_rows(&refs).ok_or_else(|| {
                err(
                    line_no,
                    "bad reservation table (ragged, empty, or idle at issue)",
                )
            })?
        }
        (Some(s), Some(_)) => return Err(err(line_no, format!("`{s}` and `table[...]` conflict"))),
        (None, None) => {
            return Err(err(
                line_no,
                "unit needs `clean`, `nonpipelined`, or `table[...]`",
            ))
        }
        (Some(other), None) => return Err(err(line_no, format!("unknown shape `{other}`"))),
    };
    Ok(FuType {
        name,
        count,
        latency,
        reservation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;

    const SRC: &str = "
        # a 604-flavoured target
        machine m604 {
            unit SCIU count=2 latency=1  clean
            unit FPU  count=1 latency=3  table[X.. / .X. / .XX]
            unit LSU  count=1 latency=3  clean
            unit FDIV count=1 latency=18 nonpipelined
        }";

    #[test]
    fn parses_full_machine() {
        let (name, m) = parse_machine(SRC).expect("parses");
        assert_eq!(name, "m604");
        assert_eq!(m.num_classes(), 4);
        let fpu = m.fu_type(OpClass::new(1)).expect("fpu");
        assert_eq!(fpu.reservation.stages(), 3);
        assert!(!fpu.reservation.is_clean());
        assert_eq!(fpu.reservation.forbidden_latencies(), vec![1]);
        let fdiv = m.fu_type(OpClass::new(3)).expect("fdiv");
        assert_eq!(fdiv.reservation.min_self_period(), 18);
    }

    #[test]
    fn roundtrips_with_the_builtin_model() {
        // The text above is the example machine's FP table verbatim.
        let (_, m) = parse_machine(SRC).expect("parses");
        let builtin = Machine::example_pldi95();
        assert_eq!(
            m.fu_type(OpClass::new(1)).unwrap().reservation,
            builtin.fu_type(OpClass::new(1)).unwrap().reservation
        );
    }

    #[test]
    fn errors_carry_lines() {
        let e = parse_machine("machine m {\n unit A count=1 latency=0 clean\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("latency"));
        let e = parse_machine("machine m {\n unit A latency=1 clean\n}").unwrap_err();
        assert!(e.message.contains("count"));
        let e = parse_machine("machine m {\n unit A count=1 latency=2\n}").unwrap_err();
        assert!(e.message.contains("clean"));
    }

    #[test]
    fn bad_tables_rejected() {
        let e =
            parse_machine("machine m {\n unit A count=1 latency=2 table[X. / X]\n}").unwrap_err();
        assert!(e.message.contains("reservation table"));
        let e = parse_machine("machine m {\n unit A count=1 latency=2 table[.X]\n}").unwrap_err();
        assert!(e.message.contains("reservation table")); // idle at issue
        let e = parse_machine("machine m {\n unit A count=1 latency=2 table[XQ]\n}").unwrap_err();
        assert!(e.message.contains("bad table char"));
    }

    #[test]
    fn write_machine_round_trips() {
        for (name, machine) in [
            ("example", Machine::example_pldi95()),
            ("clean", Machine::example_clean()),
            ("nonpipe", Machine::example_non_pipelined()),
            ("ppc604", Machine::ppc604()),
            ("vliw", Machine::example_vliw()),
        ] {
            let text = write_machine(name, &machine);
            let (parsed_name, parsed) = parse_machine(&text)
                .unwrap_or_else(|e| panic!("{name}: generated text failed to parse: {e}\n{text}"));
            assert_eq!(parsed_name, name);
            assert_eq!(parsed, machine, "{name} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn write_machine_uses_explicit_tables_when_needed() {
        // A clean table whose execution time differs from the dependence
        // latency cannot use the `clean` keyword (which ties the two).
        let m = Machine::new(vec![FuType {
            name: "A".to_string(),
            count: 1,
            latency: 4,
            reservation: ReservationTable::clean(2),
        }])
        .unwrap();
        let text = write_machine("m", &m);
        assert!(text.contains("table["), "{text}");
        let (_, parsed) = parse_machine(&text).expect("parses");
        assert_eq!(parsed, m);
    }

    #[test]
    fn bundle_lines_parse_and_report_errors() {
        let (_, m) = parse_machine(
            "machine v {\n unit A count=2 latency=1 clean\n unit B count=1 latency=2 clean\n \
             bundle width=2\n slot mem cap=1 classes=1\n}",
        )
        .expect("parses");
        let b = m.bundle().expect("has bundle");
        assert_eq!(b.width, 2);
        assert_eq!(b.groups.len(), 1);
        assert_eq!(b.groups[0].classes, vec![1]);

        let e = parse_machine("machine v {\n unit A count=1 latency=1 clean\n bundle width=0\n}")
            .unwrap_err();
        assert!(e.message.contains("invalid bundle"), "{e}");
        let e = parse_machine("machine v {\n unit A count=1 latency=1 clean\n bundle w=2\n}")
            .unwrap_err();
        assert!(e.message.contains("bundle width"), "{e}");
        let e = parse_machine(
            "machine v {\n unit A count=1 latency=1 clean\n slot mem cap=1 classes=0\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("bundle width"), "{e}");
        let e = parse_machine(
            "machine v {\n unit A count=1 latency=1 clean\n bundle width=2\n bundle width=2\n}",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn structure_errors() {
        assert!(parse_machine("").is_err());
        assert!(parse_machine("machine m {").is_err());
        assert!(parse_machine("machine m {\n}").is_err()); // no units
        assert!(parse_machine("machine m {\n}\nunit X").is_err());
    }

    #[test]
    fn parsed_machine_schedules() {
        let (_, m) = parse_machine(SRC).expect("parses");
        let mut g = swp_ddg::Ddg::new();
        let a = g.add_node("ld", OpClass::new(2), 3);
        let b = g.add_node("fmul", OpClass::new(1), 3);
        g.add_edge(a, b, 0).unwrap();
        assert!(m.t_lower_bound(&g).unwrap().is_some());
    }
}
