//! Cycle-accurate conflict checking, independent of any scheduler.
//!
//! Both schedulers in this workspace (the ILP of `swp-core` and the
//! heuristics of `swp-heuristics`) are validated against these checks,
//! which simulate one period of the repetitive pattern and verify every
//! stage of every physical unit is used by at most one operation per
//! time step.

use crate::machine::{Machine, MachineError};
use crate::DataLayout;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use swp_ddg::OpClass;

/// One operation as placed in the repetitive pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// Function-unit class of the operation.
    pub class: OpClass,
    /// Issue time within the pattern, `t_i mod T` (must be `< T`).
    pub offset: u32,
    /// Physical unit index within the class, if mapped.
    pub fu: Option<u32>,
}

/// A violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictError {
    /// The machine does not define the class of operation `op`.
    UnknownClass {
        /// Index of the offending operation.
        op: usize,
    },
    /// Fixed-assignment checking requires every op to carry a unit index.
    MissingAssignment {
        /// Index of the offending operation.
        op: usize,
    },
    /// The unit index is `>= count` for the class.
    FuOutOfRange {
        /// Index of the offending operation.
        op: usize,
        /// The out-of-range unit index.
        fu: u32,
        /// Number of units of that class.
        available: u32,
    },
    /// An offset was not reduced mod the period.
    OffsetOutOfRange {
        /// Index of the offending operation.
        op: usize,
        /// Its offset.
        offset: u32,
    },
    /// Two uses (possibly of the same op wrapping around) collide on a
    /// stage of one physical unit at one residue.
    StageCollision {
        /// Class of the colliding unit.
        class: OpClass,
        /// Physical unit index.
        fu: u32,
        /// Stage within the unit.
        stage: usize,
        /// Time step (mod period) of the collision.
        residue: u32,
        /// The two colliding operations (may be equal for self-collision).
        ops: (usize, usize),
    },
    /// More operations issue in one cycle (pattern residue) than the
    /// machine's VLIW issue bundle allows.
    BundleExceeded {
        /// Slot-group name, or `None` when the total width overflowed.
        group: Option<String>,
        /// Time step (mod period) of the overflow.
        residue: u32,
        /// Operations issuing there.
        used: u32,
        /// The bundle's cap for this limit.
        cap: u32,
    },
    /// More operations need a stage of some class at a residue than there
    /// are physical units (run-time-choice checking).
    CapacityExceeded {
        /// Class whose capacity is exceeded.
        class: OpClass,
        /// Stage within the unit type.
        stage: usize,
        /// Time step (mod period) of the overflow.
        residue: u32,
        /// Units demanded.
        used: u32,
        /// Units available.
        available: u32,
    },
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictError::UnknownClass { op } => write!(f, "op {op} has an unknown class"),
            ConflictError::MissingAssignment { op } => {
                write!(f, "op {op} has no function-unit assignment")
            }
            ConflictError::FuOutOfRange { op, fu, available } => {
                write!(f, "op {op} assigned unit {fu} of {available}")
            }
            ConflictError::OffsetOutOfRange { op, offset } => {
                write!(f, "op {op} offset {offset} not reduced mod period")
            }
            ConflictError::StageCollision {
                class,
                fu,
                stage,
                residue,
                ops,
            } => write!(
                f,
                "ops {} and {} collide on {class} unit {fu} stage {stage} at t={residue}",
                ops.0, ops.1
            ),
            ConflictError::BundleExceeded {
                group,
                residue,
                used,
                cap,
            } => match group {
                Some(g) => write!(
                    f,
                    "{used} ops issue in slot group `{g}` at t={residue}, cap {cap}"
                ),
                None => write!(f, "{used} ops issue at t={residue}, bundle width {cap}"),
            },
            ConflictError::CapacityExceeded {
                class,
                stage,
                residue,
                used,
                available,
            } => write!(
                f,
                "{used} ops need {class} stage {stage} at t={residue}, only {available} units"
            ),
        }
    }
}

impl Error for ConflictError {}

impl From<MachineError> for ConflictError {
    fn from(_: MachineError) -> Self {
        // Only reachable through per-op class lookups; index is patched by
        // the call sites, which construct UnknownClass directly.
        ConflictError::UnknownClass { op: usize::MAX }
    }
}

/// A precompiled structural-conflict oracle for one period.
///
/// Implementors (the hazard automata of `swp-automata`) answer the
/// checker's pairwise question — *do two operations on the same
/// physical unit, issued `delta` cycles apart, collide on some stage?* —
/// in O(1) instead of a reservation-table scan. The trait lives here,
/// not in the automata crate, because the checker is the consumer and
/// the machine crate sits below the automata crate in the dependency
/// order.
///
/// Contract: a `Some(verdict)` must agree exactly with the naive
/// reservation-table scan for the machine the oracle was compiled from;
/// `None` means "I don't know this class" and forces a fallback scan.
/// [`check_fixed_assignment_with`] debug-asserts the agreement on every
/// query path, and re-derives the authoritative error by exact scan
/// whenever the oracle reports any conflict, so oracle acceleration can
/// never change an answer — only the time to compute it.
pub trait ConflictOracle: Sync {
    /// The period the oracle was compiled for. A checker invoked with a
    /// different period ignores the oracle entirely.
    fn period(&self) -> u32;

    /// Whether two ops of classes `a` and `b` on the same physical
    /// unit, issued `delta` cycles apart (callers reduce mod period),
    /// collide on some stage. `None` if a class is unknown.
    fn same_unit_collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool>;

    /// Whether a single op of `class` collides with its own periodic
    /// repetitions at this period. `None` if the class is unknown.
    fn self_collides(&self, class: OpClass) -> Option<bool>;

    /// Telemetry hook: invoked once each time a checker abandons this
    /// oracle for an exact reservation-table scan.
    fn record_fallback(&self) {}
}

/// Issue-bundle pre-pass shared by every checker entry point: in steady
/// state the issues of one cycle are the ops at one pattern residue, so
/// the per-cycle width and slot-group caps become per-residue counts.
/// Offsets are reduced mod `period`; class indices outside the machine
/// count toward the total width only (the per-op scans report them).
/// Running this identically before every entry point keeps all checker
/// paths byte-identical to each other on bundle machines.
fn check_bundle(machine: &Machine, period: u32, ops: &[PlacedOp]) -> Result<(), ConflictError> {
    let Some(bundle) = machine.bundle() else {
        return Ok(());
    };
    let mut counts = vec![0u32; period as usize];
    for op in ops {
        counts[(op.offset % period) as usize] += 1;
    }
    if let Some((rho, &used)) = counts.iter().enumerate().find(|&(_, &u)| u > bundle.width) {
        return Err(ConflictError::BundleExceeded {
            group: None,
            residue: rho as u32,
            used,
            cap: bundle.width,
        });
    }
    for g in &bundle.groups {
        counts.iter_mut().for_each(|c| *c = 0);
        for op in ops {
            if g.classes.contains(&op.class.index()) {
                counts[(op.offset % period) as usize] += 1;
            }
        }
        if let Some((rho, &used)) = counts.iter().enumerate().find(|&(_, &u)| u > g.cap) {
            return Err(ConflictError::BundleExceeded {
                group: Some(g.name.clone()),
                residue: rho as u32,
                used,
                cap: g.cap,
            });
        }
    }
    Ok(())
}

/// Verifies a *mapped* schedule: every operation carries a physical unit,
/// and no stage of any unit is claimed twice at the same time step mod
/// `period`. Self-collision of a wrapping operation (the modulo
/// scheduling constraint) is caught too. Machines with a
/// [`crate::BundleSpec`] additionally get the per-residue issue-width
/// and slot-group checks, before any per-op scan.
///
/// # Errors
///
/// The first [`ConflictError`] found, scanning ops in order.
pub fn check_fixed_assignment(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
) -> Result<(), ConflictError> {
    assert!(period > 0, "period must be positive");
    check_bundle(machine, period, ops)?;
    // (class, fu, stage, residue) -> op index that holds it
    let mut usage: HashMap<(usize, u32, usize, u32), usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        let fu = op.fu.ok_or(ConflictError::MissingAssignment { op: i })?;
        if fu >= fu_type.count {
            return Err(ConflictError::FuOutOfRange {
                op: i,
                fu,
                available: fu_type.count,
            });
        }
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let rt = &fu_type.reservation;
        for s in 0..rt.stages() {
            for l in rt.stage_offset_iter(s) {
                let residue = (op.offset + l as u32) % period;
                let key = (op.class.index(), fu, s, residue);
                if let Some(&other) = usage.get(&key) {
                    return Err(ConflictError::StageCollision {
                        class: op.class,
                        fu,
                        stage: s,
                        residue,
                        ops: (other, i),
                    });
                }
                usage.insert(key, i);
            }
        }
    }
    Ok(())
}

/// Per-class modulo tables shared by the flat checker paths: for each
/// unit class, the word-parallel claimed-cell masks and the claimed-cell
/// lists in exact legacy scan order (stage-major, offsets ascending).
struct FlatTables {
    masks: Vec<Vec<Vec<u64>>>,
    lists: Vec<Vec<Vec<usize>>>,
    /// u64 words per per-unit occupancy run, per class.
    words: Vec<usize>,
    /// `stages * period` flat cells per unit, per class.
    cells: Vec<usize>,
    /// Whether one op of the class repeats without self-collision.
    self_ok: Vec<bool>,
}

impl FlatTables {
    fn new(machine: &Machine, period: u32) -> Self {
        let t = period as usize;
        let mut ft = FlatTables {
            masks: Vec::with_capacity(machine.num_classes()),
            lists: Vec::with_capacity(machine.num_classes()),
            words: Vec::with_capacity(machine.num_classes()),
            cells: Vec::with_capacity(machine.num_classes()),
            self_ok: Vec::with_capacity(machine.num_classes()),
        };
        for fu_type in machine.types() {
            let rt = &fu_type.reservation;
            ft.masks.push(rt.modulo_cell_masks(period));
            ft.lists.push(rt.modulo_cell_lists(period));
            ft.words.push(rt.cell_mask_words(period));
            ft.cells.push(rt.stages() * t);
            ft.self_ok.push(rt.modulo_feasible(period));
        }
        ft
    }
}

/// The flat-layout twin of [`check_fixed_assignment`]: per-(class, fu)
/// u64 occupancy words probed with one AND per word, plus a flat owner
/// array used only to reconstruct the exact legacy error. Byte-identical
/// results — same first error in the naive checker's scan order.
fn check_fixed_assignment_flat(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
) -> Result<(), ConflictError> {
    assert!(period > 0, "period must be positive");
    check_bundle(machine, period, ops)?;
    let t = period as usize;
    let ft = FlatTables::new(machine, period);
    let mut occ: Vec<Vec<u64>> = machine
        .types()
        .iter()
        .enumerate()
        .map(|(c, fu_type)| vec![0u64; fu_type.count as usize * ft.words[c]])
        .collect();
    let mut owner: Vec<Vec<usize>> = machine
        .types()
        .iter()
        .enumerate()
        .map(|(c, fu_type)| vec![usize::MAX; fu_type.count as usize * ft.cells[c]])
        .collect();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        let fu = op.fu.ok_or(ConflictError::MissingAssignment { op: i })?;
        if fu >= fu_type.count {
            return Err(ConflictError::FuOutOfRange {
                op: i,
                fu,
                available: fu_type.count,
            });
        }
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let c = op.class.index();
        let (w, cells, off) = (ft.words[c], ft.cells[c], op.offset as usize);
        let unit_occ = &mut occ[c][fu as usize * w..(fu as usize + 1) * w];
        let mask = &ft.masks[c][off];
        let clean = ft.self_ok[c] && mask.iter().zip(unit_occ.iter()).all(|(m, o)| m & o == 0);
        let unit_owner = &mut owner[c][fu as usize * cells..(fu as usize + 1) * cells];
        if clean {
            for (o, m) in unit_occ.iter_mut().zip(mask) {
                *o |= m;
            }
            for &cell in &ft.lists[c][off] {
                unit_owner[cell] = i;
            }
        } else {
            // Word probe hit (or the class self-collides at this period):
            // walk the claimed cells in legacy scan order so the first
            // collision reported matches the naive checker exactly.
            for &cell in &ft.lists[c][off] {
                if unit_owner[cell] != usize::MAX {
                    return Err(ConflictError::StageCollision {
                        class: op.class,
                        fu,
                        stage: cell / t,
                        residue: (cell % t) as u32,
                        ops: (unit_owner[cell], i),
                    });
                }
                unit_owner[cell] = i;
            }
            // Unreachable in practice (a probe hit implies an owned cell),
            // but keep the occupancy invariant if we ever fall through.
            for (o, m) in unit_occ.iter_mut().zip(mask) {
                *o |= m;
            }
        }
    }
    Ok(())
}

/// [`check_fixed_assignment`] dispatched on [`DataLayout`]: `Legacy`
/// runs the original per-cell hash-map scan, `Flat` the word-parallel
/// occupancy probe. Both return byte-identical results; the equivalence
/// proptests enforce it.
///
/// # Errors
///
/// The first [`ConflictError`] found, scanning ops in order.
pub fn check_fixed_assignment_layout(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
    layout: DataLayout,
) -> Result<(), ConflictError> {
    match layout {
        DataLayout::Legacy => check_fixed_assignment(machine, period, ops),
        DataLayout::Flat => check_fixed_assignment_flat(machine, period, ops),
    }
}

/// [`check_fixed_assignment`] with an optional [`ConflictOracle`] fast
/// path: per-op sanity checks run in the same scan order as the naive
/// checker, but the quadratic stage-overlap test collapses to one
/// collision-matrix bit test per same-unit pair.
///
/// Result fidelity is exact, not approximate. The first error of the
/// naive checker for op `i` is either a per-op sanity error (checked
/// here identically, in order) or a stage collision in which `i` is the
/// later op — and the oracle's pairwise verdict agrees with the scan on
/// precisely that predicate. On the first oracle-reported conflict (or
/// `None` verdict, or period mismatch) the whole check re-runs as an
/// exact scan, whose error is returned verbatim; a clean oracle run is
/// debug-asserted against the exact scan. Either way the result is
/// byte-identical to [`check_fixed_assignment`].
///
/// # Errors
///
/// The first [`ConflictError`] found, scanning ops in order.
pub fn check_fixed_assignment_with(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
    oracle: Option<&dyn ConflictOracle>,
) -> Result<(), ConflictError> {
    let Some(oracle) = oracle else {
        return check_fixed_assignment(machine, period, ops);
    };
    assert!(period > 0, "period must be positive");
    check_bundle(machine, period, ops)?;
    if oracle.period() != period {
        oracle.record_fallback();
        return check_fixed_assignment(machine, period, ops);
    }
    // Offsets already placed on each (class, fu) physical unit.
    let mut units: HashMap<(usize, u32), Vec<u32>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        let fu = op.fu.ok_or(ConflictError::MissingAssignment { op: i })?;
        if fu >= fu_type.count {
            return Err(ConflictError::FuOutOfRange {
                op: i,
                fu,
                available: fu_type.count,
            });
        }
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let self_verdict = oracle.self_collides(op.class);
        if self_verdict != Some(false) {
            oracle.record_fallback();
            let exact = check_fixed_assignment(machine, period, ops);
            debug_assert!(
                self_verdict != Some(true) || exact.is_err(),
                "oracle reported self-collision but exact scan found none"
            );
            return exact;
        }
        let placed = units.entry((op.class.index(), fu)).or_default();
        for &earlier in placed.iter() {
            let delta = (op.offset + period - earlier) % period;
            let verdict = oracle.same_unit_collides(op.class, op.class, delta);
            if verdict != Some(false) {
                oracle.record_fallback();
                let exact = check_fixed_assignment(machine, period, ops);
                debug_assert!(
                    verdict != Some(true) || exact.is_err(),
                    "oracle reported a pair collision but exact scan found none"
                );
                return exact;
            }
        }
        placed.push(op.offset);
    }
    debug_assert_eq!(
        check_fixed_assignment(machine, period, ops),
        Ok(()),
        "oracle accepted a schedule the exact scan rejects"
    );
    Ok(())
}

/// Verifies a schedule under *run-time unit choice*: operations are not
/// bound to physical units; the check only demands that, per class and
/// stage, at most `count` operations claim any time step mod `period`.
///
/// This is the resource constraint of the paper's eq. (5). A schedule can
/// pass this check yet admit **no** fixed assignment — that gap is the
/// paper's motivation (Table 1 / Table 2).
///
/// # Errors
///
/// The first [`ConflictError`] found.
pub fn check_capacity_only(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
) -> Result<(), ConflictError> {
    assert!(period > 0, "period must be positive");
    check_bundle(machine, period, ops)?;
    let t = period as usize;
    // Flat per-class demand counters indexed by `stage * period + residue`
    // — same counts as the old (class, stage, residue) hash map, scanned
    // in the same sorted order, without hashing or allocation per op.
    let mut demand: Vec<Vec<u32>> = machine
        .types()
        .iter()
        .map(|fu_type| vec![0u32; fu_type.reservation.stages() * t])
        .collect();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let rt = &fu_type.reservation;
        let class_demand = &mut demand[op.class.index()];
        for s in 0..rt.stages() {
            for l in rt.stage_offset_iter(s) {
                let residue = (op.offset + l as u32) % period;
                class_demand[s * t + residue as usize] += 1;
            }
        }
    }
    for (class_idx, class_demand) in demand.iter().enumerate() {
        let class = OpClass::new(class_idx);
        let Ok(fu_type) = machine.fu_type(class) else {
            return Err(ConflictError::UnknownClass { op: usize::MAX });
        };
        let available = fu_type.count;
        for (cell, &used) in class_demand.iter().enumerate() {
            if used > available {
                return Err(ConflictError::CapacityExceeded {
                    class,
                    stage: cell / t,
                    residue: (cell % t) as u32,
                    used,
                    available,
                });
            }
        }
    }
    Ok(())
}

/// Attempts a greedy (first-fit) fixed assignment of `ops`, returning the
/// per-op unit indices, or `None` if first-fit fails.
///
/// This is *not* complete — the paper's point is that some schedules
/// admit an assignment only under a smarter (coloring) analysis, and some
/// admit none at all — but it is a useful baseline and a fast path.
pub fn greedy_assignment(machine: &Machine, period: u32, ops: &[PlacedOp]) -> Option<Vec<u32>> {
    assert!(period > 0, "period must be positive");
    // First-fit with word-parallel unit probes: a unit is free for the
    // op iff its claimed-cell mask is disjoint from the unit's occupancy
    // words — the same predicate the old per-cell hash scan computed.
    let ft = FlatTables::new(machine, period);
    let mut occ: Vec<Vec<u64>> = machine
        .types()
        .iter()
        .enumerate()
        .map(|(c, fu_type)| vec![0u64; fu_type.count as usize * ft.words[c]])
        .collect();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops.iter() {
        let fu_type = machine.fu_type(op.class).ok()?;
        let c = op.class.index();
        let w = ft.words[c];
        // The old scan reduced offsets per cell, so oversized offsets are
        // legal here (unlike the fixed-assignment checker).
        let mask = &ft.masks[c][(op.offset % period) as usize];
        let class_occ = &mut occ[c];
        let fu = (0..fu_type.count).find(|&fu| {
            let unit_occ = &class_occ[fu as usize * w..(fu as usize + 1) * w];
            mask.iter().zip(unit_occ).all(|(m, o)| m & o == 0)
        })?;
        let unit_occ = &mut class_occ[fu as usize * w..(fu as usize + 1) * w];
        for (o, m) in unit_occ.iter_mut().zip(mask) {
            *o |= m;
        }
        out.push(fu);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn fp(offset: u32, fu: Option<u32>) -> PlacedOp {
        PlacedOp {
            class: OpClass::new(1),
            offset,
            fu,
        }
    }

    #[test]
    fn disjoint_ops_pass() {
        let m = Machine::example_pldi95();
        // FP hazard table occupies stage3 at offsets 1,2. Two ops, two units.
        let ops = [fp(0, Some(0)), fp(0, Some(1))];
        assert_eq!(check_fixed_assignment(&m, 4, &ops), Ok(()));
    }

    #[test]
    fn same_unit_collision_detected() {
        let m = Machine::example_pldi95();
        let ops = [fp(0, Some(0)), fp(1, Some(0))]; // stage3: {1,2} vs {2,3}
        match check_fixed_assignment(&m, 4, &ops) {
            Err(ConflictError::StageCollision { stage, ops, .. }) => {
                assert_eq!(stage, 2);
                assert_eq!(ops, (0, 1));
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn wraparound_self_collision_detected() {
        // Non-pipelined lat 2 at period 1: op collides with its own next
        // instance.
        let m = Machine::example_non_pipelined();
        let ops = [fp(0, Some(0))];
        match check_fixed_assignment(&m, 1, &ops) {
            Err(ConflictError::StageCollision { ops, .. }) => assert_eq!(ops, (0, 0)),
            other => panic!("expected self-collision, got {other:?}"),
        }
    }

    #[test]
    fn missing_assignment_rejected() {
        let m = Machine::example_pldi95();
        assert_eq!(
            check_fixed_assignment(&m, 4, &[fp(0, None)]),
            Err(ConflictError::MissingAssignment { op: 0 })
        );
    }

    #[test]
    fn fu_out_of_range_rejected() {
        let m = Machine::example_pldi95();
        assert!(matches!(
            check_fixed_assignment(&m, 4, &[fp(0, Some(5))]),
            Err(ConflictError::FuOutOfRange { fu: 5, .. })
        ));
    }

    #[test]
    fn offset_must_be_reduced() {
        let m = Machine::example_pldi95();
        assert!(matches!(
            check_fixed_assignment(&m, 4, &[fp(7, Some(0))]),
            Err(ConflictError::OffsetOutOfRange { offset: 7, .. })
        ));
    }

    #[test]
    fn capacity_check_allows_runtime_choice() {
        let m = Machine::example_pldi95();
        // Three FP ops at offsets 0, 0, 2 with 2 units at period 4:
        // issue stage demands: t0 x2, t2 x1 -> within capacity 2.
        let ops = [fp(0, None), fp(0, None), fp(2, None)];
        assert_eq!(check_capacity_only(&m, 4, &ops), Ok(()));
    }

    #[test]
    fn capacity_overflow_detected() {
        let m = Machine::example_pldi95();
        let ops = [fp(0, None), fp(0, None), fp(0, None)];
        match check_capacity_only(&m, 4, &ops) {
            Err(ConflictError::CapacityExceeded {
                used, available, ..
            }) => {
                assert_eq!((used, available), (3, 2));
            }
            other => panic!("expected capacity error, got {other:?}"),
        }
    }

    #[test]
    fn flat_checker_matches_naive_on_every_fixture() {
        // Every fixture the naive checker is tested with, plus wraparound
        // self-collision and mixed-class schedules: the flat layout must
        // return the byte-identical result (same variant, same fields,
        // same first error in scan order).
        let machines = [
            Machine::example_pldi95(),
            Machine::example_clean(),
            Machine::example_non_pipelined(),
            Machine::ppc604(),
        ];
        let int = |offset, fu| PlacedOp {
            class: OpClass::new(0),
            offset,
            fu,
        };
        let cases: Vec<Vec<PlacedOp>> = vec![
            vec![fp(0, Some(0)), fp(0, Some(1))],
            vec![fp(0, Some(0)), fp(1, Some(0))],
            vec![fp(0, Some(0)), fp(1, Some(0)), fp(9, Some(0))],
            vec![fp(0, None)],
            vec![fp(9, Some(0))],
            vec![fp(0, Some(7))],
            vec![
                fp(0, Some(0)),
                int(0, Some(0)),
                fp(2, Some(0)),
                int(1, Some(0)),
            ],
            vec![
                fp(0, Some(0)),
                fp(2, Some(1)),
                fp(3, Some(0)),
                fp(1, Some(1)),
            ],
            vec![PlacedOp {
                class: OpClass::new(9),
                offset: 0,
                fu: Some(0),
            }],
        ];
        for m in &machines {
            for period in 1u32..7 {
                for ops in &cases {
                    assert_eq!(
                        check_fixed_assignment_layout(m, period, ops, DataLayout::Flat),
                        check_fixed_assignment_layout(m, period, ops, DataLayout::Legacy),
                        "period {period}, ops {ops:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn flat_checker_reports_wraparound_self_collision_identically() {
        let m = Machine::example_non_pipelined();
        let ops = [fp(0, Some(0))];
        let legacy = check_fixed_assignment_layout(&m, 1, &ops, DataLayout::Legacy);
        let flat = check_fixed_assignment_layout(&m, 1, &ops, DataLayout::Flat);
        assert!(matches!(
            legacy,
            Err(ConflictError::StageCollision { ops: (0, 0), .. })
        ));
        assert_eq!(flat, legacy);
    }

    #[test]
    fn bundle_width_enforced_by_every_entry_point() {
        use crate::machine::BundleSpec;
        let m = Machine::example_clean()
            .with_bundle(BundleSpec::width(1))
            .unwrap();
        // Two ops issuing at the same residue on different units: clean
        // for the tables, rejected by the width-1 bundle.
        let ops = [fp(0, Some(0)), fp(0, Some(1))];
        let expected = Err(ConflictError::BundleExceeded {
            group: None,
            residue: 0,
            used: 2,
            cap: 1,
        });
        assert_eq!(check_fixed_assignment(&m, 4, &ops), expected);
        assert_eq!(
            check_fixed_assignment_layout(&m, 4, &ops, DataLayout::Flat),
            expected
        );
        assert_eq!(check_fixed_assignment_with(&m, 4, &ops, None), expected);
        let unmapped = [fp(0, None), fp(0, None)];
        assert_eq!(check_capacity_only(&m, 4, &unmapped), expected);
        // Staggered issues pass everywhere.
        let ok = [fp(0, Some(0)), fp(1, Some(1))];
        assert_eq!(check_fixed_assignment(&m, 4, &ok), Ok(()));
        assert_eq!(
            check_fixed_assignment_layout(&m, 4, &ok, DataLayout::Flat),
            Ok(())
        );
    }

    #[test]
    fn slot_group_cap_enforced() {
        let m = Machine::example_vliw(); // width 2, mem (class 2) cap 1
        let mem = |offset, fu| PlacedOp {
            class: OpClass::new(2),
            offset,
            fu,
        };
        // Two memory issues in one cycle: inside width 2, outside mem cap 1.
        let ops = [mem(0, None), mem(0, None)];
        match check_capacity_only(&m, 4, &ops) {
            Err(ConflictError::BundleExceeded {
                group: Some(g),
                residue: 0,
                used: 2,
                cap: 1,
            }) => assert_eq!(g, "mem"),
            other => panic!("expected mem-group overflow, got {other:?}"),
        }
        // One memory + one int in the same cycle is fine.
        let ops = [
            mem(0, Some(0)),
            PlacedOp {
                class: OpClass::new(0),
                offset: 0,
                fu: Some(0),
            },
        ];
        assert_eq!(check_fixed_assignment(&m, 4, &ops), Ok(()));
    }

    #[test]
    fn greedy_assignment_round_trips_checker() {
        let m = Machine::example_pldi95();
        let mut ops = vec![fp(0, None), fp(2, None), fp(1, None)];
        let assign = greedy_assignment(&m, 4, &ops).expect("assignable");
        for (op, fu) in ops.iter_mut().zip(&assign) {
            op.fu = Some(*fu);
        }
        assert_eq!(check_fixed_assignment(&m, 4, &ops), Ok(()));
    }

    /// An exact-by-construction oracle: answers by scanning the machine's
    /// reservation tables, so it is always right; `strict` poisons the
    /// verdicts to `None` to force the fallback path.
    struct ScanOracle {
        machine: Machine,
        period: u32,
        mute: bool,
        fallbacks: std::sync::atomic::AtomicU32,
    }

    impl ScanOracle {
        fn new(machine: Machine, period: u32) -> Self {
            ScanOracle {
                machine,
                period,
                mute: false,
                fallbacks: std::sync::atomic::AtomicU32::new(0),
            }
        }

        fn fallback_count(&self) -> u32 {
            self.fallbacks.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl ConflictOracle for ScanOracle {
        fn period(&self) -> u32 {
            self.period
        }
        fn same_unit_collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool> {
            if self.mute {
                return None;
            }
            if a != b {
                return Some(false);
            }
            let rt = &self.machine.fu_type(a).ok()?.reservation;
            let mut hit = false;
            for s in 0..rt.stages() {
                let offs = rt.stage_offsets(s);
                for &l1 in &offs {
                    for &l2 in &offs {
                        let d = (l1 as i64 - l2 as i64).rem_euclid(i64::from(self.period));
                        hit |= d as u32 == delta % self.period;
                    }
                }
            }
            Some(hit)
        }
        fn self_collides(&self, class: OpClass) -> Option<bool> {
            if self.mute {
                return None;
            }
            let rt = &self.machine.fu_type(class).ok()?.reservation;
            Some(!rt.modulo_feasible(self.period))
        }
        fn record_fallback(&self) {
            self.fallbacks
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn oracle_path_matches_naive_on_clean_and_colliding_schedules() {
        let m = Machine::example_pldi95();
        let oracle = ScanOracle::new(m.clone(), 4);
        for ops in [
            vec![fp(0, Some(0)), fp(0, Some(1))],
            vec![fp(0, Some(0)), fp(1, Some(0))],
            vec![fp(0, Some(0)), fp(2, Some(0)), fp(1, Some(1))],
            vec![fp(0, None)],
            vec![fp(9, Some(0))],
            vec![fp(0, Some(7))],
        ] {
            assert_eq!(
                check_fixed_assignment_with(&m, 4, &ops, Some(&oracle)),
                check_fixed_assignment(&m, 4, &ops),
            );
        }
    }

    #[test]
    fn oracle_error_fidelity_preserves_scan_order_first_error() {
        // Ops 0 and 1 collide; op 2 has a bad offset. The naive scan
        // reports the collision (found while scanning op 1, before op
        // 2's sanity checks run) — the oracle path must match.
        let m = Machine::example_pldi95();
        let oracle = ScanOracle::new(m.clone(), 4);
        let ops = [fp(0, Some(0)), fp(1, Some(0)), fp(9, Some(0))];
        let exact = check_fixed_assignment(&m, 4, &ops);
        assert!(matches!(exact, Err(ConflictError::StageCollision { .. })));
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&oracle)),
            exact
        );
        assert!(oracle.fallback_count() >= 1);
    }

    #[test]
    fn period_mismatch_and_unknown_verdicts_fall_back() {
        let m = Machine::example_pldi95();
        let stale = ScanOracle::new(m.clone(), 6); // compiled for T=6
        let ops = [fp(0, Some(0)), fp(1, Some(0))];
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&stale)),
            check_fixed_assignment(&m, 4, &ops)
        );
        assert_eq!(stale.fallback_count(), 1);
        let mut mute = ScanOracle::new(m.clone(), 4);
        mute.mute = true;
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&mute)),
            check_fixed_assignment(&m, 4, &ops)
        );
        assert_eq!(mute.fallback_count(), 1);
    }

    #[test]
    fn oracle_detects_wraparound_self_collision() {
        let m = Machine::example_non_pipelined();
        let oracle = ScanOracle::new(m.clone(), 1);
        let ops = [fp(0, Some(0))];
        assert_eq!(
            check_fixed_assignment_with(&m, 1, &ops, Some(&oracle)),
            check_fixed_assignment(&m, 1, &ops)
        );
    }

    #[test]
    fn greedy_assignment_can_fail_where_capacity_passes() {
        // The paper's motivating gap: capacity fine, first-fit mapping
        // impossible at this period. Non-pipelined FP lat 2, 2 units,
        // period 4, ops at offsets 0,1,2,3: capacity per step is 2 (each
        // op covers two consecutive steps) but the wrap structure forces
        // every pair of units to conflict under first-fit order 0,1,2,3?
        // First-fit: op@0 -> fu0 {0,1}; op@1 -> fu1 {1,2}; op@2 -> fu0
        // {2,3}; op@3 -> fu1 {3,0}. That works. Instead use 3 ops on ONE
        // unit at period 6 with offsets 0,2,4 (fits exactly), then a 4th
        // op anywhere fails.
        let m = Machine::example_non_pipelined();
        let mut ops = vec![fp(0, None), fp(2, None), fp(4, None)];
        // occupy second unit fully too
        ops.extend([fp(0, None), fp(2, None), fp(4, None)]);
        assert_eq!(check_capacity_only(&m, 6, &ops), Ok(()));
        assert!(greedy_assignment(&m, 6, &ops).is_some());
        ops.push(fp(1, None));
        assert!(greedy_assignment(&m, 6, &ops).is_none());
    }
}
