//! Cycle-accurate conflict checking, independent of any scheduler.
//!
//! Both schedulers in this workspace (the ILP of `swp-core` and the
//! heuristics of `swp-heuristics`) are validated against these checks,
//! which simulate one period of the repetitive pattern and verify every
//! stage of every physical unit is used by at most one operation per
//! time step.

use crate::machine::{Machine, MachineError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use swp_ddg::OpClass;

/// One operation as placed in the repetitive pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedOp {
    /// Function-unit class of the operation.
    pub class: OpClass,
    /// Issue time within the pattern, `t_i mod T` (must be `< T`).
    pub offset: u32,
    /// Physical unit index within the class, if mapped.
    pub fu: Option<u32>,
}

/// A violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConflictError {
    /// The machine does not define the class of operation `op`.
    UnknownClass {
        /// Index of the offending operation.
        op: usize,
    },
    /// Fixed-assignment checking requires every op to carry a unit index.
    MissingAssignment {
        /// Index of the offending operation.
        op: usize,
    },
    /// The unit index is `>= count` for the class.
    FuOutOfRange {
        /// Index of the offending operation.
        op: usize,
        /// The out-of-range unit index.
        fu: u32,
        /// Number of units of that class.
        available: u32,
    },
    /// An offset was not reduced mod the period.
    OffsetOutOfRange {
        /// Index of the offending operation.
        op: usize,
        /// Its offset.
        offset: u32,
    },
    /// Two uses (possibly of the same op wrapping around) collide on a
    /// stage of one physical unit at one residue.
    StageCollision {
        /// Class of the colliding unit.
        class: OpClass,
        /// Physical unit index.
        fu: u32,
        /// Stage within the unit.
        stage: usize,
        /// Time step (mod period) of the collision.
        residue: u32,
        /// The two colliding operations (may be equal for self-collision).
        ops: (usize, usize),
    },
    /// More operations need a stage of some class at a residue than there
    /// are physical units (run-time-choice checking).
    CapacityExceeded {
        /// Class whose capacity is exceeded.
        class: OpClass,
        /// Stage within the unit type.
        stage: usize,
        /// Time step (mod period) of the overflow.
        residue: u32,
        /// Units demanded.
        used: u32,
        /// Units available.
        available: u32,
    },
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictError::UnknownClass { op } => write!(f, "op {op} has an unknown class"),
            ConflictError::MissingAssignment { op } => {
                write!(f, "op {op} has no function-unit assignment")
            }
            ConflictError::FuOutOfRange { op, fu, available } => {
                write!(f, "op {op} assigned unit {fu} of {available}")
            }
            ConflictError::OffsetOutOfRange { op, offset } => {
                write!(f, "op {op} offset {offset} not reduced mod period")
            }
            ConflictError::StageCollision {
                class,
                fu,
                stage,
                residue,
                ops,
            } => write!(
                f,
                "ops {} and {} collide on {class} unit {fu} stage {stage} at t={residue}",
                ops.0, ops.1
            ),
            ConflictError::CapacityExceeded {
                class,
                stage,
                residue,
                used,
                available,
            } => write!(
                f,
                "{used} ops need {class} stage {stage} at t={residue}, only {available} units"
            ),
        }
    }
}

impl Error for ConflictError {}

impl From<MachineError> for ConflictError {
    fn from(_: MachineError) -> Self {
        // Only reachable through per-op class lookups; index is patched by
        // the call sites, which construct UnknownClass directly.
        ConflictError::UnknownClass { op: usize::MAX }
    }
}

/// A precompiled structural-conflict oracle for one period.
///
/// Implementors (the hazard automata of `swp-automata`) answer the
/// checker's pairwise question — *do two operations on the same
/// physical unit, issued `delta` cycles apart, collide on some stage?* —
/// in O(1) instead of a reservation-table scan. The trait lives here,
/// not in the automata crate, because the checker is the consumer and
/// the machine crate sits below the automata crate in the dependency
/// order.
///
/// Contract: a `Some(verdict)` must agree exactly with the naive
/// reservation-table scan for the machine the oracle was compiled from;
/// `None` means "I don't know this class" and forces a fallback scan.
/// [`check_fixed_assignment_with`] debug-asserts the agreement on every
/// query path, and re-derives the authoritative error by exact scan
/// whenever the oracle reports any conflict, so oracle acceleration can
/// never change an answer — only the time to compute it.
pub trait ConflictOracle: Sync {
    /// The period the oracle was compiled for. A checker invoked with a
    /// different period ignores the oracle entirely.
    fn period(&self) -> u32;

    /// Whether two ops of classes `a` and `b` on the same physical
    /// unit, issued `delta` cycles apart (callers reduce mod period),
    /// collide on some stage. `None` if a class is unknown.
    fn same_unit_collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool>;

    /// Whether a single op of `class` collides with its own periodic
    /// repetitions at this period. `None` if the class is unknown.
    fn self_collides(&self, class: OpClass) -> Option<bool>;

    /// Telemetry hook: invoked once each time a checker abandons this
    /// oracle for an exact reservation-table scan.
    fn record_fallback(&self) {}
}

/// Verifies a *mapped* schedule: every operation carries a physical unit,
/// and no stage of any unit is claimed twice at the same time step mod
/// `period`. Self-collision of a wrapping operation (the modulo
/// scheduling constraint) is caught too.
///
/// # Errors
///
/// The first [`ConflictError`] found, scanning ops in order.
pub fn check_fixed_assignment(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
) -> Result<(), ConflictError> {
    assert!(period > 0, "period must be positive");
    // (class, fu, stage, residue) -> op index that holds it
    let mut usage: HashMap<(usize, u32, usize, u32), usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        let fu = op.fu.ok_or(ConflictError::MissingAssignment { op: i })?;
        if fu >= fu_type.count {
            return Err(ConflictError::FuOutOfRange {
                op: i,
                fu,
                available: fu_type.count,
            });
        }
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let rt = &fu_type.reservation;
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let residue = (op.offset + l as u32) % period;
                let key = (op.class.index(), fu, s, residue);
                if let Some(&other) = usage.get(&key) {
                    return Err(ConflictError::StageCollision {
                        class: op.class,
                        fu,
                        stage: s,
                        residue,
                        ops: (other, i),
                    });
                }
                usage.insert(key, i);
            }
        }
    }
    Ok(())
}

/// [`check_fixed_assignment`] with an optional [`ConflictOracle`] fast
/// path: per-op sanity checks run in the same scan order as the naive
/// checker, but the quadratic stage-overlap test collapses to one
/// collision-matrix bit test per same-unit pair.
///
/// Result fidelity is exact, not approximate. The first error of the
/// naive checker for op `i` is either a per-op sanity error (checked
/// here identically, in order) or a stage collision in which `i` is the
/// later op — and the oracle's pairwise verdict agrees with the scan on
/// precisely that predicate. On the first oracle-reported conflict (or
/// `None` verdict, or period mismatch) the whole check re-runs as an
/// exact scan, whose error is returned verbatim; a clean oracle run is
/// debug-asserted against the exact scan. Either way the result is
/// byte-identical to [`check_fixed_assignment`].
///
/// # Errors
///
/// The first [`ConflictError`] found, scanning ops in order.
pub fn check_fixed_assignment_with(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
    oracle: Option<&dyn ConflictOracle>,
) -> Result<(), ConflictError> {
    let Some(oracle) = oracle else {
        return check_fixed_assignment(machine, period, ops);
    };
    assert!(period > 0, "period must be positive");
    if oracle.period() != period {
        oracle.record_fallback();
        return check_fixed_assignment(machine, period, ops);
    }
    // Offsets already placed on each (class, fu) physical unit.
    let mut units: HashMap<(usize, u32), Vec<u32>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        let fu = op.fu.ok_or(ConflictError::MissingAssignment { op: i })?;
        if fu >= fu_type.count {
            return Err(ConflictError::FuOutOfRange {
                op: i,
                fu,
                available: fu_type.count,
            });
        }
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let self_verdict = oracle.self_collides(op.class);
        if self_verdict != Some(false) {
            oracle.record_fallback();
            let exact = check_fixed_assignment(machine, period, ops);
            debug_assert!(
                self_verdict != Some(true) || exact.is_err(),
                "oracle reported self-collision but exact scan found none"
            );
            return exact;
        }
        let placed = units.entry((op.class.index(), fu)).or_default();
        for &earlier in placed.iter() {
            let delta = (op.offset + period - earlier) % period;
            let verdict = oracle.same_unit_collides(op.class, op.class, delta);
            if verdict != Some(false) {
                oracle.record_fallback();
                let exact = check_fixed_assignment(machine, period, ops);
                debug_assert!(
                    verdict != Some(true) || exact.is_err(),
                    "oracle reported a pair collision but exact scan found none"
                );
                return exact;
            }
        }
        placed.push(op.offset);
    }
    debug_assert_eq!(
        check_fixed_assignment(machine, period, ops),
        Ok(()),
        "oracle accepted a schedule the exact scan rejects"
    );
    Ok(())
}

/// Verifies a schedule under *run-time unit choice*: operations are not
/// bound to physical units; the check only demands that, per class and
/// stage, at most `count` operations claim any time step mod `period`.
///
/// This is the resource constraint of the paper's eq. (5). A schedule can
/// pass this check yet admit **no** fixed assignment — that gap is the
/// paper's motivation (Table 1 / Table 2).
///
/// # Errors
///
/// The first [`ConflictError`] found.
pub fn check_capacity_only(
    machine: &Machine,
    period: u32,
    ops: &[PlacedOp],
) -> Result<(), ConflictError> {
    assert!(period > 0, "period must be positive");
    // (class, stage, residue) -> demand
    let mut demand: HashMap<(usize, usize, u32), u32> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine
            .fu_type(op.class)
            .map_err(|_| ConflictError::UnknownClass { op: i })?;
        if op.offset >= period {
            return Err(ConflictError::OffsetOutOfRange {
                op: i,
                offset: op.offset,
            });
        }
        let rt = &fu_type.reservation;
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let residue = (op.offset + l as u32) % period;
                *demand.entry((op.class.index(), s, residue)).or_insert(0) += 1;
            }
        }
    }
    let mut keys: Vec<_> = demand.keys().copied().collect();
    keys.sort_unstable();
    for (class_idx, stage, residue) in keys {
        let used = demand[&(class_idx, stage, residue)];
        let class = OpClass::new(class_idx);
        // Every key came from an op whose class resolved above; if the
        // lookup still fails, report it rather than crash the checker.
        let Ok(fu_type) = machine.fu_type(class) else {
            return Err(ConflictError::UnknownClass { op: usize::MAX });
        };
        let available = fu_type.count;
        if used > available {
            return Err(ConflictError::CapacityExceeded {
                class,
                stage,
                residue,
                used,
                available,
            });
        }
    }
    Ok(())
}

/// Attempts a greedy (first-fit) fixed assignment of `ops`, returning the
/// per-op unit indices, or `None` if first-fit fails.
///
/// This is *not* complete — the paper's point is that some schedules
/// admit an assignment only under a smarter (coloring) analysis, and some
/// admit none at all — but it is a useful baseline and a fast path.
pub fn greedy_assignment(machine: &Machine, period: u32, ops: &[PlacedOp]) -> Option<Vec<u32>> {
    assert!(period > 0, "period must be positive");
    let mut usage: HashMap<(usize, u32, usize, u32), usize> = HashMap::new();
    let mut out = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let fu_type = machine.fu_type(op.class).ok()?;
        let rt = &fu_type.reservation;
        let mut chosen = None;
        'fu: for fu in 0..fu_type.count {
            for s in 0..rt.stages() {
                for l in rt.stage_offsets(s) {
                    let residue = (op.offset + l as u32) % period;
                    if usage.contains_key(&(op.class.index(), fu, s, residue)) {
                        continue 'fu;
                    }
                }
            }
            chosen = Some(fu);
            break;
        }
        let fu = chosen?;
        for s in 0..rt.stages() {
            for l in rt.stage_offsets(s) {
                let residue = (op.offset + l as u32) % period;
                usage.insert((op.class.index(), fu, s, residue), i);
            }
        }
        out.push(fu);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn fp(offset: u32, fu: Option<u32>) -> PlacedOp {
        PlacedOp {
            class: OpClass::new(1),
            offset,
            fu,
        }
    }

    #[test]
    fn disjoint_ops_pass() {
        let m = Machine::example_pldi95();
        // FP hazard table occupies stage3 at offsets 1,2. Two ops, two units.
        let ops = [fp(0, Some(0)), fp(0, Some(1))];
        assert_eq!(check_fixed_assignment(&m, 4, &ops), Ok(()));
    }

    #[test]
    fn same_unit_collision_detected() {
        let m = Machine::example_pldi95();
        let ops = [fp(0, Some(0)), fp(1, Some(0))]; // stage3: {1,2} vs {2,3}
        match check_fixed_assignment(&m, 4, &ops) {
            Err(ConflictError::StageCollision { stage, ops, .. }) => {
                assert_eq!(stage, 2);
                assert_eq!(ops, (0, 1));
            }
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn wraparound_self_collision_detected() {
        // Non-pipelined lat 2 at period 1: op collides with its own next
        // instance.
        let m = Machine::example_non_pipelined();
        let ops = [fp(0, Some(0))];
        match check_fixed_assignment(&m, 1, &ops) {
            Err(ConflictError::StageCollision { ops, .. }) => assert_eq!(ops, (0, 0)),
            other => panic!("expected self-collision, got {other:?}"),
        }
    }

    #[test]
    fn missing_assignment_rejected() {
        let m = Machine::example_pldi95();
        assert_eq!(
            check_fixed_assignment(&m, 4, &[fp(0, None)]),
            Err(ConflictError::MissingAssignment { op: 0 })
        );
    }

    #[test]
    fn fu_out_of_range_rejected() {
        let m = Machine::example_pldi95();
        assert!(matches!(
            check_fixed_assignment(&m, 4, &[fp(0, Some(5))]),
            Err(ConflictError::FuOutOfRange { fu: 5, .. })
        ));
    }

    #[test]
    fn offset_must_be_reduced() {
        let m = Machine::example_pldi95();
        assert!(matches!(
            check_fixed_assignment(&m, 4, &[fp(7, Some(0))]),
            Err(ConflictError::OffsetOutOfRange { offset: 7, .. })
        ));
    }

    #[test]
    fn capacity_check_allows_runtime_choice() {
        let m = Machine::example_pldi95();
        // Three FP ops at offsets 0, 0, 2 with 2 units at period 4:
        // issue stage demands: t0 x2, t2 x1 -> within capacity 2.
        let ops = [fp(0, None), fp(0, None), fp(2, None)];
        assert_eq!(check_capacity_only(&m, 4, &ops), Ok(()));
    }

    #[test]
    fn capacity_overflow_detected() {
        let m = Machine::example_pldi95();
        let ops = [fp(0, None), fp(0, None), fp(0, None)];
        match check_capacity_only(&m, 4, &ops) {
            Err(ConflictError::CapacityExceeded {
                used, available, ..
            }) => {
                assert_eq!((used, available), (3, 2));
            }
            other => panic!("expected capacity error, got {other:?}"),
        }
    }

    #[test]
    fn greedy_assignment_round_trips_checker() {
        let m = Machine::example_pldi95();
        let mut ops = vec![fp(0, None), fp(2, None), fp(1, None)];
        let assign = greedy_assignment(&m, 4, &ops).expect("assignable");
        for (op, fu) in ops.iter_mut().zip(&assign) {
            op.fu = Some(*fu);
        }
        assert_eq!(check_fixed_assignment(&m, 4, &ops), Ok(()));
    }

    /// An exact-by-construction oracle: answers by scanning the machine's
    /// reservation tables, so it is always right; `strict` poisons the
    /// verdicts to `None` to force the fallback path.
    struct ScanOracle {
        machine: Machine,
        period: u32,
        mute: bool,
        fallbacks: std::sync::atomic::AtomicU32,
    }

    impl ScanOracle {
        fn new(machine: Machine, period: u32) -> Self {
            ScanOracle {
                machine,
                period,
                mute: false,
                fallbacks: std::sync::atomic::AtomicU32::new(0),
            }
        }

        fn fallback_count(&self) -> u32 {
            self.fallbacks.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl ConflictOracle for ScanOracle {
        fn period(&self) -> u32 {
            self.period
        }
        fn same_unit_collides(&self, a: OpClass, b: OpClass, delta: u32) -> Option<bool> {
            if self.mute {
                return None;
            }
            if a != b {
                return Some(false);
            }
            let rt = &self.machine.fu_type(a).ok()?.reservation;
            let mut hit = false;
            for s in 0..rt.stages() {
                let offs = rt.stage_offsets(s);
                for &l1 in &offs {
                    for &l2 in &offs {
                        let d = (l1 as i64 - l2 as i64).rem_euclid(i64::from(self.period));
                        hit |= d as u32 == delta % self.period;
                    }
                }
            }
            Some(hit)
        }
        fn self_collides(&self, class: OpClass) -> Option<bool> {
            if self.mute {
                return None;
            }
            let rt = &self.machine.fu_type(class).ok()?.reservation;
            Some(!rt.modulo_feasible(self.period))
        }
        fn record_fallback(&self) {
            self.fallbacks
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn oracle_path_matches_naive_on_clean_and_colliding_schedules() {
        let m = Machine::example_pldi95();
        let oracle = ScanOracle::new(m.clone(), 4);
        for ops in [
            vec![fp(0, Some(0)), fp(0, Some(1))],
            vec![fp(0, Some(0)), fp(1, Some(0))],
            vec![fp(0, Some(0)), fp(2, Some(0)), fp(1, Some(1))],
            vec![fp(0, None)],
            vec![fp(9, Some(0))],
            vec![fp(0, Some(7))],
        ] {
            assert_eq!(
                check_fixed_assignment_with(&m, 4, &ops, Some(&oracle)),
                check_fixed_assignment(&m, 4, &ops),
            );
        }
    }

    #[test]
    fn oracle_error_fidelity_preserves_scan_order_first_error() {
        // Ops 0 and 1 collide; op 2 has a bad offset. The naive scan
        // reports the collision (found while scanning op 1, before op
        // 2's sanity checks run) — the oracle path must match.
        let m = Machine::example_pldi95();
        let oracle = ScanOracle::new(m.clone(), 4);
        let ops = [fp(0, Some(0)), fp(1, Some(0)), fp(9, Some(0))];
        let exact = check_fixed_assignment(&m, 4, &ops);
        assert!(matches!(exact, Err(ConflictError::StageCollision { .. })));
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&oracle)),
            exact
        );
        assert!(oracle.fallback_count() >= 1);
    }

    #[test]
    fn period_mismatch_and_unknown_verdicts_fall_back() {
        let m = Machine::example_pldi95();
        let stale = ScanOracle::new(m.clone(), 6); // compiled for T=6
        let ops = [fp(0, Some(0)), fp(1, Some(0))];
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&stale)),
            check_fixed_assignment(&m, 4, &ops)
        );
        assert_eq!(stale.fallback_count(), 1);
        let mut mute = ScanOracle::new(m.clone(), 4);
        mute.mute = true;
        assert_eq!(
            check_fixed_assignment_with(&m, 4, &ops, Some(&mute)),
            check_fixed_assignment(&m, 4, &ops)
        );
        assert_eq!(mute.fallback_count(), 1);
    }

    #[test]
    fn oracle_detects_wraparound_self_collision() {
        let m = Machine::example_non_pipelined();
        let oracle = ScanOracle::new(m.clone(), 1);
        let ops = [fp(0, Some(0))];
        assert_eq!(
            check_fixed_assignment_with(&m, 1, &ops, Some(&oracle)),
            check_fixed_assignment(&m, 1, &ops)
        );
    }

    #[test]
    fn greedy_assignment_can_fail_where_capacity_passes() {
        // The paper's motivating gap: capacity fine, first-fit mapping
        // impossible at this period. Non-pipelined FP lat 2, 2 units,
        // period 4, ops at offsets 0,1,2,3: capacity per step is 2 (each
        // op covers two consecutive steps) but the wrap structure forces
        // every pair of units to conflict under first-fit order 0,1,2,3?
        // First-fit: op@0 -> fu0 {0,1}; op@1 -> fu1 {1,2}; op@2 -> fu0
        // {2,3}; op@3 -> fu1 {3,0}. That works. Instead use 3 ops on ONE
        // unit at period 6 with offsets 0,2,4 (fits exactly), then a 4th
        // op anywhere fails.
        let m = Machine::example_non_pipelined();
        let mut ops = vec![fp(0, None), fp(2, None), fp(4, None)];
        // occupy second unit fully too
        ops.extend([fp(0, None), fp(2, None), fp(4, None)]);
        assert_eq!(check_capacity_only(&m, 6, &ops), Ok(()));
        assert!(greedy_assignment(&m, 6, &ops).is_some());
        ops.push(fp(1, None));
        assert!(greedy_assignment(&m, 6, &ops).is_none());
    }
}
