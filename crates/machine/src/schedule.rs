//! Periodic schedules and their `T`/`K`/`A` matrix form.
//!
//! A software-pipelined schedule is *linear periodic* (Reiter 1968):
//! instruction `i` of iteration `j` starts at `j·T + t_i`. The paper
//! factors the start-time vector as
//!
//! ```text
//! T_vec = T·K + Aᵀ·[0, 1, …, T−1]ᵀ          (paper eq. (1))
//! ```
//!
//! where `K` counts whole periods (`k_i = ⌊t_i / T⌋`) and `A` is the
//! `T×N` 0-1 matrix with `a_{t,i} = 1` iff instruction `i` issues at
//! time-step `t` of the repetitive pattern (`t = t_i mod T`). [`Matrices`]
//! reproduces exactly this factoring; Figure 3 of the paper is
//! regenerated from it.

use crate::checker::{
    check_capacity_only, check_fixed_assignment_layout, check_fixed_assignment_with, ConflictError,
    ConflictOracle, PlacedOp,
};
use crate::machine::Machine;
use crate::DataLayout;
use std::fmt;
use swp_ddg::{Ddg, NodeId};

/// A software-pipelined schedule of one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelinedSchedule {
    period: u32,
    start_times: Vec<u32>,
    assignment: Vec<Option<u32>>,
}

/// The `T`, `K`, `A` decomposition of a schedule (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrices {
    /// The period `T`.
    pub period: u32,
    /// Start times `t_i`.
    pub t: Vec<u32>,
    /// Whole periods `k_i = ⌊t_i / T⌋`.
    pub k: Vec<u32>,
    /// `T×N` issue matrix, row-major: `a[t][i] = 1` iff `i` issues at
    /// pattern step `t`.
    pub a: Vec<Vec<u8>>,
}

/// A violation found by [`PipelinedSchedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The schedule has a different node count than the DDG.
    WrongArity {
        /// Nodes in the schedule.
        schedule: usize,
        /// Nodes in the DDG.
        ddg: usize,
    },
    /// A dependence `t_j − t_i ≥ d_i − T·m_ij` is violated.
    DependenceViolated {
        /// Producing node.
        src: NodeId,
        /// Consuming node.
        dst: NodeId,
        /// Required minimum separation `d_i − T·m_ij`.
        required: i64,
        /// Actual separation `t_j − t_i`.
        actual: i64,
    },
    /// The machine checker found a structural conflict.
    Conflict(ConflictError),
    /// Register pressure exceeds the configured `max_live` bound.
    PressureExceeded {
        /// Pattern residue where the peak occurs.
        residue: u32,
        /// Values live at that residue.
        live: u32,
        /// The configured bound.
        limit: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongArity { schedule, ddg } => {
                write!(f, "schedule has {schedule} ops but DDG has {ddg}")
            }
            ValidationError::DependenceViolated {
                src,
                dst,
                required,
                actual,
            } => write!(
                f,
                "dependence {}->{} needs separation {required}, got {actual}",
                src.index(),
                dst.index()
            ),
            ValidationError::Conflict(c) => write!(f, "resource conflict: {c}"),
            ValidationError::PressureExceeded {
                residue,
                live,
                limit,
            } => write!(
                f,
                "register pressure {live} at residue {residue} exceeds max_live {limit}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<ConflictError> for ValidationError {
    fn from(c: ConflictError) -> Self {
        ValidationError::Conflict(c)
    }
}

impl PipelinedSchedule {
    /// Creates a schedule from raw start times and (optional) unit
    /// assignments, one entry per DDG node in id order.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or the two vectors disagree in length.
    pub fn new(period: u32, start_times: Vec<u32>, assignment: Vec<Option<u32>>) -> Self {
        assert!(period > 0, "period must be positive");
        assert_eq!(
            start_times.len(),
            assignment.len(),
            "start_times and assignment must align"
        );
        PipelinedSchedule {
            period,
            start_times,
            assignment,
        }
    }

    /// The initiation interval `T`.
    pub fn initiation_interval(&self) -> u32 {
        self.period
    }

    /// Number of scheduled operations.
    pub fn num_ops(&self) -> usize {
        self.start_times.len()
    }

    /// Start time `t_i` of node `n` (iteration 0).
    pub fn start_time(&self, n: NodeId) -> u32 {
        self.start_times[n.index()]
    }

    /// Pattern offset `t_i mod T`.
    pub fn offset(&self, n: NodeId) -> u32 {
        self.start_times[n.index()] % self.period
    }

    /// Whole periods `k_i = ⌊t_i / T⌋` — the pipeline stage of `n`.
    pub fn k(&self, n: NodeId) -> u32 {
        self.start_times[n.index()] / self.period
    }

    /// Physical unit of `n`, if the schedule is mapped.
    pub fn fu(&self, n: NodeId) -> Option<u32> {
        self.assignment[n.index()]
    }

    /// Whether every operation carries a unit assignment.
    pub fn is_mapped(&self) -> bool {
        self.assignment.iter().all(|a| a.is_some())
    }

    /// All start times in node order.
    pub fn start_times(&self) -> &[u32] {
        &self.start_times
    }

    /// All unit assignments in node order.
    pub fn assignment(&self) -> &[Option<u32>] {
        &self.assignment
    }

    /// The `T`/`K`/`A` factoring of this schedule (paper eq. (1)).
    pub fn matrices(&self) -> Matrices {
        let period = self.period;
        let n = self.start_times.len();
        let mut a = vec![vec![0u8; n]; period as usize];
        for (i, &t) in self.start_times.iter().enumerate() {
            a[(t % period) as usize][i] = 1;
        }
        Matrices {
            period,
            t: self.start_times.clone(),
            k: self.start_times.iter().map(|&t| t / period).collect(),
            a,
        }
    }

    /// The operations as seen by the machine checker.
    pub fn placed_ops(&self, ddg: &Ddg) -> Vec<PlacedOp> {
        ddg.nodes()
            .map(|(id, node)| PlacedOp {
                class: node.class,
                offset: self.offset(id),
                fu: self.fu(id),
            })
            .collect()
    }

    /// Full validation against the DDG and machine:
    ///
    /// 1. every dependence satisfies `t_j − t_i ≥ d_i − T·m_ij`;
    /// 2. if mapped, no two ops collide on any stage of any unit
    ///    (including wraparound self-collisions); if unmapped, per-class
    ///    capacity suffices at every pattern step.
    ///
    /// # Errors
    ///
    /// The first [`ValidationError`] found.
    pub fn validate(&self, ddg: &Ddg, machine: &Machine) -> Result<(), ValidationError> {
        self.validate_with(ddg, machine, None)
    }

    /// [`PipelinedSchedule::validate`] with an optional precompiled
    /// [`ConflictOracle`] accelerating the mapped-conflict check (the
    /// oracle is ignored for unmapped schedules and for periods it was
    /// not compiled for). Results are byte-identical to `validate`; see
    /// [`crate::checker::check_fixed_assignment_with`].
    ///
    /// # Errors
    ///
    /// The first [`ValidationError`] found.
    pub fn validate_with(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        oracle: Option<&dyn ConflictOracle>,
    ) -> Result<(), ValidationError> {
        self.validate_layout(ddg, machine, oracle, DataLayout::default())
    }

    /// [`PipelinedSchedule::validate_with`] with an explicit
    /// [`DataLayout`] for the mapped-conflict check when no oracle
    /// applies: `Flat` probes per-unit u64 occupancy words, `Legacy`
    /// runs the original per-cell hash scan. When an oracle is supplied
    /// it takes the oracle fast path regardless of layout (its exact
    /// fallback is the legacy scan). All combinations return
    /// byte-identical results.
    ///
    /// # Errors
    ///
    /// The first [`ValidationError`] found.
    pub fn validate_layout(
        &self,
        ddg: &Ddg,
        machine: &Machine,
        oracle: Option<&dyn ConflictOracle>,
        layout: DataLayout,
    ) -> Result<(), ValidationError> {
        if self.start_times.len() != ddg.num_nodes() {
            return Err(ValidationError::WrongArity {
                schedule: self.start_times.len(),
                ddg: ddg.num_nodes(),
            });
        }
        for e in ddg.edges() {
            let d = ddg.node(e.src).latency as i64;
            let required = d - self.period as i64 * e.distance as i64;
            let actual =
                self.start_times[e.dst.index()] as i64 - self.start_times[e.src.index()] as i64;
            if actual < required {
                return Err(ValidationError::DependenceViolated {
                    src: e.src,
                    dst: e.dst,
                    required,
                    actual,
                });
            }
        }
        let ops = self.placed_ops(ddg);
        if self.is_mapped() {
            match oracle {
                Some(_) => check_fixed_assignment_with(machine, self.period, &ops, oracle)?,
                None => check_fixed_assignment_layout(machine, self.period, &ops, layout)?,
            }
        } else {
            check_capacity_only(machine, self.period, &ops)?;
        }
        Ok(())
    }

    /// The flat schedule of the first `iterations` iterations:
    /// `(iteration, node, start_cycle)` triples sorted by cycle. Renders
    /// the prolog / repetitive pattern / epilog view of paper Figure 2.
    pub fn flat(&self, iterations: u32) -> Vec<(u32, NodeId, u64)> {
        let mut out = Vec::new();
        for j in 0..iterations {
            for (i, &t) in self.start_times.iter().enumerate() {
                out.push((
                    j,
                    NodeId::from_index(i),
                    j as u64 * self.period as u64 + t as u64,
                ));
            }
        }
        out.sort_by_key(|&(j, n, c)| (c, j, n));
        out
    }

    /// Buffer (logical register) demand per dependence, following
    /// Ning & Gao: the value flowing along edge `(i, j)` with distance
    /// `m` has `⌈(t_j − t_i)/T⌉ + m` instances live at once. Returns the
    /// counts in edge order plus their sum.
    pub fn buffer_requirements(&self, ddg: &Ddg) -> (Vec<u32>, u32) {
        let t = self.period as i64;
        let per_edge: Vec<u32> = ddg
            .edges()
            .map(|e| {
                let diff =
                    self.start_times[e.dst.index()] as i64 - self.start_times[e.src.index()] as i64;
                let ceil_div = diff.div_euclid(t) + i64::from(diff.rem_euclid(t) != 0);
                (ceil_div + e.distance as i64).max(0) as u32
            })
            .collect();
        let total = per_edge.iter().sum();
        (per_edge, total)
    }

    /// The live range `L_i` of each node's value, in node order: from
    /// issue to the last consuming *issue* across iteration distance,
    /// `max_j (t_j + T·m_ij) − t_i` over out-edges of `i` (clamped at 0;
    /// 0 for values never consumed). Issue-based — deliberately free of
    /// latencies — so that uniformly scaling latencies cannot manufacture
    /// pressure a scaled schedule did not already have.
    pub fn live_ranges(&self, ddg: &Ddg) -> Vec<i64> {
        let t = self.period as i64;
        let mut live = vec![0i64; self.start_times.len()];
        for e in ddg.edges() {
            let span = self.start_times[e.dst.index()] as i64 + t * e.distance as i64
                - self.start_times[e.src.index()] as i64;
            let l = &mut live[e.src.index()];
            *l = (*l).max(span);
        }
        live
    }

    /// Values simultaneously live at each pattern residue `ρ` of the
    /// steady state. A value with live range `L_i` contributes
    /// `⌈(L_i − δ)/T⌉` overlapping iteration instances at residue `ρ`,
    /// where `δ = (ρ − t_i) mod T` — the modulo analogue of the
    /// Ning–Gao buffer count, per residue instead of per edge.
    pub fn live_per_residue(&self, ddg: &Ddg) -> Vec<u32> {
        let t = self.period as i64;
        let mut per_residue = vec![0u32; self.period as usize];
        for (i, l) in self.live_ranges(ddg).into_iter().enumerate() {
            if l <= 0 {
                continue;
            }
            let off = (self.start_times[i] % self.period) as i64;
            for (rho, slot) in per_residue.iter_mut().enumerate() {
                let delta = (rho as i64 - off).rem_euclid(t);
                let instances = (l - delta + t - 1).div_euclid(t).max(0);
                *slot += instances as u32;
            }
        }
        per_residue
    }

    /// Peak register pressure: the maximum of
    /// [`PipelinedSchedule::live_per_residue`].
    pub fn max_live(&self, ddg: &Ddg) -> u32 {
        self.live_per_residue(ddg).into_iter().max().unwrap_or(0)
    }

    /// Checks the schedule against a register-pressure bound: no more
    /// than `limit` values live at any pattern residue.
    ///
    /// # Errors
    ///
    /// [`ValidationError::PressureExceeded`] at the first offending
    /// residue.
    pub fn validate_pressure(&self, ddg: &Ddg, limit: u32) -> Result<(), ValidationError> {
        for (rho, live) in self.live_per_residue(ddg).into_iter().enumerate() {
            if live > limit {
                return Err(ValidationError::PressureExceeded {
                    residue: rho as u32,
                    live,
                    limit,
                });
            }
        }
        Ok(())
    }

    /// Length of one iteration's schedule (makespan of iteration 0).
    pub fn span(&self, ddg: &Ddg) -> u32 {
        ddg.nodes()
            .map(|(id, n)| self.start_time(id) + n.latency)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Matrices {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T = {}, t = {:?}, K = {:?}\nA =\n",
            self.period, self.t, self.k
        )?;
        for row in &self.a {
            write!(f, "  [")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;

    /// The paper's Schedule B: T = 4, t = [0,1,3,5,7,11].
    fn schedule_b() -> PipelinedSchedule {
        PipelinedSchedule::new(
            4,
            vec![0, 1, 3, 5, 7, 11],
            vec![Some(0), Some(0), Some(0), Some(0), Some(1), Some(0)],
        )
    }

    #[test]
    fn matrices_match_paper_figure_3() {
        let m = schedule_b().matrices();
        assert_eq!(m.k, vec![0, 0, 0, 1, 1, 2]); // paper's K
                                                 // offsets: [0,1,3,1,3,3]
        assert_eq!(m.a[0], vec![1, 0, 0, 0, 0, 0]);
        assert_eq!(m.a[1], vec![0, 1, 0, 1, 0, 0]); // row shown in the paper
        assert_eq!(m.a[2], vec![0, 0, 0, 0, 0, 0]);
        assert_eq!(m.a[3], vec![0, 0, 1, 0, 1, 1]); // row shown in the paper
    }

    #[test]
    fn offsets_and_k_consistent() {
        let s = schedule_b();
        for i in 0..6 {
            let n = NodeId::from_index(i);
            assert_eq!(s.k(n) * 4 + s.offset(n), s.start_time(n));
        }
    }

    #[test]
    fn flat_schedule_sorted_and_periodic() {
        let s = schedule_b();
        let flat = s.flat(3);
        assert_eq!(flat.len(), 18);
        assert!(flat.windows(2).all(|w| w[0].2 <= w[1].2));
        // i0 of iteration 2 starts at 8.
        assert!(flat.contains(&(2, NodeId::from_index(0), 8)));
    }

    #[test]
    fn validate_catches_dependence_violation() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        let machine = Machine::example_clean();
        let bad = PipelinedSchedule::new(4, vec![0, 1], vec![Some(0), Some(1)]);
        assert!(matches!(
            bad.validate(&g, &machine),
            Err(ValidationError::DependenceViolated { .. })
        ));
        let good = PipelinedSchedule::new(4, vec![0, 2], vec![Some(0), Some(1)]);
        assert_eq!(good.validate(&g, &machine), Ok(()));
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let g = Ddg::new();
        let s = PipelinedSchedule::new(2, vec![0], vec![None]);
        assert!(matches!(
            s.validate(&g, &Machine::example_clean()),
            Err(ValidationError::WrongArity { .. })
        ));
    }

    #[test]
    fn loop_carried_dependence_relaxes_with_distance() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        g.add_edge(a, a, 1).unwrap(); // t_a >= t_a + 2 - T  -> T >= 2
        let machine = Machine::example_clean();
        let s1 = PipelinedSchedule::new(1, vec![0], vec![Some(0)]);
        assert!(s1.validate(&g, &machine).is_err());
        let s2 = PipelinedSchedule::new(2, vec![0], vec![Some(0)]);
        assert_eq!(s2.validate(&g, &machine), Ok(()));
    }

    #[test]
    fn live_counts_follow_the_ceiling_formula() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(0), 1);
        let b = g.add_node("b", OpClass::new(0), 1);
        g.add_edge(a, b, 0).unwrap();
        // T=2, t=[0,1]: L_a = 1 -> live only at residue 0; b unread.
        let s = PipelinedSchedule::new(2, vec![0, 1], vec![None, None]);
        assert_eq!(s.live_ranges(&g), vec![1, 0]);
        assert_eq!(s.live_per_residue(&g), vec![1, 0]);
        assert_eq!(s.max_live(&g), 1);
        assert_eq!(s.validate_pressure(&g, 1), Ok(()));
        assert!(matches!(
            s.validate_pressure(&g, 0),
            Err(ValidationError::PressureExceeded {
                residue: 0,
                live: 1,
                limit: 0
            })
        ));
    }

    #[test]
    fn live_range_of_a_full_period_covers_every_residue_once() {
        // Self-loop at distance 1: L = T, exactly one instance live at
        // every residue; L = T+1 overlaps two instances at the issue
        // residue.
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(0), 1);
        g.add_edge(a, a, 1).unwrap();
        let s = PipelinedSchedule::new(3, vec![0], vec![None]);
        assert_eq!(s.live_ranges(&g), vec![3]);
        assert_eq!(s.live_per_residue(&g), vec![1, 1, 1]);

        let mut g2 = Ddg::new();
        let a = g2.add_node("a", OpClass::new(0), 1);
        let b = g2.add_node("b", OpClass::new(0), 1);
        g2.add_edge(a, b, 1).unwrap(); // L_a = 1 + 3 - 0 = 4 = T+1
        let s2 = PipelinedSchedule::new(3, vec![0, 1], vec![None, None]);
        assert_eq!(s2.live_ranges(&g2), vec![4, 0]);
        assert_eq!(s2.live_per_residue(&g2), vec![2, 1, 1]);
        assert_eq!(s2.max_live(&g2), 2);
    }

    #[test]
    fn span_is_makespan() {
        let mut g = Ddg::new();
        let a = g.add_node("a", OpClass::new(1), 2);
        let b = g.add_node("b", OpClass::new(2), 3);
        g.add_edge(a, b, 0).unwrap();
        let s = PipelinedSchedule::new(4, vec![0, 2], vec![None, None]);
        assert_eq!(s.span(&g), 5);
    }
}
