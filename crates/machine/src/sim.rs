//! Cycle-accurate execution of a flat schedule.
//!
//! Where [`crate::checker`] verifies one period of the repetitive
//! pattern algebraically, this module *runs* the schedule: every issue
//! of every iteration claims its reservation-table cells on a concrete
//! unit, cycle by cycle, including prolog and epilog. Two modes:
//!
//! * **fixed** — each operation uses its assigned unit every iteration
//!   (the paper's mapped schedules);
//! * **dynamic** — each *instance* picks any free unit at issue time
//!   (the run-time unit choice of the pre-paper formulations). A
//!   capacity-feasible schedule with no fixed assignment — the paper's
//!   Table 1 gap — executes fine here, which is exactly the paper's
//!   point: the hardware must pay for dynamic selection instead.

// Occupancy updates are clearer with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::machine::Machine;
use crate::schedule::PipelinedSchedule;
use std::error::Error;
use std::fmt;
use swp_ddg::Ddg;

/// How instances choose physical units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitPolicy {
    /// Use the schedule's per-instruction assignment (must be mapped).
    Fixed,
    /// First-fit a free unit per instance at issue time.
    Dynamic,
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The DDG references a class the machine does not define.
    UnknownClass {
        /// Class index without a unit type.
        class: usize,
    },
    /// Fixed policy on an unmapped schedule.
    NotMapped {
        /// Node index without an assignment.
        node: usize,
    },
    /// Two instances collided on a unit stage at a cycle.
    Collision {
        /// Absolute cycle of the collision.
        cycle: u64,
        /// Class index.
        class: usize,
        /// Unit index within the class.
        fu: u32,
        /// Stage index.
        stage: usize,
    },
    /// Dynamic policy found no free unit for an instance.
    NoFreeUnit {
        /// Absolute issue cycle.
        cycle: u64,
        /// Node index of the instance.
        node: usize,
        /// Iteration of the instance.
        iteration: u32,
    },
    /// More instances issued in one cycle than the VLIW bundle allows.
    BundleExceeded {
        /// Absolute cycle of the overflow.
        cycle: u64,
        /// Slot-group name, or `None` when the total width overflowed.
        group: Option<String>,
        /// Instances issued in that cycle (at the point of overflow).
        used: u32,
        /// The bundle's cap for this limit.
        cap: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownClass { class } => {
                write!(f, "machine does not define op class {class}")
            }
            SimError::NotMapped { node } => {
                write!(
                    f,
                    "fixed-unit simulation needs a mapped schedule (node {node})"
                )
            }
            SimError::Collision {
                cycle,
                class,
                fu,
                stage,
            } => write!(
                f,
                "collision at cycle {cycle} on class {class} unit {fu} stage {stage}"
            ),
            SimError::NoFreeUnit {
                cycle,
                node,
                iteration,
            } => write!(
                f,
                "no free unit at cycle {cycle} for node {node} (iteration {iteration})"
            ),
            SimError::BundleExceeded {
                cycle,
                group,
                used,
                cap,
            } => match group {
                Some(g) => write!(
                    f,
                    "{used} issues in slot group `{g}` at cycle {cycle}, cap {cap}"
                ),
                None => write!(f, "{used} issues at cycle {cycle}, bundle width {cap}"),
            },
        }
    }
}

impl Error for SimError {}

/// What a finished simulation observed.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Iterations executed.
    pub iterations: u32,
    /// Cycle at which the last stage use finished.
    pub makespan: u64,
    /// Busy cycles per class, per unit (bottleneck stage of each unit).
    pub busy: Vec<Vec<u64>>,
    /// Sustained initiation rate, iterations per cycle (`→ 1/T` as the
    /// iteration count grows).
    pub rate: f64,
}

impl SimReport {
    /// Utilization of `fu` of `class` over the makespan, in `[0, 1]`.
    pub fn utilization(&self, class: usize, fu: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.busy[class][fu] as f64 / self.makespan as f64
    }
}

/// Runs `iterations` iterations of `schedule` on `machine`.
///
/// # Errors
///
/// See [`SimError`]. A schedule that passed
/// [`PipelinedSchedule::validate`] never fails under the matching policy.
///
/// # Panics
///
/// Panics if the schedule and DDG disagree on node count, or a class is
/// unknown to the machine.
pub fn simulate(
    machine: &Machine,
    ddg: &Ddg,
    schedule: &PipelinedSchedule,
    iterations: u32,
    policy: UnitPolicy,
) -> Result<SimReport, SimError> {
    assert_eq!(schedule.num_ops(), ddg.num_nodes(), "schedule/DDG mismatch");
    let t = schedule.initiation_interval() as u64;
    let max_exec: u64 = machine
        .types()
        .iter()
        .map(|f| f.reservation.exec_time() as u64)
        .max()
        .unwrap_or(1);
    let horizon = iterations as u64 * t
        + schedule.start_times().iter().copied().max().unwrap_or(0) as u64
        + max_exec
        + 1;

    // occupancy[class][fu][stage] = u64 bitset over cycles (one padding
    // word so claims ending at the last cycle can spill a word write).
    let words = (horizon as usize).div_ceil(64) + 1;
    let mut occupancy: Vec<Vec<Vec<Vec<u64>>>> = machine
        .types()
        .iter()
        .map(|f| vec![vec![vec![0u64; words]; f.reservation.stages()]; f.count as usize])
        .collect();
    // A stage row placed at `start` overlaps the occupancy bitset iff any
    // shifted row word ANDs a set bit — the word-parallel form of the old
    // per-cell `Vec<bool>` scan.
    let row_overlaps = |occ: &[u64], row: &[u64], start: u64| {
        let (wo, bo) = ((start / 64) as usize, (start % 64) as u32);
        row.iter().enumerate().any(|(k, &r)| {
            if r == 0 {
                return false;
            }
            let lo = occ.get(wo + k).copied().unwrap_or(0) >> bo;
            let hi = if bo == 0 {
                0
            } else {
                occ.get(wo + k + 1).copied().unwrap_or(0) << (64 - bo)
            };
            (lo | hi) & r != 0
        })
    };
    let row_claim = |occ: &mut [u64], row: &[u64], start: u64| {
        let (wo, bo) = ((start / 64) as usize, (start % 64) as u32);
        for (k, &r) in row.iter().enumerate() {
            if r == 0 {
                continue;
            }
            occ[wo + k] |= r << bo;
            if bo != 0 {
                occ[wo + k + 1] |= r >> (64 - bo);
            }
        }
    };

    // Issue events sorted by cycle (BTreeMap keeps dynamic first-fit
    // deterministic).
    let mut events: Vec<(u64, usize, u32)> = Vec::new(); // (cycle, node, iteration)
    for j in 0..iterations {
        for (id, _) in ddg.nodes() {
            events.push((j as u64 * t + schedule.start_time(id) as u64, id.index(), j));
        }
    }
    events.sort_unstable();

    // Per-cycle issue-bundle accounting: events are cycle-sorted, so
    // one running counter set per cycle suffices.
    let bundle = machine.bundle();
    let mut bundle_cycle = u64::MAX;
    let mut bundle_issued = 0u32;
    let mut bundle_groups: Vec<u32> = bundle.map_or_else(Vec::new, |b| vec![0; b.groups.len()]);

    let mut makespan = 0u64;
    for (cycle, node, iteration) in events {
        let id = swp_ddg::NodeId::from_index(node);
        let class = ddg.node(id).class;
        let fu_type = machine.fu_type(class).map_err(|_| SimError::UnknownClass {
            class: class.index(),
        })?;
        if let Some(b) = bundle {
            if cycle != bundle_cycle {
                bundle_cycle = cycle;
                bundle_issued = 0;
                bundle_groups.iter_mut().for_each(|c| *c = 0);
            }
            bundle_issued += 1;
            if bundle_issued > b.width {
                return Err(SimError::BundleExceeded {
                    cycle,
                    group: None,
                    used: bundle_issued,
                    cap: b.width,
                });
            }
            for (gi, g) in b.groups.iter().enumerate() {
                if g.classes.contains(&class.index()) {
                    bundle_groups[gi] += 1;
                    if bundle_groups[gi] > g.cap {
                        return Err(SimError::BundleExceeded {
                            cycle,
                            group: Some(g.name.clone()),
                            used: bundle_groups[gi],
                            cap: g.cap,
                        });
                    }
                }
            }
        }
        let rt = &fu_type.reservation;
        let fits = |occ: &Vec<Vec<Vec<Vec<u64>>>>, fu: u32| {
            (0..rt.stages())
                .all(|s| !row_overlaps(&occ[class.index()][fu as usize][s], rt.row_words(s), cycle))
        };
        let fu =
            match policy {
                UnitPolicy::Fixed => {
                    let fu = schedule.fu(id).ok_or(SimError::NotMapped { node })?;
                    if !fits(&occupancy, fu) {
                        // Find the exact colliding cell for the report, in the
                        // same stage-major scan order as the old per-cell loop.
                        for s in 0..rt.stages() {
                            for l in rt.stage_offset_iter(s) {
                                let c = cycle + l as u64;
                                if occupancy[class.index()][fu as usize][s][(c / 64) as usize]
                                    >> (c % 64)
                                    & 1
                                    == 1
                                {
                                    return Err(SimError::Collision {
                                        cycle: c,
                                        class: class.index(),
                                        fu,
                                        stage: s,
                                    });
                                }
                            }
                        }
                        unreachable!("fits() said no but no cell found");
                    }
                    fu
                }
                UnitPolicy::Dynamic => (0..fu_type.count).find(|&fu| fits(&occupancy, fu)).ok_or(
                    SimError::NoFreeUnit {
                        cycle,
                        node,
                        iteration,
                    },
                )?,
            };
        for s in 0..rt.stages() {
            let row = rt.row_words(s);
            row_claim(&mut occupancy[class.index()][fu as usize][s], row, cycle);
            if let Some(last) = rt.stage_offset_iter(s).last() {
                makespan = makespan.max(cycle + last as u64 + 1);
            }
        }
    }

    // Busy cycles: bottleneck stage per unit.
    let busy: Vec<Vec<u64>> = occupancy
        .iter()
        .map(|units| {
            units
                .iter()
                .map(|stages| {
                    stages
                        .iter()
                        .map(|cells| cells.iter().map(|w| w.count_ones() as u64).sum::<u64>())
                        .max()
                        .unwrap_or(0)
                })
                .collect()
        })
        .collect();

    Ok(SimReport {
        iterations,
        makespan,
        busy,
        rate: if makespan == 0 {
            0.0
        } else {
            iterations as f64 / makespan as f64
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swp_ddg::OpClass;

    fn fp_pair() -> (Ddg, Machine) {
        let mut g = Ddg::new();
        let a = g.add_node("f1", OpClass::new(1), 2);
        let b = g.add_node("f2", OpClass::new(1), 2);
        g.add_edge(a, b, 0).unwrap();
        (g, Machine::example_pldi95())
    }

    #[test]
    fn fixed_simulation_of_valid_schedule_succeeds() {
        let (g, m) = fp_pair();
        let s = PipelinedSchedule::new(2, vec![0, 2], vec![Some(0), Some(1)]);
        assert_eq!(s.validate(&g, &m), Ok(()));
        let rep = simulate(&m, &g, &s, 50, UnitPolicy::Fixed).expect("runs");
        assert_eq!(rep.iterations, 50);
        // Sustained rate approaches 1/T = 0.5.
        assert!((rep.rate - 0.5).abs() < 0.05, "rate {}", rep.rate);
    }

    #[test]
    fn fixed_simulation_detects_bad_mapping() {
        let (g, m) = fp_pair();
        // Same unit, overlapping hazard stage: offsets 0 and 1 collide.
        let s = PipelinedSchedule::new(4, vec![0, 1], vec![Some(0), Some(0)]);
        let err = simulate(&m, &g, &s, 2, UnitPolicy::Fixed).unwrap_err();
        assert!(matches!(err, SimError::Collision { .. }));
    }

    #[test]
    fn unmapped_schedule_needs_dynamic_policy() {
        let (g, m) = fp_pair();
        let s = PipelinedSchedule::new(2, vec![0, 2], vec![None, None]);
        assert!(matches!(
            simulate(&m, &g, &s, 5, UnitPolicy::Fixed),
            Err(SimError::NotMapped { .. })
        ));
        assert!(simulate(&m, &g, &s, 5, UnitPolicy::Dynamic).is_ok());
    }

    #[test]
    fn dynamic_policy_executes_the_table1_gap_schedule() {
        // A non-pipelined op repeating at a period below its execution
        // time: impossible on one unit, fine when instances alternate
        // across the two units — the run-time-choice world.
        let mut g = Ddg::new();
        g.add_node("f", OpClass::new(1), 2);
        let m = Machine::example_non_pipelined();
        let s = PipelinedSchedule::new(1, vec![0], vec![None]);
        let rep = simulate(&m, &g, &s, 40, UnitPolicy::Dynamic).expect("runs");
        assert!((rep.rate - 1.0).abs() < 0.1, "rate {}", rep.rate);
        // Both units end up ~50% busy... actually 100%: each instance
        // holds a unit 2 cycles and one issues per cycle.
        assert!(rep.utilization(1, 0) > 0.9);
        assert!(rep.utilization(1, 1) > 0.9);
    }

    #[test]
    fn dynamic_policy_reports_exhaustion() {
        // Three simultaneous FP instances, two units.
        let mut g = Ddg::new();
        for i in 0..3 {
            g.add_node(format!("f{i}"), OpClass::new(1), 2);
        }
        let m = Machine::example_non_pipelined();
        let s = PipelinedSchedule::new(2, vec![0, 0, 0], vec![None; 3]);
        assert!(matches!(
            simulate(&m, &g, &s, 1, UnitPolicy::Dynamic),
            Err(SimError::NoFreeUnit { .. })
        ));
    }

    #[test]
    fn bundle_width_enforced_in_the_trace() {
        use crate::machine::BundleSpec;
        let (g, m) = fp_pair();
        let m = m.with_bundle(BundleSpec::width(1)).unwrap();
        // Two issues in the same cycle on different units: tables clean,
        // width-1 bundle overflows at cycle 0 (the simulator checks
        // resources only, so the violated dependence is irrelevant here).
        let s = PipelinedSchedule::new(4, vec![0, 0], vec![Some(0), Some(1)]);
        match simulate(&m, &g, &s, 3, UnitPolicy::Fixed) {
            Err(SimError::BundleExceeded {
                cycle: 0,
                group: None,
                used: 2,
                cap: 1,
            }) => {}
            other => panic!("expected bundle overflow, got {other:?}"),
        }
        // Staggered issues run clean.
        let ok = PipelinedSchedule::new(4, vec![0, 2], vec![Some(0), Some(1)]);
        assert!(simulate(&m, &g, &ok, 3, UnitPolicy::Fixed).is_ok());
    }

    #[test]
    fn utilization_bounded_and_consistent() {
        let (g, m) = fp_pair();
        let s = PipelinedSchedule::new(2, vec![0, 2], vec![Some(0), Some(1)]);
        let rep = simulate(&m, &g, &s, 30, UnitPolicy::Fixed).expect("runs");
        for (ci, fu_type) in m.types().iter().enumerate() {
            for fu in 0..fu_type.count as usize {
                let u = rep.utilization(ci, fu);
                assert!((0.0..=1.0).contains(&u));
            }
        }
        // Int unit untouched.
        assert_eq!(rep.utilization(0, 0), 0.0);
    }
}
