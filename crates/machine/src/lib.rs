//! Machine models with structural hazards.
//!
//! A [`Machine`] is a set of function-unit types. Each [`FuType`] has a
//! replication count (how many physical copies exist), a latency, and a
//! [`ReservationTable`] describing which pipeline stages an operation
//! occupies at which offsets after issue (Kogge 1981). Three shapes
//! matter for the paper:
//!
//! * **clean pipeline** — one stage, used only at offset 0: a new
//!   operation can issue every cycle;
//! * **non-pipelined** — one stage, used for the full latency: the unit
//!   is busy end-to-end;
//! * **unclean pipeline** — an arbitrary table: *structural hazards*
//!   (e.g. a writeback stage reused at offset 2 collides with a later
//!   issue).
//!
//! The crate derives classic pipeline theory from the tables — forbidden
//! latencies, collision vectors, and the MAL bound — plus the
//! resource-side period bound [`Machine::t_res`] and an independent
//! cycle-accurate [`checker`] used to validate schedules produced by any
//! scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
mod collision;
mod machine;
pub mod parse;
mod restable;
mod schedule;
pub mod sim;

pub use checker::{
    check_capacity_only, check_fixed_assignment, check_fixed_assignment_layout,
    check_fixed_assignment_with, ConflictError, ConflictOracle, PlacedOp,
};
pub use collision::CollisionInfo;
pub use machine::{BundleSpec, FuType, Machine, MachineError, SlotGroup};
pub use parse::{parse_machine, write_machine, MachineParseError};
pub use restable::ReservationTable;
pub use schedule::{Matrices, PipelinedSchedule, ValidationError};
pub use sim::{simulate, SimError, SimReport, UnitPolicy};

/// Memory layout used by the hot-path conflict structures: the modulo
/// reservation table's cells, the fixed-assignment checker's usage map,
/// and related inner loops.
///
/// Both layouts are decision-identical — same accept/reject verdicts,
/// same first error in scan order, same eviction metrics — which the
/// equivalence proptests enforce. `Flat` replaces nested-`Vec` per-cell
/// scans with stride-indexed arenas probed via u64 occupancy words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataLayout {
    /// The original nested-`Vec` per-cell layout, kept as a selectable
    /// fallback and as the reference arm of A/B benchmarks.
    Legacy,
    /// Flat stride-indexed arenas with word-parallel occupancy tests.
    #[default]
    Flat,
}
